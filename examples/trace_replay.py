#!/usr/bin/env python3
"""Replay a block trace (real or synthetic) on an AERO SSD.

Demonstrates the full user path: load an MSRC- or Alibaba-format trace
(or synthesize one from a Table 3 profile), build an SSD with a chosen
erase scheme, precondition to steady state, replay, and dump the
performance report plus AERO's internal statistics (SEF state, feature
commands, FELP savings).

Run:  python examples/trace_replay.py [trace.csv] [--scheme aero]
      With no file, synthesizes the 'prxy' workload.
"""

import argparse
from pathlib import Path

from repro import ALL_SCHEME_KEYS, SsdSpec, build_ssd
from repro.experiments import WORKLOADS
from repro.ftl.aeroftl import AeroFtl
from repro.workloads import (
    SyntheticTraceGenerator,
    load_alibaba_csv,
    load_msrc_csv,
)


def load_trace(path: Path, spec: SsdSpec):
    """Try both supported CSV dialects."""
    try:
        return load_msrc_csv(path)
    except Exception:
        return load_alibaba_csv(path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="MSRC/Alibaba CSV trace")
    parser.add_argument("--scheme", default="aero",
                        choices=list(ALL_SCHEME_KEYS),
                        help="erase scheme (from the scheme registry)")
    parser.add_argument("--workload", default="prxy",
                        choices=list(WORKLOADS.keys()),
                        help="Table 3 profile to synthesize when no trace file")
    parser.add_argument("--pec", type=int, default=500,
                        help="wear setpoint in P/E cycles")
    parser.add_argument("--requests", type=int, default=1000)
    args = parser.parse_args()

    spec = SsdSpec.small_test(seed=11)
    ssd = build_ssd(spec, args.scheme, pec_setpoint=args.pec)
    print(f"SSD: {spec.geometry.channels} ch x {spec.geometry.chips_per_channel} "
          f"chips x {spec.geometry.planes_per_chip} planes, "
          f"{spec.logical_bytes >> 20} MiB logical, scheme={args.scheme}, "
          f"PEC={args.pec}")

    print("Preconditioning to steady state...")
    ssd.precondition(footprint_pages=int(spec.logical_pages * 0.9))

    if args.trace:
        trace = load_trace(Path(args.trace), spec).head(args.requests)
        print(f"Loaded {len(trace)} requests from {args.trace}")
    else:
        generator = SyntheticTraceGenerator(
            WORKLOADS.resolve(args.workload),
            footprint_bytes=int(spec.logical_bytes * 0.85),
            seed=5,
        )
        trace = generator.generate(args.requests)
        print(f"Synthesized {len(trace)} {args.workload!r} requests "
              f"(read ratio {trace.read_ratio:.0%})")

    report = ssd.run_trace(trace)
    print(f"\n== Performance ==")
    print(f"  requests: {report.requests_completed}, IOPS: {report.iops:,.0f}")
    print(f"  read  mean {report.reads.mean_us:8.0f} us   "
          f"p99 {report.reads.percentile(99):8.0f} us   "
          f"p99.9 {report.reads.percentile(99.9):8.0f} us")
    if len(report.writes):
        print(f"  write mean {report.writes.mean_us:8.0f} us   "
              f"p99 {report.writes.percentile(99):8.0f} us")
    print(f"  erases: {report.erases} (busy {report.erase_busy_us/1000:.1f} ms, "
          f"{report.erase_suspensions} suspensions)")
    print(f"  GC: {report.gc_jobs} jobs, {report.gc_page_moves} page moves, "
          f"WAF {report.extra['waf']:.2f}")

    if isinstance(ssd.ftl, AeroFtl):
        print(f"\n== AEROFTL internals ==")
        overhead = ssd.ftl.overhead_report()
        print(f"  EPT: {overhead['ept_entries']} entries, {overhead['ept_bytes']} B; "
              f"SEF: {ssd.ftl.sef.enabled_count}/{len(ssd.ftl.sef)} blocks shallow")
        print(f"  feature commands: {overhead['set_feature_commands']} SET, "
              f"{overhead['get_feature_commands']} GET")
        stats = ssd.scheme.stats
        print(f"  shallow probes: {stats.shallow_probes} "
              f"({stats.shallow_useful} useful), "
              f"aggressive accepts: {stats.aggressive_accepts}, "
              f"mispredictions: {stats.mispredictions}")
        print(f"  pulses saved vs Baseline: {stats.pulses_saved_vs_baseline} "
              f"({stats.pulses_saved_vs_baseline * 0.5:.0f} ms of erase stress)")


if __name__ == "__main__":
    main()
