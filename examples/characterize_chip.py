#!/usr/bin/env python3
"""Characterize a chip family and build its Erase-timing Parameter Table.

Reproduces the paper's deployment methodology (Section 5 -> Table 1):

1. run the m-ISPE characterization campaign on a virtual chip
   population (fail-bit counts vs required erase work);
2. fit the two regularities gamma and delta (Figure 7);
3. build the conservative EPT from worst-case samples and the
   aggressive EPT from the ECC-capability-margin analysis;
4. print both tables next to the published Table 1.

The EPTs built here feed the ``aero``/``aero_cons`` factories in the
scheme registry — `python -m repro compare` and every experiment spec
run the schemes this characterization parameterizes.

Run:  python examples/characterize_chip.py [chip-name]
      chip-name in {3D-TLC-48L, 2D-TLC-2xnm, 3D-MLC-48L}
"""

import argparse

from repro.characterization import TestPlatform, failbit_linearity, felp_accuracy
from repro.core.ept import (
    build_aggressive_table,
    build_conservative_table,
    format_table,
    published_aggressive_table,
    published_conservative_table,
)
from repro.nand.chip_types import builtin_profiles, profile_by_name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "chip", nargs="?", default="3D-TLC-48L", metavar="chip-name",
        choices=[profile.name for profile in builtin_profiles()],
        help="chip family to characterize (default: 3D-TLC-48L)",
    )
    args = parser.parse_args()
    profile = profile_by_name(args.chip)
    print(f"Characterizing {profile.name} "
          f"({profile.bits_per_cell} bits/cell, {'3D' if profile.is_3d else '2D'})\n")

    platform = TestPlatform(profile, chips=12, blocks_per_chip=12, seed=99)

    print("== Figure 7: fail-bit regularities ==")
    linearity = failbit_linearity(
        platform, pec_points=(2000, 3000, 4000), blocks_per_point=80
    )
    fit = linearity.overall
    print(f"  fitted gamma = {fit.gamma:.0f} (profile: {profile.gamma})")
    print(f"  fitted delta = {fit.delta:.0f} per 0.5 ms (profile: {profile.delta})")
    print(f"  linearity R^2 = {fit.r_squared:.3f} over {fit.samples} blocks\n")

    print("== Figure 8: FELP samples ==")
    accuracy = felp_accuracy(
        platform, pec_points=(500, 1000, 2000, 3000, 4000, 5000),
        blocks_per_point=120,
    )
    print(f"  {len(accuracy.samples)} (fail-bit count -> remaining work) samples")
    coverage = accuracy.conservative_coverage(profile)
    print(f"  published-Table-1 conservative coverage: {coverage:.2%}\n")

    conservative = build_conservative_table(profile, accuracy.samples)
    aggressive = build_aggressive_table(profile, conservative)
    print("== Built from this campaign ==")
    print(format_table(profile, conservative))
    print()
    print(format_table(profile, aggressive))
    print()
    print("== Published Table 1 (3D TLC chips) ==")
    print(format_table(profile, published_conservative_table(profile)))
    print()
    print(format_table(profile, published_aggressive_table(profile)))
    print()
    print(f"EPT storage: {conservative.entry_count} entries "
          f"x 4 B = {conservative.storage_bytes} B (paper: 140 B)")


if __name__ == "__main__":
    main()
