#!/usr/bin/env python3
"""Quickstart: erase one block with every scheme and compare.

Shows the core of the library in ~40 lines: build blocks at different
wear points, erase them with Baseline ISPE and with AERO, and inspect
latency, damage, and AERO's decision trail (shallow probe, FELP
prediction, aggressive acceptance).

Run:  python examples/quickstart.py
"""

from repro import Block, SCHEMES, TLC_3D_48L
from repro.nand.geometry import BlockAddress
from repro.rng import make_rng


def erase_once(scheme_key: str, pec: int, rng):
    """Erase a fresh clone of the same block at `pec` P/E cycles."""
    block = Block(BlockAddress(0, 0, 0, 7), TLC_3D_48L, pages=64, seed=2024)
    block.wear.age_kilocycles = pec / 1000.0  # Baseline-cycled history
    block.wear.pec = pec
    scheme = SCHEMES.create(scheme_key, TLC_3D_48L)
    result = scheme.erase(block, rng)
    return result


def main():
    rng = make_rng(7)
    print(f"{'PEC':>6} {'scheme':>10} {'tBERS':>9} {'loops':>5} "
          f"{'pulses':>6} {'damage':>7}  notes")
    for pec in (100, 1000, 2500, 4500):
        for key in ("baseline", "aero_cons", "aero"):
            result = erase_once(key, pec, rng)
            notes = []
            if result.used_shallow_erase:
                notes.append("shallow probe")
            if result.accepted_under_erase:
                notes.append(
                    f"accepted {result.residual_fail_bits} residual fail bits"
                )
            if result.mispredictions:
                notes.append(f"{result.mispredictions} repaired mispredictions")
            print(
                f"{pec:>6} {key:>10} {result.latency_us/1000:>7.2f}ms "
                f"{result.loops:>5} {result.total_pulses:>6} "
                f"{result.damage:>7.1f}  {', '.join(notes)}"
            )
        print()
    print("tBERS = erase latency; damage = voltage-weighted pulse stress.")
    print("AERO erases just long enough; Baseline always runs full loops.")


if __name__ == "__main__":
    main()
