#!/usr/bin/env python3
"""Figure 13 end to end: lifetime of the five erase schemes.

Cycles five block sets — one per scheme — to failure and prints the
average-MRBER trajectories and lifetimes, the paper's headline lifetime
result (AERO +43 %, AEROcons +30 %, DPES +26 %, i-ISPE -25 % vs the
5.3K-cycle Baseline).

Each scheme's block set cycles independently, so the campaign fans out
across worker processes with ``--workers`` (identical results either
way). Scheme keys resolve through the plugin registry, so
``--schemes`` accepts any registered scheme. The equivalent shell
command is::

    python -m repro compare --blocks 48 --step 50 --seed 1

Run:  python examples/lifetime_comparison.py
      python examples/lifetime_comparison.py --workers 5
"""

import argparse

from repro import SCHEME_KEYS
from repro.analysis.tables import format_table
from repro.harness import ProcessExecutor
from repro.lifetime import compare_schemes
from repro.nand.chip_types import TLC_3D_48L


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes, one scheme each (default: serial)",
    )
    parser.add_argument(
        "--schemes", default=",".join(SCHEME_KEYS),
        help="comma-separated scheme keys (first is the baseline)",
    )
    args = parser.parse_args()
    executor = ProcessExecutor(args.workers) if args.workers > 1 else None
    scheme_keys = tuple(key for key in args.schemes.split(",") if key)
    if not scheme_keys:
        parser.error("--schemes needs at least one scheme key")

    print("Cycling five 48-block sets to failure (this takes a few seconds)...\n")
    comparison = compare_schemes(
        TLC_3D_48L, scheme_keys=scheme_keys, block_count=48, step=50,
        seed=1, executor=executor,
    )

    base = comparison.curves[scheme_keys[0]].lifetime_pec
    rows = []
    for key in scheme_keys:
        curve = comparison.curves[key]
        if key == scheme_keys[0] or base is None:
            delta = "--"
        elif curve.lifetime_pec is None:
            delta = "never crossed"
        else:
            delta = f"{curve.lifetime_pec / base - 1:+.1%}"
        rows.append(
            [
                key,
                curve.lifetime_pec if curve.lifetime_pec is not None else ">max",
                delta,
                round(curve.mrber_at(250), 1),
                round(curve.mrber_at(2000), 1),
                round(curve.mrber_at(4000), 1),
            ]
        )
    print(
        format_table(
            ["scheme", "lifetime (PEC)", "vs baseline",
             "MRBER@0.25K", "MRBER@2K", "MRBER@4K"],
            rows,
            title="SSD lifetime under 1-year retention (requirement: 63 bits/KiB)",
        )
    )
    print()
    print("Reading the table like the paper's Figure 13:")
    print(" * AERO pays extra raw bit errors up front (aggressive under-")
    print("   erasure spends the ECC margin) but its gentler erases slow")
    print("   wear so much that it outlives everything else.")
    print(" * i-ISPE's loop skipping misfires on 3D chips: erase failures")
    print("   escalate the voltage ladder and *shorten* lifetime.")


if __name__ == "__main__":
    main()
