#!/usr/bin/env python3
"""Figure 13 end to end: lifetime of the five erase schemes.

Cycles five block sets — one per scheme — to failure and prints the
average-MRBER trajectories and lifetimes, the paper's headline lifetime
result (AERO +43 %, AEROcons +30 %, DPES +26 %, i-ISPE -25 % vs the
5.3K-cycle Baseline).

Each scheme's block set cycles independently, so the campaign fans out
across worker processes with ``--workers`` (identical results either
way). Scheme keys resolve through the plugin registry, so
``--schemes`` accepts any registered scheme. The equivalent shell
command is::

    python -m repro compare --blocks 48 --step 50 --seed 1

Run:  python examples/lifetime_comparison.py
      python examples/lifetime_comparison.py --workers 5
      python examples/lifetime_comparison.py --engine object   # pre-kernel path
"""

import argparse

from repro import SCHEME_KEYS
from repro.analysis.tables import format_table
from repro.harness import ProcessExecutor, ThreadExecutor
from repro.kernels import ENGINES, kernel_for_scheme
from repro.lifetime import compare_schemes
from repro.nand.chip_types import TLC_3D_48L
from repro.schemes import make_scheme


def _default_executor_kind(scheme_keys, engine):
    """Threads only when every scheme runs its GIL-releasing kernel."""
    if engine == "object":
        return "process"
    if engine == "kernel":
        return "thread"
    for key in scheme_keys:
        if kernel_for_scheme(make_scheme(TLC_3D_48L, key)) is None:
            return "process"
    return "thread"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="workers, one scheme each (default: serial)",
    )
    parser.add_argument(
        "--executor", choices=["process", "thread"], default=None,
        help="worker kind when --workers > 1 (default: thread for "
             "kernel-engine runs — they release the GIL — and process "
             "for --engine object, which would serialize on threads)",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="vectorized batch kernels when available (auto), or force "
             "one execution path",
    )
    parser.add_argument(
        "--schemes", default=",".join(SCHEME_KEYS),
        help="comma-separated scheme keys (first is the baseline)",
    )
    args = parser.parse_args()
    scheme_keys = tuple(key for key in args.schemes.split(",") if key)
    if not scheme_keys:
        parser.error("--schemes needs at least one scheme key")
    executor = None
    if args.workers > 1:
        kind = args.executor or _default_executor_kind(scheme_keys, args.engine)
        executor_cls = ThreadExecutor if kind == "thread" else ProcessExecutor
        executor = executor_cls(args.workers)

    print("Cycling five 48-block sets to failure (this takes a few seconds)...\n")
    comparison = compare_schemes(
        TLC_3D_48L, scheme_keys=scheme_keys, block_count=48, step=50,
        seed=1, executor=executor, engine=args.engine,
    )

    base = comparison.curves[scheme_keys[0]].lifetime_pec
    rows = []
    for key in scheme_keys:
        curve = comparison.curves[key]
        if key == scheme_keys[0] or base is None:
            delta = "--"
        elif curve.lifetime_pec is None:
            delta = "never crossed"
        else:
            delta = f"{curve.lifetime_pec / base - 1:+.1%}"
        rows.append(
            [
                key,
                curve.lifetime_pec if curve.lifetime_pec is not None else ">max",
                delta,
                round(curve.mrber_at(250), 1),
                round(curve.mrber_at(2000), 1),
                round(curve.mrber_at(4000), 1),
            ]
        )
    print(
        format_table(
            ["scheme", "lifetime (PEC)", "vs baseline",
             "MRBER@0.25K", "MRBER@2K", "MRBER@4K"],
            rows,
            title="SSD lifetime under 1-year retention (requirement: 63 bits/KiB)",
        )
    )
    print()
    print("Reading the table like the paper's Figure 13:")
    print(" * AERO pays extra raw bit errors up front (aggressive under-")
    print("   erasure spends the ECC margin) but its gentler erases slow")
    print("   wear so much that it outlives everything else.")
    print(" * i-ISPE's loop skipping misfires on 3D chips: erase failures")
    print("   escalate the voltage ladder and *shorten* lifetime.")


if __name__ == "__main__":
    main()
