#!/usr/bin/env python3
"""Figure 13 end to end: lifetime of the five erase schemes.

Cycles five block sets — one per scheme — to failure and prints the
average-MRBER trajectories and lifetimes, the paper's headline lifetime
result (AERO +43 %, AEROcons +30 %, DPES +26 %, i-ISPE -25 % vs the
5.3K-cycle Baseline).

Each scheme's block set cycles independently, so the campaign fans out
across worker processes with ``--workers`` (identical results either
way).

Run:  python examples/lifetime_comparison.py
      python examples/lifetime_comparison.py --workers 5
"""

import argparse

from repro.analysis.tables import format_table
from repro.harness import ProcessExecutor
from repro.lifetime import compare_schemes
from repro.nand.chip_types import TLC_3D_48L


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes, one scheme each (default: serial)",
    )
    args = parser.parse_args()
    executor = ProcessExecutor(args.workers) if args.workers > 1 else None

    print("Cycling five 48-block sets to failure (this takes a few seconds)...\n")
    comparison = compare_schemes(
        TLC_3D_48L, block_count=48, step=50, seed=1, executor=executor
    )

    base = comparison.lifetime("baseline")
    rows = []
    for key in ("baseline", "iispe", "dpes", "aero_cons", "aero"):
        curve = comparison.curves[key]
        rows.append(
            [
                key,
                curve.lifetime_pec,
                "--" if key == "baseline" else f"{curve.lifetime_pec / base - 1:+.1%}",
                round(curve.mrber_at(250), 1),
                round(curve.mrber_at(2000), 1),
                round(curve.mrber_at(4000), 1),
            ]
        )
    print(
        format_table(
            ["scheme", "lifetime (PEC)", "vs baseline",
             "MRBER@0.25K", "MRBER@2K", "MRBER@4K"],
            rows,
            title="SSD lifetime under 1-year retention (requirement: 63 bits/KiB)",
        )
    )
    print()
    print("Reading the table like the paper's Figure 13:")
    print(" * AERO pays extra raw bit errors up front (aggressive under-")
    print("   erasure spends the ECC margin) but its gentler erases slow")
    print("   wear so much that it outlives everything else.")
    print(" * i-ISPE's loop skipping misfires on 3D chips: erase failures")
    print("   escalate the voltage ladder and *shorten* lifetime.")


if __name__ == "__main__":
    main()
