#!/usr/bin/env python3
"""Figure 14/15 in miniature: read tail latency across erase schemes.

Builds bench-scale SSDs at three wear points, replays a write-heavy
datacenter workload (ali.A) and a mixed enterprise workload (hm), and
reports read tail percentiles per scheme — with and without erase
suspension.

Run:  python examples/tail_latency_study.py
"""

from repro.analysis.tables import format_table
from repro.harness import run_workload_cell


SCHEMES = ("baseline", "aero_cons", "aero")
PEC_POINTS = (500, 2500)
WORKLOADS = ("ali.A", "hm")
REQUESTS = 800


def main():
    print("Replaying traces on bench-scale SSDs (a minute or so)...\n")
    for suspension in (True, False):
        rows = []
        for workload in WORKLOADS:
            for pec in PEC_POINTS:
                base_tail = None
                for scheme in SCHEMES:
                    report = run_workload_cell(
                        scheme,
                        pec,
                        workload,
                        requests=REQUESTS,
                        erase_suspension=suspension,
                        seed=77,
                    )
                    tail = report.read_tail(99.0)
                    if scheme == "baseline":
                        base_tail = tail
                    rows.append(
                        [
                            workload,
                            pec,
                            scheme,
                            f"{tail / 1000:.2f} ms",
                            f"{tail / base_tail:.2f}" if base_tail else "--",
                            report.erases,
                            report.erase_suspensions,
                        ]
                    )
        mode = "ENABLED" if suspension else "DISABLED"
        print(
            format_table(
                ["workload", "PEC", "scheme", "p99 read", "vs baseline",
                 "erases", "suspensions"],
                rows,
                title=f"Read tail latency — erase suspension {mode}",
            )
        )
        print()
    print("AERO's shorter erases shrink the window in which a read can")
    print("get stuck behind an erase; without suspension the effect is")
    print("even larger because reads must wait out the whole operation.")


if __name__ == "__main__":
    main()
