#!/usr/bin/env python3
"""Figure 14/15 in miniature: read tail latency across erase schemes.

Builds bench-scale SSDs at three wear points, replays a write-heavy
datacenter workload (ali.A) and a mixed enterprise workload (hm), and
reports read tail percentiles per scheme — with and without erase
suspension. The campaign is described declaratively: one
:class:`repro.ExperimentSpec` per cell, executed through
``run_experiments`` so it fans out across worker processes and resumes
from a result cache; serial, parallel, and cached runs print identical
tables. The equivalent shell command is::

    python -m repro grid --schemes baseline,aero_cons,aero \\
        --pecs 500,2500 --workloads ali.A,hm --requests 800 --seed 77

Run:  python examples/tail_latency_study.py
      python examples/tail_latency_study.py --workers 4
      python examples/tail_latency_study.py --cache-dir .repro-cache
"""

import argparse

from repro import ExperimentSpec
from repro.analysis.tables import format_table
from repro.experiments import run_experiments
from repro.harness import ProcessExecutor, SerialExecutor


SCHEMES = ("baseline", "aero_cons", "aero")
PEC_POINTS = (500, 2500)
WORKLOADS = ("ali.A", "hm")
REQUESTS = 800
SEED = 77


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for grid cells (default: serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache finished cells here and resume on re-run",
    )
    args = parser.parse_args()

    executor = (
        ProcessExecutor(args.workers) if args.workers > 1 else SerialExecutor()
    )

    print("Replaying traces on bench-scale SSDs (a minute or so)...\n")
    for suspension in (True, False):
        specs = [
            ExperimentSpec(
                scheme=scheme,
                pec=pec,
                workload=workload,
                requests=REQUESTS,
                seed=SEED,
                erase_suspension=suspension,
            )
            for pec in PEC_POINTS
            for workload in WORKLOADS
            for scheme in SCHEMES
        ]
        result = run_experiments(
            specs, executor=executor, cache_dir=args.cache_dir
        )
        grid = result.grid
        rows = []
        for workload in WORKLOADS:
            for pec in PEC_POINTS:
                base_tail = grid.report("baseline", pec, workload).read_tail(99.0)
                for scheme in SCHEMES:
                    report = grid.report(scheme, pec, workload)
                    tail = report.read_tail(99.0)
                    rows.append(
                        [
                            workload,
                            pec,
                            scheme,
                            f"{tail / 1000:.2f} ms",
                            f"{tail / base_tail:.2f}" if base_tail else "--",
                            report.erases,
                            report.erase_suspensions,
                        ]
                    )
        mode = "ENABLED" if suspension else "DISABLED"
        print(
            format_table(
                ["workload", "PEC", "scheme", "p99 read", "vs baseline",
                 "erases", "suspensions"],
                rows,
                title=f"Read tail latency — erase suspension {mode}",
            )
        )
        print(
            f"  (cells executed: {result.stats.executed}, "
            f"loaded from cache: {result.stats.cached})"
        )
        print()
    print("AERO's shorter erases shrink the window in which a read can")
    print("get stuck behind an erase; without suspension the effect is")
    print("even larger because reads must wait out the whole operation.")


if __name__ == "__main__":
    main()
