"""Figure 4: CDF of minimum erase latency (mtBERS) vs P/E cycles.

Paper observations reproduced here:
* at 0 PEC every block erases in a single loop; >70 % within ~2.5 ms
  (29 % below the 3.5 ms default tEP);
* at 1K PEC ~76.5 % of blocks still need only one loop;
* after 2K PEC *every* block needs >= 2 loops (up to 5 by 5K);
* mtBERS varies widely across blocks at the same PEC (sigma ~2.7 ms
  at 3.5K PEC).
"""

from repro.analysis.tables import format_table
from repro.characterization import TestPlatform, erase_latency_cdf
from repro.nand.chip_types import TLC_3D_48L

PEC_POINTS = (0, 1000, 2000, 3000, 3500, 4000, 5000)


def test_fig04_erase_latency_cdf(once):
    platform = TestPlatform(TLC_3D_48L, chips=16, blocks_per_chip=16, seed=0xF04)
    result = once(
        erase_latency_cdf, platform, pec_points=PEC_POINTS, blocks_per_point=200
    )

    rows = []
    for pec in PEC_POINTS:
        histogram = result.nispe_histogram[pec]
        rows.append(
            [
                pec,
                f"{result.single_loop_fraction(pec):.1%}",
                result.min_loops(pec),
                result.max_loops(pec),
                sum(result.mtbers_ms[pec]) / len(result.mtbers_ms[pec]),
                result.std_ms(pec),
                " ".join(f"N{n}:{c}" for n, c in sorted(histogram.items())),
            ]
        )
    print()
    print(
        format_table(
            ["PEC", "1-loop", "minN", "maxN", "mean mtBERS ms", "std ms", "NISPE histogram"],
            rows,
            title="Figure 4 — mtBERS distribution vs P/E cycles (m-ISPE campaign)",
        )
    )

    # --- paper-shape assertions -------------------------------------------------
    assert result.max_loops(0) == 1
    assert result.fraction_below_ms(0, 2.7) >= 0.6          # "2.5 ms for >70 %"
    assert 0.60 <= result.single_loop_fraction(1000) <= 0.97  # paper: 76.5 %
    for pec in (2000, 3000, 4000, 5000):
        assert result.min_loops(pec) >= 2                   # ">= 2 loops after 2K"
    assert result.max_loops(5000) == 5
    assert 1.5 <= result.std_ms(3500) <= 4.0                # paper: 2.7 ms
    # Latency grows monotonically with PEC on average.
    means = [
        sum(result.mtbers_ms[pec]) / len(result.mtbers_ms[pec])
        for pec in PEC_POINTS
    ]
    assert means == sorted(means)
