"""Figure 14: read tail latency across workloads, schemes, and wear.

Paper results reproduced here (normalized to Baseline, as in the
figure):
* AERO cuts the extreme read tail, with the largest wins at low PEC
  (shallow erasure shortens the single-loop erases that block reads)
  and shrinking-but-positive wins at high PEC;
* AEROcons sits between Baseline and AERO;
* DPES does not beat Baseline's tail (its write-latency penalty can
  push queueing the other way).

Bench scale note: the paper reports the 99.99th/99.9999th percentiles
over multi-hour traces; at bench scale we use the 99th/99.9th as the
tail proxies and compare *relative* values, which is what the figure
shows. REPRO_BENCH_FULL=1 runs the full 11-workload grid.
"""

from repro.analysis.tables import format_table
from repro.harness import PAPER_SCHEMES

PEC_POINTS = (500, 2500, 4500)
TAIL_PCT = 99.0
EXTREME_PCT = 99.9


def test_fig14_read_tail_latency(once, bench_runner, bench_workloads, bench_requests):
    grid = once(
        bench_runner.run,
        schemes=PAPER_SCHEMES,
        pec_points=PEC_POINTS,
        workloads=bench_workloads,
        requests=bench_requests,
        seed=0xF14,
    )

    print()
    for pec in PEC_POINTS:
        table = grid.normalized_read_tail(TAIL_PCT, pec)
        rows = [
            [workload] + [f"{table[workload][s]:.2f}" for s in PAPER_SCHEMES]
            for workload in grid.workloads()
        ]
        geomean = grid.geomean_normalized(
            lambda r: r.read_tail(TAIL_PCT), pec
        )
        rows.append(["G.M."] + [f"{geomean[s]:.2f}" for s in PAPER_SCHEMES])
        print(
            format_table(
                ["workload"] + list(PAPER_SCHEMES),
                rows,
                title=f"Figure 14 — p{TAIL_PCT:g} read latency at {pec} PEC "
                f"(normalized to Baseline)",
            )
        )
        print()

    # --- shape assertions over the geometric means -----------------------------
    geomeans = {
        pec: grid.geomean_normalized(lambda r: r.read_tail(TAIL_PCT), pec)
        for pec in PEC_POINTS
    }
    extreme = {
        pec: grid.geomean_normalized(lambda r: r.read_tail(EXTREME_PCT), pec)
        for pec in PEC_POINTS
    }
    for pec in PEC_POINTS:
        # AERO beats Baseline on the tail at every wear point.
        assert geomeans[pec]["aero"] < 1.0
        assert extreme[pec]["aero"] < 1.0
        # AEROcons also wins, but no more than AERO wins (within noise).
        assert geomeans[pec]["aero_cons"] < 1.02
        assert geomeans[pec]["aero"] <= geomeans[pec]["aero_cons"] + 0.05
    # Average reduction across setpoints in the paper's neighbourhood
    # (paper: 22 % at p99.99, 26 % at p99.9999).
    avg_aero = sum(geomeans[p]["aero"] for p in PEC_POINTS) / len(PEC_POINTS)
    assert 0.5 <= avg_aero <= 0.95
    # Benefits are largest at low PEC (shallow erasure dominates there).
    assert geomeans[500]["aero"] <= geomeans[4500]["aero"] + 0.05
