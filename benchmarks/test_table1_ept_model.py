"""Table 1: the final mtEP(NISPE) model.

Reproduces the paper's model-construction methodology end to end: run
the FELP characterization campaign, build the conservative table from
the worst-case samples, apply the ECC-margin analysis for the
aggressive column, and compare against the published Table 1.
"""

from repro.characterization import TestPlatform, felp_accuracy
from repro.core.ept import (
    build_aggressive_table,
    build_conservative_table,
    format_table as format_ept,
    published_aggressive_table,
    published_conservative_table,
)
from repro.nand.chip_types import TLC_3D_48L


def test_table1_ept_model(once):
    profile = TLC_3D_48L

    def campaign():
        platform = TestPlatform(profile, chips=12, blocks_per_chip=14, seed=0x7A1)
        accuracy = felp_accuracy(
            platform,
            pec_points=(500, 1000, 2000, 3000, 4000, 5000),
            blocks_per_point=150,
        )
        conservative = build_conservative_table(profile, accuracy.samples)
        aggressive = build_aggressive_table(profile, conservative)
        return accuracy, conservative, aggressive

    accuracy, conservative, aggressive = once(campaign)

    print()
    print(format_ept(profile, conservative))
    print()
    print(format_ept(profile, aggressive))
    print(f"\n  built from {len(accuracy.samples)} characterization samples")
    print(f"  EPT storage: {conservative.entry_count} entries, "
          f"{conservative.storage_bytes} bytes (paper: 35 entries, 140 B)")

    published_t1 = published_conservative_table(profile)
    published_t2 = published_aggressive_table(profile)

    # The campaign-built conservative table tracks the published t1 to
    # within one pulse quantum everywhere: fail-bit measurement noise
    # can push an observed worst case one range down (one quantum more
    # conservative) or leave a sparse cell one quantum lighter.
    for loop in range(1, 6):
        for built, published in zip(conservative.row(loop), published_t1.row(loop)):
            assert abs(built - published) <= 1

    # The margin analysis reproduces the published skip schedule
    # (2/2/2/1/0 pulse quanta for loops 1..5) exactly when applied to
    # the published conservative table.
    rebuilt = build_aggressive_table(profile, published_t1)
    assert rebuilt.rows == published_t2.rows

    # Storage overhead matches the paper's Section 6 analysis.
    assert conservative.storage_bytes <= 256
    # Conservative coverage: every sample fits its predicted latency.
    assert accuracy.conservative_coverage(profile) >= 0.995
