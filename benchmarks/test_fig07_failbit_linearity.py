"""Figure 7: fail-bit count vs accumulated tEP in the final erase loop.

Paper observations reproduced here:
* the fail-bit count falls almost linearly with applied pulse time —
  the same slope delta (~5,000 on the tested chips) for every NISPE;
* with one 0.5 ms pulse left, the count sits consistently at a small
  value gamma << delta.
"""

from repro.analysis.tables import format_table
from repro.characterization import TestPlatform, failbit_linearity
from repro.nand.chip_types import TLC_3D_48L


def test_fig07_failbit_linearity(once):
    platform = TestPlatform(TLC_3D_48L, chips=12, blocks_per_chip=14, seed=0xF07)
    result = once(
        failbit_linearity,
        platform,
        pec_points=(2000, 3000, 4000, 5000),
        blocks_per_point=120,
    )

    rows = [
        [nispe, fit.gamma, fit.delta, fit.r_squared, fit.samples]
        for nispe, fit in sorted(result.fits.items())
    ]
    rows.append(["all", result.overall.gamma, result.overall.delta,
                 result.overall.r_squared, result.overall.samples])
    print()
    print(
        format_table(
            ["NISPE", "gamma", "delta", "R^2", "blocks"],
            rows,
            title="Figure 7 — fitted fail-bit regularities per loop count",
        )
    )
    for nispe, series in sorted(result.series.items()):
        line = ", ".join(f"{t:.1f}ms:{int(v)}" for t, v in series[:7])
        print(f"  max F(N) vs accumulated tEP (N={nispe}): {line}")

    profile = platform.profile
    # Linear slope ~delta, consistent across NISPE (the paper's key point).
    assert abs(result.overall.delta - profile.delta) / profile.delta < 0.15
    assert result.overall.r_squared > 0.9
    deltas = [fit.delta for fit in result.fits.values()]
    assert max(deltas) / min(deltas) < 1.35
    # Gamma floor is small and consistent.
    assert abs(result.overall.gamma - profile.gamma) / profile.gamma < 0.3
    gammas = [fit.gamma for fit in result.fits.values()]
    assert max(gammas) / max(1.0, min(gammas)) < 1.6
    assert result.overall.gamma < 0.2 * result.overall.delta  # gamma << delta
