"""Figure 11: AERO's regularities on other chip types (2D TLC, 3D MLC).

Paper observations reproduced here:
* gamma/delta differ across chip families but are consistent *within*
  each family across loop counts (the linear fail-bit law holds);
* the insufficient-erasure reliability trend mirrors the 3D TLC chips,
  so the same EPT-construction methodology applies unchanged.
"""

from repro.analysis.tables import format_table
from repro.characterization import (
    TestPlatform,
    failbit_linearity,
    reliability_margin,
)
from repro.nand.chip_types import MLC_3D_48L, TLC_2D_2XNM


def test_fig11_other_chip_types(once):
    def campaign():
        results = {}
        for profile in (TLC_2D_2XNM, MLC_3D_48L):
            platform = TestPlatform(profile, chips=10, blocks_per_chip=12, seed=0xF11)
            fit = failbit_linearity(
                platform, pec_points=(2000, 3000, 4000), blocks_per_point=90
            )
            margin = reliability_margin(
                platform, pec_points=(500, 1500, 2500, 3500), blocks_per_point=90
            )
            results[profile.name] = (profile, fit, margin)
        return results

    results = once(campaign)

    print()
    rows = []
    for name, (profile, fit, margin) in results.items():
        rows.append(
            [
                name,
                profile.gamma,
                fit.overall.gamma,
                profile.delta,
                fit.overall.delta,
                fit.overall.r_squared,
            ]
        )
    print(
        format_table(
            ["chip", "gamma(true)", "gamma(fit)", "delta(true)", "delta(fit)", "R^2"],
            rows,
            title="Figure 11a — fail-bit regularities across chip types",
        )
    )
    for name, (profile, fit, margin) in results.items():
        safe = margin.safe_conditions()
        print(f"  {name}: safe under-erase conditions {safe}")

    for name, (profile, fit, margin) in results.items():
        # The linear law holds on every family.
        assert abs(fit.overall.delta - profile.delta) / profile.delta < 0.2
        assert fit.overall.r_squared > 0.85
        assert fit.overall.gamma < 0.25 * fit.overall.delta
        # Per-NISPE consistency within the family (paper Figure 11a).
        deltas = [f.delta for f in fit.fits.values()]
        assert max(deltas) / min(deltas) < 1.4
        # Same qualitative margin structure: shallow under-erasure at
        # low loop counts is safe, deep under-erasure is not.
        safe = set(margin.safe_conditions())
        assert (2, 0) in safe
        assert (2, 1) in safe
        deep = [key for key in margin.insufficient_max if key[1] >= 3]
        assert all(key not in safe for key in deep)
    # Families differ in their absolute regularities (process-specific).
    fits = [fit.overall.delta for _, fit, __ in results.values()]
    assert abs(fits[0] - fits[1]) > 100
