"""Figure 8: the fail-bit count conservatively predicts mtEP.

Paper observations reproduced here:
* within each fail-bit range, a majority (>= ~66 %) of blocks need the
  same (maximal) final-loop latency; the rest need less;
* no block needs more than the range's Table 1 prediction — FELP is
  conservative over the whole characterized population.
"""

from repro.analysis.tables import format_table
from repro.characterization import TestPlatform, felp_accuracy
from repro.nand.chip_types import TLC_3D_48L


def test_fig08_felp_accuracy(once):
    platform = TestPlatform(TLC_3D_48L, chips=12, blocks_per_chip=14, seed=0xF08)
    result = once(
        felp_accuracy,
        platform,
        pec_points=(1000, 2000, 3000, 4000, 5000),
        blocks_per_point=150,
    )

    rows = []
    for nispe in sorted(result.joint):
        buckets = result.joint[nispe]
        for range_index in sorted(buckets):
            counts = buckets[range_index]
            total = sum(counts.values())
            mode_pulses, mode_count = max(counts.items(), key=lambda kv: kv[1])
            rows.append(
                [
                    nispe,
                    range_index,
                    total,
                    f"{mode_pulses * 0.5:.1f} ms",
                    f"{mode_count / total:.0%}",
                ]
            )
    print()
    print(
        format_table(
            ["NISPE", "F-range", "blocks", "modal mtEP", "modal share"],
            rows,
            title="Figure 8 — P(mtEP(N) | fail-bit range of F(N-1))",
        )
    )
    coverage = result.conservative_coverage(platform.profile)
    print(f"  Table-1 conservative coverage: {coverage:.2%} of {len(result.samples)} samples")

    assert len(result.samples) > 300
    for nispe in result.joint:
        assert result.majority_fraction(nispe) >= 0.55   # paper: 66-71 %
    assert coverage >= 0.995                              # conservative
