"""Figure 13: SSD lifetime and reliability under the five erase schemes.

Paper results reproduced here (shape and approximate factors):
* Baseline crosses the 63-bit RBER requirement at ~5.3K P/E cycles;
* AERO extends lifetime by ~43 %, AEROcons by ~30 %, DPES by ~26 %;
* i-ISPE *shortens* lifetime by ~25 % on 3D chips;
* AERO's aggressive under-erasure elevates MRBER from the start but
  flattens its growth (the margin is spent up front, the stress saved
  compounds).
"""

from repro.analysis.tables import format_table
from repro.lifetime import compare_schemes
from repro.nand.chip_types import TLC_3D_48L

PAPER_GAINS = {
    "aero": 0.43,
    "aero_cons": 0.30,
    "dpes": 0.26,
    "iispe": -0.25,
}


def test_fig13_lifetime(once, bench_executor):
    comparison = once(
        compare_schemes,
        TLC_3D_48L,
        block_count=48,
        step=50,
        seed=0xF13,
        executor=bench_executor,
    )

    base_life = comparison.lifetime("baseline")
    rows = []
    for key in ("baseline", "iispe", "dpes", "aero_cons", "aero"):
        curve = comparison.curves[key]
        rows.append(
            [
                key,
                curve.lifetime_pec,
                f"{curve.lifetime_pec / base_life - 1:+.1%}",
                f"{PAPER_GAINS.get(key, 0.0):+.0%}" if key != "baseline" else "--",
                round(curve.mrber_at(250), 1),
                round(curve.mrber_at(4000), 1),
            ]
        )
    print()
    print(
        format_table(
            ["scheme", "lifetime PEC", "gain", "paper", "MRBER@0.25K", "MRBER@4K"],
            rows,
            title="Figure 13 — average MRBER growth and lifetime (1-yr retention)",
        )
    )

    # Baseline endpoint near the paper's 5.3K.
    assert 4500 <= base_life <= 6200
    # Ordering: AERO > AEROcons > Baseline > i-ISPE; DPES > Baseline.
    assert comparison.lifetime("aero") > comparison.lifetime("aero_cons")
    assert comparison.lifetime("aero_cons") > base_life
    assert comparison.lifetime("dpes") > base_life
    assert comparison.lifetime("iispe") < base_life
    # Approximate factors (generous bands around the paper's numbers).
    assert 0.25 <= comparison.improvement("aero") <= 0.75
    assert 0.10 <= comparison.improvement("aero_cons") <= 0.45
    assert 0.08 <= comparison.improvement("dpes") <= 0.40
    assert -0.45 <= comparison.improvement("iispe") <= -0.10
    # AERO pays up-front MRBER for slower growth.
    aero = comparison.curves["aero"]
    baseline = comparison.curves["baseline"]
    assert aero.mrber_at(250) > baseline.mrber_at(250) + 5
    late_growth_aero = aero.mrber_at(5000) - aero.mrber_at(3000)
    late_growth_base = baseline.mrber_at(5000) - baseline.mrber_at(3000)
    assert late_growth_aero < late_growth_base
