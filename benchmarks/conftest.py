"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper: it runs
the experiment once (``benchmark.pedantic`` with a single round — these
are reproduction campaigns, not microbenchmarks), prints the
paper-shaped rows, and asserts the qualitative result (who wins, by
roughly what factor, where crossovers fall).

Scale: the default sizes keep the whole suite in the minutes range on
a laptop. Set ``REPRO_BENCH_FULL=1`` for the full 11-workload,
3-setpoint grid.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture
def once(benchmark):
    """Run the campaign exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture(scope="session")
def bench_workloads():
    """Workload subset for system-level benches (full grid via env)."""
    if full_scale():
        return (
            "ali.A", "ali.B", "ali.C", "ali.D", "ali.E",
            "rsrch", "stg", "hm", "prxy", "proj", "usr",
        )
    return ("ali.A", "ali.B", "hm", "prxy", "usr")


@pytest.fixture(scope="session")
def bench_requests():
    return 4000 if full_scale() else 900
