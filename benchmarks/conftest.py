"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper: it runs
the experiment once (``benchmark.pedantic`` with a single round — these
are reproduction campaigns, not microbenchmarks), prints the
paper-shaped rows, and asserts the qualitative result (who wins, by
roughly what factor, where crossovers fall).

Scale: the default sizes keep the whole suite in the minutes range on
a laptop. Set ``REPRO_BENCH_FULL=1`` for the full 11-workload,
3-setpoint grid. The grid-shaped campaigns run through
:class:`repro.harness.GridRunner`: set ``REPRO_BENCH_WORKERS=n`` to
fan cells out over ``n`` processes and ``REPRO_BENCH_CACHE=<dir>`` to
persist finished cells so interrupted or repeated campaigns resume
instead of recomputing (results are bit-identical either way).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import WORKLOADS
from repro.harness import (
    GridRunner,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture
def once(benchmark):
    """Run the campaign exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture(scope="session")
def bench_workloads():
    """Workload subset for system-level benches (full grid via env).

    The full grid is registry-derived, so plugin workloads registered
    before the session automatically join full-scale campaigns.
    """
    if full_scale():
        return WORKLOADS.keys()
    return ("ali.A", "ali.B", "hm", "prxy", "usr")


@pytest.fixture(scope="session")
def bench_requests():
    return 4000 if full_scale() else 900


@pytest.fixture(scope="session")
def bench_executor():
    """Cell executor for grid campaigns (serial unless REPRO_BENCH_WORKERS>1).

    ``REPRO_BENCH_EXECUTOR=thread`` swaps the fan-out to threads —
    worthwhile for kernel-engine lifetime campaigns, where the NumPy
    batch kernels release the GIL and processes pay a pickle tax.
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    kind = os.environ.get("REPRO_BENCH_EXECUTOR", "process")
    if kind not in ("process", "thread"):
        from repro.errors import ConfigError

        raise ConfigError(
            f"unknown REPRO_BENCH_EXECUTOR {kind!r}; "
            "choose 'process' or 'thread'"
        )
    if workers > 1:
        if kind == "thread":
            return ThreadExecutor(workers)
        return ProcessExecutor(workers)
    return SerialExecutor()


@pytest.fixture
def bench_runner(bench_executor):
    """Grid runner honouring the worker and cache-directory env knobs."""
    return GridRunner(
        executor=bench_executor,
        cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None,
    )
