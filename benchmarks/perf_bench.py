#!/usr/bin/env python3
"""Perf-trajectory bench: times the hot campaigns, writes BENCH_PR5.json.

Standalone face of ``python -m repro bench`` (same flags, same
artifact). Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/perf_bench.py            # full
    PYTHONPATH=src python benchmarks/perf_bench.py --smoke    # CI-sized

The artifact records median-of-N wall times for the five-scheme
Figure 13 lifetime sweep on both engines (object vs vectorized kernel,
equal block count and step), per-scheme speedup ratios, and one
evaluation-grid cell replayed by both the object event loop and the
lean cell kernel (bit-identical reports), so perf regressions show up
as a diff against the committed baseline.
"""

from repro.harness.bench import main

if __name__ == "__main__":
    raise SystemExit(main())
