"""Figure 9: shallow-erasure feasibility and tSE selection.

Paper observations reproduced here:
* with a short probe pulse, 80-88 % of young blocks finish their
  single-loop erase below the default tEP;
* the achievable average tBERS (~2.5-2.9 ms) is insensitive to the
  probe length, supporting the paper's tSE = 1 ms choice.
"""

from repro.analysis.tables import format_table
from repro.characterization import TestPlatform, shallow_erasure_sweep
from repro.nand.chip_types import TLC_3D_48L

TSE_OPTIONS = (1, 2, 3, 4)   # pulses: 0.5 / 1 / 1.5 / 2 ms
PEC_POINTS = (100, 500)


def test_fig09_shallow_erasure(once):
    platform = TestPlatform(TLC_3D_48L, chips=14, blocks_per_chip=16, seed=0xF09)
    result = once(
        shallow_erasure_sweep,
        platform,
        tse_pulses_options=TSE_OPTIONS,
        pec_points=PEC_POINTS,
        blocks_per_point=200,
    )

    rows = []
    for tse in TSE_OPTIONS:
        for pec in PEC_POINTS:
            key = (tse, pec)
            histogram = result.f0_ranges[key]
            rows.append(
                [
                    f"{tse * 0.5:.1f} ms",
                    pec,
                    f"{result.reduced_fraction[key]:.0%}",
                    result.avg_tbers_ms[key],
                    " ".join(f"r{r}:{c}" for r, c in sorted(histogram.items())),
                ]
            )
    print()
    print(
        format_table(
            ["tSE", "PEC", "reduced", "avg tBERS ms", "F(0) range histogram"],
            rows,
            title="Figure 9 — fail-bit distribution and tBERS under varying tSE",
        )
    )

    tbers_values = list(result.avg_tbers_ms.values())
    for key in result.reduced_fraction:
        assert result.reduced_fraction[key] >= 0.6      # paper: 80-88 %
    for value in tbers_values:
        assert 2.0 <= value <= 3.4                      # paper: 2.5-2.9 ms
    # tSE choice barely moves the achievable average (paper: <10 %).
    assert max(tbers_values) / min(tbers_values) < 1.25
    # Every average beats the default single-loop latency (3.5 + 0.1 ms).
    assert max(tbers_values) < 3.6
