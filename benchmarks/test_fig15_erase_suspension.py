"""Figure 15: interaction between AERO and erase suspension.

Paper results reproduced here:
* AERO helps with suspension *disabled* even more than with it enabled
  (without suspension a read waits out the whole in-flight erase, so
  shorter erases matter more);
* suspension itself is a large tail-latency lever, and AERO composes
  with it rather than replacing it.
"""

from repro.analysis.tables import format_table

SCHEMES = ("baseline", "aero_cons", "aero")
PEC_POINTS = (500, 2500, 4500)
TAIL_PCT = 99.0


def test_fig15_erase_suspension(once, bench_runner, bench_workloads, bench_requests):
    workloads = bench_workloads[:3]

    def campaign():
        with_suspend = bench_runner.run(
            schemes=SCHEMES,
            pec_points=PEC_POINTS,
            workloads=workloads,
            requests=bench_requests,
            erase_suspension=True,
            seed=0xF15,
        )
        without = bench_runner.run(
            schemes=SCHEMES,
            pec_points=PEC_POINTS,
            workloads=workloads,
            requests=bench_requests,
            erase_suspension=False,
            seed=0xF15,
        )
        return with_suspend, without

    with_suspend, without = once(campaign)

    print()
    rows = []
    reductions = {}
    for pec in PEC_POINTS:
        on = with_suspend.geomean_normalized(lambda r: r.read_tail(TAIL_PCT), pec)
        off = without.geomean_normalized(lambda r: r.read_tail(TAIL_PCT), pec)
        reductions[pec] = (on, off)
        for scheme in SCHEMES:
            rows.append([pec, scheme, f"{on[scheme]:.2f}", f"{off[scheme]:.2f}"])
    print(
        format_table(
            ["PEC", "scheme", "suspension ON", "suspension OFF"],
            rows,
            title=f"Figure 15 — p{TAIL_PCT:g} read tail normalized to Baseline "
            "(per suspension mode)",
        )
    )
    suspensions = sum(
        cell.report.erase_suspensions for cell in with_suspend.cells
    )
    print(f"  erase suspensions during the ON campaign: {suspensions}")

    assert suspensions > 0
    assert all(cell.report.erase_suspensions == 0 for cell in without.cells)
    for pec in PEC_POINTS:
        on, off = reductions[pec]
        # AERO wins in both modes.
        assert on["aero"] < 1.0
        assert off["aero"] < 1.0
    # AERO's average win is at least as large without suspension.
    avg_on = sum(reductions[p][0]["aero"] for p in PEC_POINTS) / 3
    avg_off = sum(reductions[p][1]["aero"] for p in PEC_POINTS) / 3
    assert avg_off <= avg_on + 0.05
    # Suspension itself reduces the absolute Baseline tail.
    for pec in PEC_POINTS:
        for workload in with_suspend.workloads():
            tail_on = with_suspend.report("baseline", pec, workload).read_tail(TAIL_PCT)
            tail_off = without.report("baseline", pec, workload).read_tail(TAIL_PCT)
            assert tail_on <= tail_off * 1.10
