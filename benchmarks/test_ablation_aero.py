"""Ablation: which of AERO's three ideas buys what.

Not a paper figure — an ablation of the design choices DESIGN.md calls
out, isolating the contribution of each mechanism to erase-stress
reduction at the wear points of the evaluation:

* FELP alone (no shallow probe, conservative table only);
* FELP + shallow erasure (= AEROcons);
* FELP + shallow + ECC-margin aggression (= full AERO).

Expected structure: shallow erasure dominates at low PEC (single-loop
erases are the common case), FELP's multi-loop truncation grows with
PEC, and the aggressive margin adds a roughly constant extra saving on
top until NISPE reaches 5 (where Table 1's t2 == t1).
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.aero import AeroEraseScheme
from repro.erase.ispe import BaselineIspeScheme
from repro.nand.block import Block
from repro.nand.chip_types import TLC_3D_48L
from repro.nand.geometry import BlockAddress
from repro.rng import make_rng

PEC_POINTS = (250, 1000, 2500, 4500)
BLOCKS = 60


def _fresh_block(index: int, pec: int) -> Block:
    block = Block(BlockAddress(0, 0, 0, index % 997), TLC_3D_48L, 16, seed=0xAB1)
    block.wear.age_kilocycles = pec / 1000.0
    block.wear.pec = pec
    return block


def _campaign():
    variants = {
        "baseline": lambda: BaselineIspeScheme(TLC_3D_48L),
        "felp_only": lambda: AeroEraseScheme(TLC_3D_48L, aggressive=False),
        "felp+shallow": lambda: AeroEraseScheme(TLC_3D_48L, aggressive=False),
        "full_aero": lambda: AeroEraseScheme(TLC_3D_48L, aggressive=True),
    }
    results = {}
    for name, factory in variants.items():
        rng = make_rng(0xAB1E)
        scheme = factory()
        for pec in PEC_POINTS:
            damages, latencies = [], []
            for index in range(BLOCKS):
                block = _fresh_block(index, pec)
                if isinstance(scheme, AeroEraseScheme):
                    use_shallow = name != "felp_only"
                    result = scheme.erase(block, rng, use_shallow=use_shallow)
                else:
                    result = scheme.erase(block, rng)
                damages.append(result.damage)
                latencies.append(result.latency_us)
            results[(name, pec)] = (
                float(np.mean(damages)),
                float(np.mean(latencies)) / 1000.0,
            )
    return results


def test_ablation_aero_mechanisms(once):
    results = once(_campaign)

    print()
    rows = []
    for pec in PEC_POINTS:
        base_damage, base_latency = results[("baseline", pec)]
        for name in ("felp_only", "felp+shallow", "full_aero"):
            damage, latency = results[(name, pec)]
            rows.append(
                [
                    pec,
                    name,
                    f"{latency:.2f}",
                    f"{latency / base_latency:.2f}",
                    f"{damage / base_damage:.2f}",
                ]
            )
    print(
        format_table(
            ["PEC", "variant", "tBERS ms", "latency vs base", "damage vs base"],
            rows,
            title="Ablation — erase latency / stress per AERO mechanism",
        )
    )

    for pec in PEC_POINTS:
        base_damage, _ = results[("baseline", pec)]
        felp, _ = results[("felp_only", pec)][0], None
        shallow = results[("felp+shallow", pec)][0]
        full = results[("full_aero", pec)][0]
        # Each mechanism helps (weakly) on top of the previous one.
        assert felp <= base_damage * 1.001
        assert shallow <= felp * 1.02
        assert full <= shallow * 1.02
    # Shallow erasure is the low-PEC lever: at 250 PEC it clearly beats
    # FELP-only (which cannot shorten a single-loop erase at all).
    assert (
        results[("felp+shallow", 250)][0]
        < results[("felp_only", 250)][0] * 0.9
    )
    # FELP's own contribution appears once erases are multi-loop.
    assert (
        results[("felp_only", 2500)][0]
        < results[("baseline", 2500)][0] * 0.95
    )
    # Aggression adds measurable savings in the mid-life band.
    assert (
        results[("full_aero", 2500)][0]
        < results[("felp+shallow", 2500)][0] * 0.98
    )
