"""Table 4: average I/O performance (read/write latency, IOPS).

Paper results reproduced here:
* every scheme except DPES keeps Baseline-level average throughput
  (IOPS ~1.00) — erases are rare relative to reads/writes;
* DPES pays its 10-30 % tPROG penalty while voltage scaling is active
  (PEC <= 3K): average write latency rises and IOPS dips; at 4.5K PEC
  (scaling disabled) it converges back to Baseline exactly.

Scale note: on our bench-sized device (few chips, intense GC) erases
are a much larger share of chip busy time than on the paper's 1 TB
drive, so AERO's shorter erases visibly improve even *average* read
latency at low PEC; on the full-size configuration that effect decays
toward the paper's ~100 % values. The assertions bound the means
rather than pinning them to 1.0.
"""

from repro.analysis.tables import format_table

SCHEMES = ("baseline", "dpes", "aero_cons", "aero")
PEC_POINTS = (500, 2500, 4500)


def test_table4_average_performance(once, bench_runner, bench_workloads, bench_requests):
    grid = once(
        bench_runner.run,
        schemes=SCHEMES,
        pec_points=PEC_POINTS,
        workloads=bench_workloads[:4],
        requests=bench_requests,
        seed=0x7A4,
    )

    print()
    rows = []
    metrics = {}
    for pec in PEC_POINTS:
        read = grid.geomean_normalized(lambda r: r.reads.mean_us or 1.0, pec)
        write = grid.geomean_normalized(lambda r: r.writes.mean_us or 1.0, pec)
        iops = grid.geomean_normalized(lambda r: r.iops, pec)
        metrics[pec] = (read, write, iops)
        for scheme in SCHEMES:
            rows.append(
                [
                    pec,
                    scheme,
                    f"{read[scheme]:.3f}",
                    f"{write[scheme]:.3f}",
                    f"{iops[scheme]:.3f}",
                ]
            )
    print(
        format_table(
            ["PEC", "scheme", "norm read", "norm write", "norm IOPS"],
            rows,
            title="Table 4 — average performance normalized to Baseline",
        )
    )

    for pec in PEC_POINTS:
        read, write, iops = metrics[pec]
        # AERO/AEROcons never *hurt* average performance, and their
        # throughput matches Baseline (paper: 99.6-100.4 %). Bench
        # scale lets them help the read mean at low PEC (see note).
        for scheme in ("aero", "aero_cons"):
            assert 0.65 <= read[scheme] <= 1.10
            assert 0.75 <= write[scheme] <= 1.10
            assert 0.95 <= iops[scheme] <= 1.10
    # DPES write penalty while active (paper: +10.8 % / +35.6 %).
    _, write_05, _ = metrics[500]
    _, write_25, _ = metrics[2500]
    _, write_45, _ = metrics[4500]
    assert write_05["dpes"] >= 1.04
    assert write_25["dpes"] >= write_05["dpes"]
    # Back to Baseline once scaling turns off.
    assert 0.95 <= write_45["dpes"] <= 1.05
