"""Figure 10: reliability margin for aggressive tEP reduction.

Paper observations reproduced here:
* completely erased blocks keep a positive margin to the 63-bit RBER
  requirement at every loop count (up to ~47 bits at NISPE = 1);
* skipping the final loop stays within the requirement exactly in the
  paper's safe regions — C1 (NISPE <= 3 with F < delta, our (3,1) cell
  sitting a few bits over, see EXPERIMENTS.md) and C2 (NISPE = 4 with
  F < gamma) — and clearly violates it everywhere deeper.
"""

from repro.analysis.tables import format_table
from repro.characterization import TestPlatform, reliability_margin
from repro.nand.chip_types import TLC_3D_48L


def test_fig10_reliability_margin(once):
    platform = TestPlatform(TLC_3D_48L, chips=14, blocks_per_chip=14, seed=0xF10)
    result = once(
        reliability_margin,
        platform,
        pec_points=(500, 1500, 2500, 3500, 4500),
        blocks_per_point=140,
    )

    print()
    rows_a = [
        [nispe, value, result.requirement - value]
        for nispe, value in sorted(result.complete_max.items())
    ]
    print(
        format_table(
            ["NISPE", "max MRBER", "margin"],
            rows_a,
            title=f"Figure 10a — complete erasure (requirement {result.requirement}, "
            f"ECC capability {result.capability})",
        )
    )
    rows_b = [
        [nispe, range_index, value, "SAFE" if result.safe(nispe, range_index) else "unsafe"]
        for (nispe, range_index), value in sorted(result.insufficient_max.items())
        if range_index <= 4
    ]
    print(
        format_table(
            ["NISPE", "F-range", "max MRBER", "verdict"],
            rows_b,
            title="Figure 10b — insufficient erasure (final loop skipped)",
        )
    )

    # Complete erasure: monotone in N, margin up to ~47 bits at N=1.
    complete = [result.complete_max[n] for n in sorted(result.complete_max)]
    assert complete == sorted(complete)
    assert 25 <= result.requirement - result.complete_max[1] <= 50
    assert result.complete_max[1] <= result.requirement

    safe = set(result.safe_conditions())
    # C1 core + C2.
    for condition in [(2, 0), (2, 1), (3, 0), (4, 0)]:
        assert condition in safe
    # (3,1) is the knife-edge cell: within a few bits of the requirement.
    assert result.insufficient_max[(3, 1)] <= result.requirement + 5
    # Clearly unsafe regions stay unsafe.
    for condition in [(2, 3), (3, 3), (4, 2), (5, 1), (5, 2)]:
        assert condition not in safe
