"""Figure 17: sensitivity to the RBER requirement (weaker ECC).

Paper results reproduced here:
* reducing the requirement (63 -> 50 -> 40 bits/KiB) shrinks the
  ECC-capability margin, so AERO's aggressive table loses skips and
  its extra gain over AEROcons narrows — but survives (paper: +14 %
  over AEROcons even at 40 bits);
* Baseline and AEROcons lifetimes also degrade with the requirement
  (they tolerate fewer errors too).
"""

from repro.analysis.tables import format_table
from repro.core.ept import build_aggressive_table, published_conservative_table
from repro.lifetime import requirement_sensitivity
from repro.nand.chip_types import TLC_3D_48L

REQUIREMENTS = (40, 50, 63)


def test_fig17_rber_requirement(once):
    results = once(
        requirement_sensitivity,
        TLC_3D_48L,
        requirements=REQUIREMENTS,
        scheme_keys=("baseline", "aero_cons", "aero"),
        block_count=32,
        step=50,
        seed=0xF17,
    )

    conservative = published_conservative_table(TLC_3D_48L)
    print()
    rows = []
    for requirement in REQUIREMENTS:
        comparison = results[requirement]
        aggressive = build_aggressive_table(
            TLC_3D_48L, conservative, requirement_bits_per_kib=requirement
        )
        skips = sum(
            c - a
            for c_row, a_row in zip(conservative.rows, aggressive.rows)
            for c, a in zip(c_row, a_row)
        )
        rows.append(
            [
                requirement,
                comparison.lifetime("baseline"),
                comparison.lifetime("aero_cons"),
                comparison.lifetime("aero"),
                f"{comparison.improvement('aero'):+.1%}",
                skips,
            ]
        )
    print(
        format_table(
            ["requirement", "baseline", "aero_cons", "aero", "aero gain", "EPT skips"],
            rows,
            title="Figure 17 — lifetime vs RBER requirement (bits / 1 KiB)",
        )
    )

    # Everyone's lifetime shrinks with the requirement.
    for key in ("baseline", "aero_cons", "aero"):
        lives = [results[req].lifetime(key) for req in REQUIREMENTS]
        assert lives == sorted(lives), key
    # The aggressive tables lose skips as the margin shrinks.
    skip_counts = [row[-1] for row in rows]
    assert skip_counts == sorted(skip_counts)
    # AERO still beats Baseline at every requirement.
    for requirement in REQUIREMENTS:
        assert results[requirement].improvement("aero") > 0.10
    # AERO's edge over AEROcons survives a weaker ECC (paper: +14 %
    # at 40 bits); allow it to be small but not negative.
    for requirement in REQUIREMENTS:
        comparison = results[requirement]
        assert comparison.lifetime("aero") >= comparison.lifetime("aero_cons") * 0.98
