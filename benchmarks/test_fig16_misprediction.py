"""Figure 16: sensitivity of AERO's benefits to misprediction rate.

Paper results reproduced here:
* even at a 20 % forced misprediction rate (each event costing an extra
  0.5 ms pulse + verify-read), AERO retains most of its lifetime gain
  over Baseline (paper: 42 % of 43 %);
* the performance cost of mispredictions shrinks as PEC grows (total
  erase latency rises, making the 0.5 ms penalty relatively smaller).
"""

from repro.analysis.tables import format_table
from repro.harness import run_workload_cell
from repro.lifetime import misprediction_sensitivity
from repro.nand.chip_types import TLC_3D_48L

RATES = (0.0, 0.05, 0.10, 0.20)


def test_fig16_misprediction(once):
    def campaign():
        lifetime = misprediction_sensitivity(
            TLC_3D_48L,
            rates=RATES,
            scheme_keys=("aero",),
            block_count=32,
            step=50,
            seed=0xF16,
        )
        baseline_life = misprediction_sensitivity(
            TLC_3D_48L,
            rates=(0.0,),
            scheme_keys=("aero_cons",),
            block_count=32,
            step=50,
            seed=0xF16,
        )
        from repro.lifetime import LifetimeSimulator

        base = LifetimeSimulator(
            TLC_3D_48L, "baseline", block_count=32, step=50, seed=0xF16
        ).run()
        # Tail latency at two wear points under the worst rate.
        perf = {}
        for pec in (500, 2500):
            clean = run_workload_cell(
                "aero", pec, "hm", requests=700, seed=0xF16, mispredict_rate=0.0
            )
            noisy = run_workload_cell(
                "aero", pec, "hm", requests=700, seed=0xF16, mispredict_rate=0.2
            )
            perf[pec] = (clean, noisy)
        return lifetime, base, perf

    lifetime, base, perf = once(campaign)

    print()
    rows = [
        [
            f"{rate:.0%}",
            lifetime[rate]["aero"].lifetime_pec,
            f"{lifetime[rate]['aero'].lifetime_pec / base.lifetime_pec - 1:+.1%}",
        ]
        for rate in RATES
    ]
    print(
        format_table(
            ["mispredict rate", "AERO lifetime", "gain vs Baseline"],
            rows,
            title=f"Figure 16 — lifetime vs misprediction rate "
            f"(Baseline {base.lifetime_pec} PEC)",
        )
    )
    for pec, (clean, noisy) in perf.items():
        print(
            f"  p99 read at {pec} PEC: clean {clean.read_tail(99.0):.0f} us, "
            f"20% mispredict {noisy.read_tail(99.0):.0f} us"
        )

    lives = [lifetime[rate]["aero"].lifetime_pec for rate in RATES]
    # Mispredictions cost lifetime monotonically (within one step).
    assert lives[0] >= lives[-1]
    # Even at 20 % the gain over Baseline survives (paper: 42 %).
    assert lives[-1] > base.lifetime_pec * 1.15
    # And the degradation from clean AERO is modest.
    assert lives[-1] >= lives[0] * 0.85
    # Performance: the 20 % tail penalty is bounded at both setpoints.
    for pec, (clean, noisy) in perf.items():
        assert noisy.read_tail(99.0) <= clean.read_tail(99.0) * 1.35
