"""Shared metric families for the instrumented subsystems.

Every instrumented layer (campaign orchestrator, result stores, the
SSD replay path, the kernels) declares its series here, through one
accessor per subsystem returning a namespace of family handles bound
to a registry (the process-global default unless one is injected).
Accessors are get-or-create and cheap — a couple of dict lookups —
so call sites fetch handles at instrumentation *boundaries* (one store
put, one finished cell, one completed replay) rather than caching
global state at import time; injecting a fresh registry in a test
immediately redirects every subsystem.

Naming follows Prometheus conventions: ``repro_`` prefix, ``_total``
counters, base-unit (seconds/bytes) histograms and gauges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.telemetry.registry import MetricFamily, MetricsRegistry

#: Replay latency buckets (seconds): flash reads land around 50-500 us,
#: suspended-erase tails run into tens of milliseconds.
LATENCY_BUCKETS = (
    100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3,
    25e-3, 50e-3, 0.1, 0.25, 1.0,
)

#: Erase latency buckets (seconds): a full multi-pulse block erase is
#: single-digit milliseconds; shallow (ISPE) erases sit below that.
ERASE_LATENCY_BUCKETS = (
    1e-3, 2e-3, 3.5e-3, 5e-3, 7.5e-3, 10e-3, 15e-3, 25e-3, 50e-3,
)

#: Campaign cell wall-time buckets (seconds).
CELL_WALL_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Batch-kernel block-count buckets.
BATCH_SIZE_BUCKETS = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)

#: Store lock contention buckets (seconds): shared/exclusive flock
#: waits range from sub-millisecond handoffs to a full compaction.
LOCK_WAIT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0)


def _registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    if registry is not None:
        return registry
    from repro.telemetry import get_default_registry

    return get_default_registry()


# --- campaign ----------------------------------------------------------------


@dataclass(frozen=True)
class CampaignMetrics:
    planned: MetricFamily        # gauge
    cells: MetricFamily          # counter{outcome}
    pool_pending: MetricFamily   # gauge{pool}
    pool_inflight: MetricFamily  # gauge{pool}
    pool_workers: MetricFamily   # gauge{pool}
    cell_wall: MetricFamily      # histogram
    progress_fraction: MetricFamily  # gauge
    eta_seconds: MetricFamily    # gauge
    retries: MetricFamily        # counter{reason}
    timeouts: MetricFamily       # counter
    quarantined: MetricFamily    # counter
    pool_rebuilds: MetricFamily  # counter{pool}
    engine_fallbacks: MetricFamily  # counter


def campaign_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> CampaignMetrics:
    reg = _registry(registry)
    return CampaignMetrics(
        planned=reg.gauge(
            "repro_campaign_cells_planned",
            "Cells in the campaign plan.",
        ),
        cells=reg.counter(
            "repro_campaign_cells_total",
            "Campaign cells by provenance: executed fresh, resumed "
            "from the store, or superseding an existing store record.",
            labels=("outcome",),
        ),
        pool_pending=reg.gauge(
            "repro_campaign_pool_pending",
            "Cells routed to the pool and not yet completed.",
            labels=("pool",),
        ),
        pool_inflight=reg.gauge(
            "repro_campaign_pool_inflight",
            "Cells concurrently executing in the pool "
            "(min(workers, pending) estimate).",
            labels=("pool",),
        ),
        pool_workers=reg.gauge(
            "repro_campaign_pool_workers",
            "Configured worker count of the pool.",
            labels=("pool",),
        ),
        cell_wall=reg.histogram(
            "repro_campaign_cell_wall_seconds",
            "Wall-clock execution time of one campaign cell.",
            buckets=CELL_WALL_BUCKETS,
        ),
        progress_fraction=reg.gauge(
            "repro_campaign_progress_fraction",
            "Completed fraction of the running campaign.",
        ),
        eta_seconds=reg.gauge(
            "repro_campaign_eta_seconds",
            "Projected seconds until the campaign finishes.",
        ),
        retries=reg.counter(
            "repro_campaign_retries_total",
            "Cell attempts re-queued after a recoverable failure, "
            "by reason (error, timeout, worker_death, persist_fault).",
            labels=("reason",),
        ),
        timeouts=reg.counter(
            "repro_campaign_timeouts_total",
            "Cell attempts killed for exceeding the wall-clock "
            "cell timeout.",
        ),
        quarantined=reg.counter(
            "repro_campaign_quarantined_total",
            "Poison cells quarantined after exhausting retries.",
        ),
        pool_rebuilds=reg.counter(
            "repro_campaign_pool_rebuilds_total",
            "Worker replacements after a worker died or was killed.",
            labels=("pool",),
        ),
        engine_fallbacks=reg.counter(
            "repro_campaign_engine_fallbacks_total",
            "Kernel-engine cells degraded to the object engine after "
            "exhausting kernel-path retries.",
        ),
    )


# --- result stores -----------------------------------------------------------


@dataclass(frozen=True)
class StoreMetrics:
    puts: MetricFamily        # counter
    gets: MetricFamily        # counter{outcome}
    bad_entries: MetricFamily  # counter{reason}
    superseded: MetricFamily  # counter
    compactions: MetricFamily  # counter
    reclaimed_bytes: MetricFamily  # counter
    gc_removed: MetricFamily  # counter
    data_bytes: MetricFamily  # gauge
    bytes_written: MetricFamily  # counter
    lock_waits: MetricFamily  # counter{mode}
    lock_wait_seconds: MetricFamily  # histogram
    generation_rescans: MetricFamily  # counter


def store_metrics(
    backend: str, registry: Optional[MetricsRegistry] = None
) -> "_BoundStoreMetrics":
    """Handles for one store backend (``sharded`` or ``cache``)."""
    reg = _registry(registry)
    labels = ("backend",)
    families = StoreMetrics(
        puts=reg.counter(
            "repro_store_puts_total",
            "Finished cell reports persisted.",
            labels=labels,
        ),
        gets=reg.counter(
            "repro_store_gets_total",
            "Store lookups by outcome (hit or miss).",
            labels=("backend", "outcome"),
        ),
        bad_entries=reg.counter(
            "repro_store_bad_entries_total",
            "Unusable records seen while reading: corrupt payloads, "
            "stale cache versions, torn lines, checksum mismatches.",
            labels=("backend", "reason"),
        ),
        superseded=reg.counter(
            "repro_store_superseded_total",
            "Puts that overwrote an existing record for the same key.",
            labels=labels,
        ),
        compactions=reg.counter(
            "repro_store_compactions_total",
            "Completed compaction passes.",
            labels=labels,
        ),
        reclaimed_bytes=reg.counter(
            "repro_store_reclaimed_bytes_total",
            "Bytes reclaimed by compaction.",
            labels=labels,
        ),
        gc_removed=reg.counter(
            "repro_store_gc_removed_total",
            "Entries removed by garbage collection.",
            labels=labels,
        ),
        data_bytes=reg.gauge(
            "repro_store_data_bytes",
            "Bytes across the store's live segment files.",
            labels=labels,
        ),
        bytes_written=reg.counter(
            "repro_store_bytes_written_total",
            "Bytes appended by puts.",
            labels=labels,
        ),
        lock_waits=reg.counter(
            "repro_store_lock_waits_total",
            "Contended cross-process lock acquisitions, by the mode "
            "that had to wait (shared appends vs exclusive rewrites).",
            labels=("backend", "mode"),
        ),
        lock_wait_seconds=reg.histogram(
            "repro_store_lock_wait_seconds",
            "Time spent blocked on a contended store lock.",
            labels=labels,
            buckets=LOCK_WAIT_BUCKETS,
        ),
        generation_rescans=reg.counter(
            "repro_store_generation_rescans_total",
            "Shard-index rescans forced by another process's "
            "compaction (generation bump or vanished segment).",
            labels=labels,
        ),
    )
    return _BoundStoreMetrics(families, backend)


class _BoundStoreMetrics:
    """StoreMetrics with the ``backend`` label pre-applied."""

    __slots__ = (
        "puts", "superseded", "compactions", "reclaimed_bytes",
        "gc_removed", "data_bytes", "bytes_written",
        "lock_wait_seconds", "generation_rescans", "_gets",
        "_bad_entries", "_lock_waits", "_backend",
    )

    def __init__(self, families: StoreMetrics, backend: str):
        self.puts = families.puts.labels(backend=backend)
        self.superseded = families.superseded.labels(backend=backend)
        self.compactions = families.compactions.labels(backend=backend)
        self.reclaimed_bytes = families.reclaimed_bytes.labels(
            backend=backend
        )
        self.gc_removed = families.gc_removed.labels(backend=backend)
        self.data_bytes = families.data_bytes.labels(backend=backend)
        self.bytes_written = families.bytes_written.labels(
            backend=backend
        )
        self.lock_wait_seconds = families.lock_wait_seconds.labels(
            backend=backend
        )
        self.generation_rescans = families.generation_rescans.labels(
            backend=backend
        )
        self._gets = families.gets
        self._bad_entries = families.bad_entries
        self._lock_waits = families.lock_waits
        self._backend = backend

    def get_outcome(self, hit: bool):
        return self._gets.labels(
            backend=self._backend, outcome="hit" if hit else "miss"
        )

    def bad_entry(self, reason: str):
        return self._bad_entries.labels(
            backend=self._backend, reason=reason
        )

    def lock_waits(self, mode: str):
        return self._lock_waits.labels(
            backend=self._backend, mode=mode
        )


# --- fault injection ---------------------------------------------------------


@dataclass(frozen=True)
class FaultMetrics:
    injected: MetricFamily  # counter{kind}


def fault_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> FaultMetrics:
    reg = _registry(registry)
    return FaultMetrics(
        injected=reg.counter(
            "repro_faults_injected_total",
            "Deterministic faults fired from the armed fault plan, "
            "by kind.",
            labels=("kind",),
        ),
    )


# --- SSD replay / FTL --------------------------------------------------------


@dataclass(frozen=True)
class SsdMetrics:
    replays: MetricFamily        # counter
    requests: MetricFamily       # counter{op}
    latency: MetricFamily        # histogram{op}
    suspensions: MetricFamily    # counter
    resumes: MetricFamily        # counter
    host_reads: MetricFamily     # counter
    host_writes: MetricFamily    # counter
    gc_page_moves: MetricFamily  # counter
    gc_jobs: MetricFamily        # counter
    waf: MetricFamily            # gauge


def ssd_metrics(registry: Optional[MetricsRegistry] = None) -> SsdMetrics:
    reg = _registry(registry)
    return SsdMetrics(
        replays=reg.counter(
            "repro_ssd_replays_total",
            "Completed timed trace replays (either engine).",
        ),
        requests=reg.counter(
            "repro_ssd_requests_total",
            "Host requests completed during timed replays.",
            labels=("op",),
        ),
        latency=reg.histogram(
            "repro_ssd_latency_seconds",
            "Host request latency during timed replays.",
            labels=("op",),
            buckets=LATENCY_BUCKETS,
        ),
        suspensions=reg.counter(
            "repro_ssd_erase_suspensions_total",
            "Erase operations suspended for a user read.",
        ),
        resumes=reg.counter(
            "repro_ssd_erase_resumes_total",
            "Suspended erase operations resumed to completion.",
        ),
        host_reads=reg.counter(
            "repro_ssd_host_reads_total",
            "Host page reads the FTL served (WAF denominator context).",
        ),
        host_writes=reg.counter(
            "repro_ssd_host_writes_total",
            "Host page writes the FTL accepted (WAF denominator).",
        ),
        gc_page_moves=reg.counter(
            "repro_ssd_gc_page_moves_total",
            "Valid pages relocated by garbage collection "
            "(WAF numerator component).",
        ),
        gc_jobs=reg.counter(
            "repro_ssd_gc_jobs_total",
            "Garbage-collection victim erasures performed.",
        ),
        waf=reg.gauge(
            "repro_ssd_waf",
            "Write amplification factor of the most recent replay.",
        ),
    )


@dataclass(frozen=True)
class FtlEraseMetrics:
    erases: MetricFamily   # counter
    pulses: MetricFamily   # counter
    latency: MetricFamily  # histogram


def ftl_erase_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> FtlEraseMetrics:
    reg = _registry(registry)
    return FtlEraseMetrics(
        erases=reg.counter(
            "repro_ssd_erases_total",
            "Block erases performed through the FTL.",
        ),
        pulses=reg.counter(
            "repro_ssd_erase_pulses_total",
            "Erase pulses issued across all FTL block erases.",
        ),
        latency=reg.histogram(
            "repro_ssd_erase_latency_seconds",
            "Per-erase latency through the FTL (scheme-shaped).",
            buckets=ERASE_LATENCY_BUCKETS,
        ),
    )


def observe_replay(report, stats, registry=None) -> None:
    """Ingest one finished replay's aggregates into telemetry.

    Called at the end of :meth:`repro.ssd.ssd.Ssd.run_trace` and
    :func:`repro.kernels.cell.run_trace_kernel` with the finished
    :class:`~repro.ssd.metrics.PerfReport` and the device's cumulative
    :class:`~repro.ftl.stats.FtlStats` — per-event hot loops stay
    untouched. FTL counters are flushed as deltas since the previous
    flush of the same stats object, so a drive cycled through several
    measured windows never double-counts.
    """
    import numpy as np

    metrics = ssd_metrics(registry)
    metrics.replays.inc()
    for op, recorder in (("read", report.reads), ("write", report.writes)):
        values = recorder.values
        if len(values):
            metrics.requests.labels(op=op).inc(len(values))
            metrics.latency.labels(op=op).observe_many(
                np.asarray(values, dtype=float) / 1e6
            )
    metrics.suspensions.inc(report.erase_suspensions)
    # Every suspension in a *completed* replay was resumed and run to
    # completion (the scheduler's FIFO anti-starvation guarantees it),
    # so resumes == suspensions at this boundary on either engine.
    metrics.resumes.inc(report.erase_suspensions)
    flushed = getattr(stats, "_telemetry_flushed", None)
    if flushed is None:
        flushed = {}
        stats._telemetry_flushed = flushed
    for attr, counter in (
        ("host_reads", metrics.host_reads),
        ("host_writes", metrics.host_writes),
        ("gc_page_moves", metrics.gc_page_moves),
        ("gc_jobs", metrics.gc_jobs),
    ):
        current = getattr(stats, attr)
        delta = current - flushed.get(attr, 0)
        if delta > 0:
            counter.inc(delta)
        flushed[attr] = current
    metrics.waf.set(
        report.extra.get("waf", stats.write_amplification)
    )


# --- kernels -----------------------------------------------------------------


@dataclass(frozen=True)
class KernelMetrics:
    engine_cells: MetricFamily  # counter{site, engine}
    batch_blocks: MetricFamily  # histogram


def kernel_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> KernelMetrics:
    reg = _registry(registry)
    return KernelMetrics(
        engine_cells=reg.counter(
            "repro_kernel_engine_total",
            "Engine selections by site: grid-cell replays and "
            "lifetime runs, on the vectorized kernel or object path.",
            labels=("site", "engine"),
        ),
        batch_blocks=reg.histogram(
            "repro_kernel_batch_blocks",
            "Blocks per batch-kernel erase step.",
            buckets=BATCH_SIZE_BUCKETS,
        ),
    )
