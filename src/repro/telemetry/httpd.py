"""Optional ``/metrics`` HTTP endpoint on a daemon thread.

:class:`MetricsServer` wraps a stdlib
:class:`http.server.ThreadingHTTPServer` serving two read-only routes:

* ``/metrics`` — Prometheus text format v0.0.4 (what a Prometheus
  scraper, ``curl``, or ``python -m repro metrics dump --url`` reads);
* ``/metrics.json`` — the JSON snapshot (the same structure
  ``--metrics-json`` writes to disk).

The server thread is a daemon, so a finished CLI process never hangs
on it; ``port=0`` binds an ephemeral port (read it back from
:attr:`MetricsServer.port` / :attr:`MetricsServer.url`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import ConfigError
from repro.telemetry.exposition import TEXT_CONTENT_TYPE, render_text
from repro.telemetry.registry import MetricsRegistry


class MetricsServer:
    """Serve one registry's metrics over HTTP from a daemon thread."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if registry is None:
            from repro.telemetry import get_default_registry

            registry = get_default_registry()
        self.registry = registry
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = render_text(server.registry).encode("utf-8")
                    content_type = TEXT_CONTENT_TYPE
                elif path == "/metrics.json":
                    body = json.dumps(
                        server.registry.snapshot(), indent=2
                    ).encode("utf-8")
                    content_type = "application/json"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-scrape noise
                pass

        try:
            self._httpd = ThreadingHTTPServer((host, port), Handler)
        except OSError as exc:
            raise ConfigError(
                f"cannot bind metrics endpoint on {host}:{port}: {exc}"
            ) from exc
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ConfigError("metrics server already started")
        # Expose the bound port in the registry itself, so snapshots
        # written by a ``--metrics-port 0`` run record where the
        # endpoint actually lived.
        self.registry.gauge(
            "repro_metrics_port",
            "TCP port the metrics endpoint is bound to.",
        ).set(self.port)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
