"""Dependency-free metrics primitives: registry, counter, gauge, histogram.

One :class:`MetricsRegistry` owns a set of named metric *families*;
each family owns labeled *children* (one per distinct label-value
tuple) holding the actual numbers. The design mirrors the Prometheus
client-library data model — counters only go up, gauges go anywhere,
histograms bucket observations under fixed upper bounds — without
pulling in any dependency: everything here is stdlib + the NumPy the
repo already requires (NumPy only for the vectorized
:meth:`Histogram.observe_many` fast path).

Cost model: instrumented subsystems call these primitives at
*boundaries* — one store ``put``, one finished campaign cell, one
completed trace replay — never inside the event-loop or kernel hot
paths, which keep their plain integer counters and hand telemetry the
aggregates afterwards (see :mod:`repro.telemetry.instruments`). A
single update is a couple of dict lookups plus a lock, and
``observe_many`` ingests a whole latency recorder in one vectorized
pass, so tier-1 timings are untouched; nothing here draws randomness,
so results stay bit-identical with instrumentation enabled.

Thread safety: family creation is serialized by a registry lock,
child creation by a family lock, and every numeric update by a child
lock, so ThreadExecutor workers and the metrics HTTP endpoint can hit
one registry concurrently.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigError

#: Default histogram upper bounds (seconds), Prometheus-client-like.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


def _check_name(name: str, what: str) -> None:
    if not name or not (name[0].isalpha() or name[0] == "_") or not all(
        c.isalnum() or c in "_:" for c in name
    ):
        raise ConfigError(f"invalid {what} name {name!r}")


class _Child:
    """Base of one labeled time series; subclasses hold the numbers."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class CounterChild(_Child):
    """A monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(
                f"counters only go up; cannot inc by {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild(_Child):
    """A value that can go up, down, or be set outright."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramChild(_Child):
    """Fixed-bucket histogram: per-bucket counts, sum, and count."""

    __slots__ = ("_bounds", "_counts", "_sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        super().__init__()
        self._bounds = bounds
        # One slot per finite bound plus the +Inf overflow slot;
        # counts are stored per-bucket and cumulated at exposition.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        """Ingest a batch in one pass (vectorized when NumPy-sized)."""
        values = list(values) if not hasattr(values, "__len__") else values
        if not len(values):  # noqa: PLC1802 - ndarray has no __bool__
            return
        import numpy as np

        array = np.asarray(values, dtype=float)
        indices = np.searchsorted(self._bounds, array, side="left")
        per_bucket = np.bincount(indices, minlength=len(self._counts))
        total = float(array.sum())
        with self._lock:
            for index, count in enumerate(per_bucket):
                if count:
                    self._counts[index] += int(count)
            self._sum += total

    def merge_cumulative(
        self, buckets: Sequence[Sequence[Any]], total: float
    ) -> None:
        """Fold another histogram's snapshot buckets into this child.

        ``buckets`` is the :meth:`MetricFamily.snapshot` shape —
        ``[le_text, cumulative_count]`` pairs ending at ``"+Inf"`` —
        so counts are de-cumulated back into per-slot deltas before
        adding; merging N worker snapshots is therefore exact, not
        approximate.
        """
        if len(buckets) != len(self._counts):
            raise ConfigError(
                f"cannot merge a histogram snapshot with {len(buckets)} "
                f"buckets into one with {len(self._counts)}"
            )
        deltas: List[int] = []
        previous = 0
        for _, cumulative in buckets:
            cumulative = int(cumulative)
            if cumulative < previous:
                raise ConfigError(
                    "histogram snapshot buckets must be cumulative"
                )
            deltas.append(cumulative - previous)
            previous = cumulative
        with self._lock:
            for index, delta in enumerate(deltas):
                self._counts[index] += delta
            self._sum += float(total)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out


class MetricFamily:
    """One named metric with a fixed label schema and typed children."""

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        _check_name(name, "metric")
        for label in label_names:
            _check_name(label, "label")
            if label == "le":
                raise ConfigError(
                    "label name 'le' is reserved for histogram buckets"
                )
        if kind not in _VALID_TYPES:
            raise ConfigError(f"unknown metric type {kind!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self.buckets: Optional[Tuple[float, ...]] = None
        if kind == "histogram":
            bounds = tuple(
                float(b) for b in (buckets or DEFAULT_BUCKETS)
            )
            if not bounds or any(
                not math.isfinite(b) for b in bounds
            ) or any(a >= b for a, b in zip(bounds, bounds[1:])):
                raise ConfigError(
                    f"histogram buckets must be finite and strictly "
                    f"increasing, got {bounds!r}"
                )
            self.buckets = bounds
        elif buckets is not None:
            raise ConfigError(f"{kind} metrics take no buckets")
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not label_names:
            self._children[()] = self._new_child()

    def _new_child(self) -> _Child:
        if self.kind == "counter":
            return CounterChild()
        if self.kind == "gauge":
            return GaugeChild()
        return HistogramChild(self.buckets or DEFAULT_BUCKETS)

    # --- child access -------------------------------------------------------

    def labels(self, *values: Any, **kwargs: Any) -> Any:
        """The child for one label-value tuple, created on first use."""
        if values and kwargs:
            raise ConfigError(
                "pass label values either positionally or by name"
            )
        if kwargs:
            extra = set(kwargs) - set(self.label_names)
            missing = set(self.label_names) - set(kwargs)
            if extra or missing:
                raise ConfigError(
                    f"metric {self.name} takes labels "
                    f"{list(self.label_names)}, got {sorted(kwargs)}"
                )
            key = tuple(str(kwargs[name]) for name in self.label_names)
        else:
            if len(values) != len(self.label_names):
                raise ConfigError(
                    f"metric {self.name} takes {len(self.label_names)} "
                    f"label values, got {len(values)}"
                )
            key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    self._children[key] = child
        return child

    def _solo(self) -> Any:
        if self.label_names:
            raise ConfigError(
                f"metric {self.name} is labeled "
                f"({list(self.label_names)}); call .labels(...) first"
            )
        return self._children[()]

    # Unlabeled convenience pass-throughs.

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        self._solo().observe_many(values)

    @property
    def value(self) -> float:
        return self._solo().value

    # --- snapshot -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible state of every child, label-sorted."""
        with self._lock:
            items = sorted(self._children.items())
        samples: List[Dict[str, Any]] = []
        for key, child in items:
            labels = dict(zip(self.label_names, key))
            if isinstance(child, HistogramChild):
                samples.append(
                    {
                        "labels": labels,
                        "buckets": [
                            [_le_text(bound), count]
                            for bound, count in child.cumulative_buckets()
                        ],
                        "sum": child.sum,
                        "count": child.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": child.value})
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "samples": samples,
        }


def _le_text(bound: float) -> str:
    """Prometheus ``le`` label text for one bucket bound."""
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound)) + ".0"
    return repr(bound)


def _le_value(text: str) -> float:
    """Inverse of :func:`_le_text`: bucket bound from ``le`` text."""
    if text == "+Inf":
        return math.inf
    return float(text)


class MetricsRegistry:
    """A named collection of metric families with get-or-create access.

    ``counter``/``gauge``/``histogram`` are idempotent: asking twice
    for the same name returns the same family (so every subsystem can
    declare its metrics at the call site without import-order
    coupling), while re-declaring a name with a different type, label
    schema, or bucket layout is a :class:`~repro.errors.ConfigError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _get_or_create(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name,
                    help,
                    kind,
                    label_names,
                    tuple(buckets) if buckets is not None else None,
                )
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ConfigError(
                f"metric {name} is a {family.kind}, not a {kind}"
            )
        if family.label_names != label_names:
            raise ConfigError(
                f"metric {name} is labeled {list(family.label_names)}, "
                f"not {list(label_names)}"
            )
        if (
            kind == "histogram"
            and buckets is not None
            and family.buckets != tuple(float(b) for b in buckets)
        ):
            raise ConfigError(
                f"metric {name} was declared with buckets "
                f"{family.buckets}, not {tuple(buckets)}"
            )
        return family

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help, "counter", labels)

    def gauge(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._get_or_create(
            name, help, "histogram", labels, buckets=buckets
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def collect(self) -> List[MetricFamily]:
        """Every family, name-sorted (the exposition order)."""
        with self._lock:
            return [
                self._families[name] for name in sorted(self._families)
            ]

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-compatible snapshot of the whole registry.

        The exact structure the Prometheus text writer consumes
        (:func:`repro.telemetry.exposition.render_text`), so the JSON
        and text expositions of one snapshot can never disagree.
        """
        return {
            "snapshot_version": 1,
            "metrics": [family.snapshot() for family in self.collect()],
        }

    def merge_snapshot(self, snapshot: Optional[Mapping[str, Any]]) -> None:
        """Fold a child registry's :meth:`snapshot` into this registry.

        The coordinator-side half of cross-process telemetry: a
        process-pool worker runs its jobs under a fresh registry (see
        :func:`repro.telemetry.scoped_registry`), snapshots it, and
        ships the snapshot home alongside the result. Merging *adds*
        counter values and de-cumulated histogram buckets (so N worker
        snapshots sum exactly), *sets* gauges (point-in-time values),
        and creates any family or child this registry has not yet
        seen. ``None`` and empty snapshots are no-ops; a family whose
        declaration conflicts with an existing one (type, labels,
        bucket layout) raises :class:`~repro.errors.ConfigError`, as a
        direct re-declaration would.
        """
        if not snapshot:
            return
        for metric in snapshot.get("metrics", ()):
            name = metric["name"]
            kind = metric["type"]
            help_text = metric.get("help", "")
            label_names = tuple(metric.get("label_names", ()))
            samples = metric.get("samples", ())
            if kind == "histogram":
                live = [
                    sample
                    for sample in samples
                    if int(sample.get("count", 0)) > 0
                ]
                if not live:
                    # Nothing observed: creating the family here would
                    # pin bucket bounds nobody chose.
                    continue
                bounds = tuple(
                    _le_value(text)
                    for text, _ in live[0]["buckets"]
                    if text != "+Inf"
                )
                family = self.histogram(
                    name, help_text, label_names, buckets=bounds
                )
                for sample in live:
                    child = family.labels(**sample["labels"])
                    child.merge_cumulative(
                        sample["buckets"], sample.get("sum", 0.0)
                    )
            elif kind == "counter":
                family = self.counter(name, help_text, label_names)
                for sample in samples:
                    value = float(sample.get("value", 0.0))
                    if value:
                        family.labels(**sample["labels"]).inc(value)
            elif kind == "gauge":
                family = self.gauge(name, help_text, label_names)
                for sample in samples:
                    family.labels(**sample["labels"]).set(
                        float(sample.get("value", 0.0))
                    )
            else:
                raise ConfigError(
                    f"cannot merge unknown metric type {kind!r}"
                )

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} families)"
