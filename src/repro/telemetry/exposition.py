"""Prometheus text-format v0.0.4 and JSON snapshot exposition.

The text writer consumes the *snapshot* structure produced by
:meth:`repro.telemetry.registry.MetricsRegistry.snapshot` (and also
accepts a registry directly, snapshotting it first). Because the JSON
exposition *is* that snapshot, serialized, the two formats describe
one moment identically by construction — ``render_text(snapshot)``
equals ``render_text(registry)`` taken at the same instant, which the
test suite pins.

:func:`parse_text_format` is the minimal scrape-side parser the CI
metrics smoke step and ``python -m repro metrics dump --url`` use: it
rebuilds families from ``# TYPE`` lines and samples, and enforces the
format's structural invariants (parsable samples, known family types,
histogram bucket cumulativity, ``+Inf`` == ``_count``, ``_sum``
present), raising :class:`~repro.errors.ConfigError` on violations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.errors import ConfigError
from repro.telemetry.registry import MetricsRegistry

#: The Content-Type a Prometheus scraper expects from ``/metrics``.
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def render_text(
    source: Union[MetricsRegistry, Mapping[str, Any]],
) -> str:
    """Render a registry or snapshot dict as Prometheus text format."""
    snapshot = (
        source.snapshot()
        if isinstance(source, MetricsRegistry) else source
    )
    lines: List[str] = []
    for family in snapshot.get("metrics", []):
        name = family["name"]
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = dict(sample.get("labels") or {})
            if family["type"] == "histogram":
                for le, count in sample["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{name}_bucket{_label_text(bucket_labels)} "
                        f"{_format_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_text(labels)} "
                    f"{_format_value(sample['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_label_text(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# --- minimal scrape-side parser ----------------------------------------------


@dataclass
class ParsedFamily:
    """One family rebuilt from scraped text."""

    name: str
    kind: str
    help: str = ""
    #: ``(sample_name, sorted label items)`` -> value
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = field(
        default_factory=dict
    )

    def value(
        self, labels: Mapping[str, str] = (), sample_name: str = ""
    ) -> float:
        key = (sample_name or self.name, tuple(sorted(dict(labels).items())))
        if key not in self.samples:
            raise ConfigError(
                f"no sample {key[0]}{dict(labels)!r} in family {self.name}"
            )
        return self.samples[key]


def _parse_labels(text: str, line: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        name = text[index:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ConfigError(f"unquoted label value in line {line!r}")
        value_chars: List[str] = []
        index = eq + 2
        while True:
            char = text[index]
            if char == "\\":
                escape = text[index + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escape, escape)
                )
                index += 2
            elif char == '"':
                index += 1
                break
            else:
                value_chars.append(char)
                index += 1
        labels[name] = "".join(value_chars)
    return labels


def _parse_sample_value(text: str, line: str) -> float:
    text = text.strip()
    specials = {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}
    if text in specials:
        return specials[text]
    try:
        return float(text)
    except ValueError:
        raise ConfigError(f"bad sample value in line {line!r}") from None


def _family_of(sample_name: str, families: Dict[str, ParsedFamily]):
    family = families.get(sample_name)
    if family is not None:
        return family
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = families.get(sample_name[: -len(suffix)])
            if family is not None and family.kind == "histogram":
                return family
    return None


def parse_text_format(text: str) -> Dict[str, ParsedFamily]:
    """Parse (and validate) Prometheus text exposition into families."""
    families: Dict[str, ParsedFamily] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # a plain comment
            name = parts[2]
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram"):
                    raise ConfigError(
                        f"unknown metric type in line {line!r}"
                    )
                family = families.get(name)
                if family is None:
                    families[name] = ParsedFamily(name=name, kind=kind)
                elif family.kind == "untyped" and not family.samples:
                    family.kind = kind  # HELP preceded TYPE
                else:
                    raise ConfigError(f"duplicate TYPE for {name}")
            else:
                help_text = parts[3] if len(parts) > 3 else ""
                family = families.get(name)
                if family is None:
                    families[name] = ParsedFamily(
                        name=name, kind="untyped", help=help_text
                    )
                else:
                    family.help = help_text
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ConfigError(f"unbalanced labels in line {line!r}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], line)
            value = _parse_sample_value(line[close + 1 :], line)
        else:
            fields = line.split()
            if len(fields) < 2:
                raise ConfigError(f"unparsable sample line {line!r}")
            sample_name, labels = fields[0], {}
            value = _parse_sample_value(fields[1], line)
        family = _family_of(sample_name, families)
        if family is None:
            raise ConfigError(
                f"sample {sample_name!r} has no preceding # TYPE line"
            )
        key = (sample_name, tuple(sorted(labels.items())))
        if key in family.samples:
            raise ConfigError(f"duplicate sample {sample_name}{labels!r}")
        family.samples[key] = value
    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, ParsedFamily]) -> None:
    for family in families.values():
        if family.kind != "histogram":
            continue
        # Group bucket samples by their non-``le`` labels.
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]]
        series = {}
        for (sample_name, labels), value in family.samples.items():
            if sample_name != f"{family.name}_bucket":
                continue
            label_map = dict(labels)
            le = label_map.pop("le", None)
            if le is None:
                raise ConfigError(
                    f"{family.name}_bucket sample without le label"
                )
            bound = (
                math.inf if le == "+Inf" else float(le)
            )
            series.setdefault(
                tuple(sorted(label_map.items())), []
            ).append((bound, value))
        for labels, buckets in series.items():
            buckets.sort(key=lambda pair: pair[0])
            counts = [count for _, count in buckets]
            if any(a > b for a, b in zip(counts, counts[1:])):
                raise ConfigError(
                    f"{family.name} buckets not cumulative for "
                    f"{dict(labels)!r}"
                )
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ConfigError(
                    f"{family.name} is missing its +Inf bucket for "
                    f"{dict(labels)!r}"
                )
            for suffix in ("_sum", "_count"):
                if (family.name + suffix, labels) not in family.samples:
                    raise ConfigError(
                        f"{family.name} is missing {family.name}{suffix} "
                        f"for {dict(labels)!r}"
                    )
            count = family.samples[(family.name + "_count", labels)]
            if buckets[-1][1] != count:
                raise ConfigError(
                    f"{family.name} +Inf bucket ({buckets[-1][1]:g}) != "
                    f"_count ({count:g}) for {dict(labels)!r}"
                )
