"""Telemetry: metrics registry, Prometheus exposition, instrumentation.

The subsystem has four small parts:

* :mod:`repro.telemetry.registry` — dependency-free ``Counter`` /
  ``Gauge`` / fixed-bucket ``Histogram`` primitives behind a
  thread-safe :class:`MetricsRegistry`;
* :mod:`repro.telemetry.exposition` — Prometheus text-format v0.0.4
  and JSON snapshot writers (plus the minimal scrape-side parser CI
  uses to validate them);
* :mod:`repro.telemetry.httpd` — an optional stdlib ``/metrics``
  endpoint on a daemon thread;
* :mod:`repro.telemetry.instruments` — the metric families each
  instrumented subsystem (campaigns, stores, the SSD replay path,
  kernels) declares and feeds at execution boundaries.

A process-global default registry serves the common case (the CLI's
``--metrics-port`` / ``--metrics-json`` and ``metrics dump`` read it);
tests inject their own via :func:`set_default_registry` or the
:func:`scoped_registry` context manager and every instrument call
site picks the new registry up immediately.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from repro.telemetry.exposition import (
    TEXT_CONTENT_TYPE,
    parse_text_format,
    render_text,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)

_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The process-global registry every instrument defaults to."""
    with _default_lock:
        return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


@contextlib.contextmanager
def scoped_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (a fresh one by default) as the
    process default — the test-suite idiom for isolated counters."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


def __getattr__(name: str):
    # MetricsServer pulls in http.server; load it only when asked for.
    if name == "MetricsServer":
        from repro.telemetry.httpd import MetricsServer

        return MetricsServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "TEXT_CONTENT_TYPE",
    "get_default_registry",
    "parse_text_format",
    "render_text",
    "scoped_registry",
    "set_default_registry",
]
