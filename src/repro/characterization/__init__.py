"""Virtual real-device characterization study (paper Section 5).

Substitutes the paper's FPGA testing platform + 160 physical chips with
the statistical device model, exposing the same experimental surface:
pulse-granular erase control, fail-bit readout, accelerated retention
bakes, and per-block measurement campaigns behind Figures 4 and 7-11.
"""

from repro.characterization.platform import TestPlatform
from repro.characterization.bake import (
    arrhenius_acceleration,
    bake_hours_for_retention,
)
from repro.characterization.experiments import (
    EraseLatencyCdfResult,
    FailbitLinearityResult,
    FelpAccuracyResult,
    ReliabilityMarginResult,
    ShallowErasureResult,
    erase_latency_cdf,
    failbit_linearity,
    felp_accuracy,
    reliability_margin,
    shallow_erasure_sweep,
)
from repro.characterization.fitting import GammaDeltaFit, fit_gamma_delta

__all__ = [
    "EraseLatencyCdfResult",
    "FailbitLinearityResult",
    "FelpAccuracyResult",
    "GammaDeltaFit",
    "ReliabilityMarginResult",
    "ShallowErasureResult",
    "TestPlatform",
    "arrhenius_acceleration",
    "bake_hours_for_retention",
    "erase_latency_cdf",
    "failbit_linearity",
    "felp_accuracy",
    "fit_gamma_delta",
    "reliability_margin",
    "shallow_erasure_sweep",
]
