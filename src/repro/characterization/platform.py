"""Virtual chip-testing platform.

Stand-in for the paper's FPGA-based test infrastructure: a population
of virtual chips whose blocks can be sampled at any P/E-cycle point
(blocks are "pre-cycled" with Baseline ISPE, under which wear age
equals PEC/1000 by construction), erased with pulse-granular control,
and baked for retention. Identical block *clones* can be produced for
paired experiments (erase the same block completely vs insufficiently,
Figure 10).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import ConfigError
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.geometry import BlockAddress
from repro.nand.rber import RberModel
from repro.rng import derive_rng


class TestPlatform:
    """A population of virtual test blocks across virtual chips.

    ``chips * blocks_per_chip`` blocks are addressable; the paper's
    main study uses 160 chips x 120 blocks = 19,200 blocks. The
    temperature controller is implicit: retention is applied through
    the RBER model's reference bake (see
    :mod:`repro.characterization.bake` for the Arrhenius equivalence).
    """

    #: Pages per test block (only relevant for program/read bookkeeping).
    PAGES_PER_BLOCK = 64

    def __init__(
        self,
        profile: ChipProfile,
        chips: int = 16,
        blocks_per_chip: int = 30,
        seed: int = 0xAE20,
    ):
        if chips <= 0 or blocks_per_chip <= 0:
            raise ConfigError("platform needs at least one chip and block")
        self.profile = profile
        self.chips = chips
        self.blocks_per_chip = blocks_per_chip
        self.seed = seed
        self.rber = RberModel(profile)
        self.rng = derive_rng(seed, "platform", profile.name)

    @property
    def block_count(self) -> int:
        return self.chips * self.blocks_per_chip

    # --- block sampling ----------------------------------------------------------

    def block_at(self, index: int, pec: int) -> Block:
        """A fresh clone of test block ``index``, pre-cycled to ``pec``.

        Clones of the same index share their process-variation draw
        (same physical block), so paired treatments are possible; the
        pre-cycling is Baseline ISPE, under which wear age is exactly
        ``pec / 1000`` kilocycles.
        """
        if not 0 <= index < self.block_count:
            raise ConfigError(f"block index {index} outside platform")
        chip, block = divmod(index, self.blocks_per_chip)
        address = BlockAddress(channel=0, chip=chip, plane=0, block=block)
        clone = Block(
            address=address,
            profile=self.profile,
            pages=self.PAGES_PER_BLOCK,
            seed=self.seed,
        )
        clone.wear.age_kilocycles = pec / 1000.0
        clone.wear.pec = pec
        return clone

    def iter_blocks(self, pec: int, count: int | None = None) -> Iterator[Block]:
        """Yield pre-cycled clones of the first ``count`` test blocks."""
        total = self.block_count if count is None else min(count, self.block_count)
        for index in range(total):
            yield self.block_at(index, pec)

    def sample_blocks(self, pec: int, count: int) -> List[Block]:
        """Evenly sample ``count`` pre-cycled blocks across all chips."""
        if count <= 0:
            raise ConfigError("sample count must be positive")
        count = min(count, self.block_count)
        stride = max(1, self.block_count // count)
        return [
            self.block_at(index, pec)
            for index in range(0, stride * count, stride)
        ]

    # --- measurements ----------------------------------------------------------------

    def measure_mrber(self, block: Block, extra_rber: float = 0.0) -> float:
        """MRBER of ``block`` after the reference 1-year retention bake."""
        return self.rber.mrber(
            block.wear,
            extra_rber=extra_rber,
            sensitivity=block.rber_sensitivity,
        ).total
