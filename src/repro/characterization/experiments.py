"""Characterization experiment drivers (Figures 4 and 7-11).

Each driver reproduces one measurement campaign from the paper's
Section 5, returning a structured result the benchmarks render and
assert on. All campaigns use the m-ISPE methodology (0.5 ms loops,
voltage step every 7 loops) to observe minimum erase latencies and
fail-bit trajectories, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.characterization.fitting import GammaDeltaFit, fit_gamma_delta
from repro.characterization.platform import TestPlatform
from repro.core.ept import FelpSample
from repro.erase.mispe import MIspeScheme
from repro.errors import ConfigError
from repro.kernels import BlockArrayState, resolve_kernel
from repro.nand.block import Block
from repro.rng import derive_rng


# --------------------------------------------------------------------------------------
# Figure 4: erase-latency CDF vs P/E cycles
# --------------------------------------------------------------------------------------


@dataclass
class EraseLatencyCdfResult:
    """mtBERS distribution and NISPE histogram per PEC point."""

    pec_points: List[int]
    #: pec -> sorted mtBERS values (ms) across sampled blocks.
    mtbers_ms: Dict[int, List[float]] = field(default_factory=dict)
    #: pec -> {NISPE: block count}.
    nispe_histogram: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def single_loop_fraction(self, pec: int) -> float:
        histogram = self.nispe_histogram[pec]
        total = sum(histogram.values())
        return histogram.get(1, 0) / total if total else 0.0

    def min_loops(self, pec: int) -> int:
        return min(self.nispe_histogram[pec])

    def max_loops(self, pec: int) -> int:
        return max(self.nispe_histogram[pec])

    def std_ms(self, pec: int) -> float:
        return float(np.std(self.mtbers_ms[pec]))

    def fraction_below_ms(self, pec: int, threshold_ms: float) -> float:
        values = self.mtbers_ms[pec]
        return sum(1 for v in values if v <= threshold_ms) / len(values)


def erase_latency_cdf(
    platform: TestPlatform,
    pec_points: Sequence[int] = (0, 1000, 2000, 3000, 4000, 5000),
    blocks_per_point: int = 200,
    engine: str = "auto",
) -> EraseLatencyCdfResult:
    """Measure mtBERS across the population at each PEC point (m-ISPE).

    ``engine="auto"`` (default) measures the whole population per PEC
    point through the vectorized m-ISPE batch kernel — the headline
    quantities (NISPE, mtBERS) are deterministic in each block's
    required-work draw, so kernel and object results are identical;
    ``engine="object"`` keeps the per-block loop.
    """
    scheme = MIspeScheme(platform.profile)
    kernel = resolve_kernel(scheme, engine)
    rng = derive_rng(platform.seed, "fig4")
    result = EraseLatencyCdfResult(pec_points=list(pec_points))
    for pec in pec_points:
        histogram: Dict[int, int] = {}
        if kernel is not None:
            state = BlockArrayState.from_blocks(
                platform.sample_blocks(pec, blocks_per_point)
            )
            _, nispe, mtbers_us = kernel.measure_batch(state)
            values = list(mtbers_us / 1000.0)
            for loops, count in zip(*np.unique(nispe, return_counts=True)):
                histogram[int(loops)] = int(count)
        else:
            values = []
            for block in platform.sample_blocks(pec, blocks_per_point):
                measurement = scheme.measure(block, rng)
                values.append(measurement.min_t_bers_ms)
                histogram[measurement.nispe] = (
                    histogram.get(measurement.nispe, 0) + 1
                )
        result.mtbers_ms[pec] = sorted(values)
        result.nispe_histogram[pec] = histogram
    return result


# --------------------------------------------------------------------------------------
# Figure 7: fail-bit count vs accumulated tEP in the final loop
# --------------------------------------------------------------------------------------


@dataclass
class FailbitLinearityResult:
    """Per-NISPE fail-bit-vs-tEP series and the fitted gamma/delta."""

    #: nispe -> list of (accumulated final-loop tEP ms, max fail bits).
    series: Dict[int, List[Tuple[float, float]]]
    #: nispe -> fitted regularities.
    fits: Dict[int, GammaDeltaFit]
    overall: GammaDeltaFit


def failbit_linearity(
    platform: TestPlatform,
    pec_points: Sequence[int] = (2000, 3000, 4000, 5000),
    blocks_per_point: int = 120,
    engine: str = "auto",
) -> FailbitLinearityResult:
    """Reproduce Figure 7: F falls by ~delta per 0.5 ms, floors at gamma.

    ``engine="auto"`` (default) generates each PEC point's fail-bit
    traces in one vectorized batch through the m-ISPE kernel (same
    verify-read model, kernel-local noise stream); ``engine="object"``
    replays the per-block measurement loop.
    """
    scheme = MIspeScheme(platform.profile)
    kernel = resolve_kernel(scheme, engine)
    rng = derive_rng(platform.seed, "fig7")
    per_loop = platform.profile.pulses_per_loop
    traces_by_nispe: Dict[int, List[List[int]]] = {}
    for pec in pec_points:
        if kernel is not None:
            state = BlockArrayState.from_blocks(
                platform.sample_blocks(pec, blocks_per_point)
            )
            required, traces = kernel.trace_batch(state, rng)
            nispe = (required + per_loop - 1) // per_loop
            for index in range(state.count):
                if nispe[index] < 2:
                    continue
                traces_by_nispe.setdefault(int(nispe[index]), []).append(
                    traces[index, : required[index]].tolist()
                )
            continue
        for block in platform.sample_blocks(pec, blocks_per_point):
            measurement = scheme.measure(block, rng)
            if measurement.nispe < 2:
                continue
            traces_by_nispe.setdefault(measurement.nispe, []).append(
                measurement.fail_bits_per_pulse
            )
    if not traces_by_nispe:
        raise ConfigError("no multi-loop blocks found; raise the PEC points")
    series: Dict[int, List[Tuple[float, float]]] = {}
    fits: Dict[int, GammaDeltaFit] = {}
    quantum_ms = platform.profile.pulse_quantum_us / 1000.0
    all_traces: List[List[int]] = []
    for nispe, traces in sorted(traces_by_nispe.items()):
        all_traces.extend(traces)
        # Max F at each accumulated tEP position within the final loop.
        max_at: Dict[int, float] = {}
        for trace in traces:
            final_start = per_loop * (nispe - 1)
            for offset, fail_bits in enumerate(trace[final_start:]):
                max_at[offset + 1] = max(max_at.get(offset + 1, 0.0), float(fail_bits))
        series[nispe] = [
            (pulses * quantum_ms, value) for pulses, value in sorted(max_at.items())
        ]
        fits[nispe] = fit_gamma_delta(traces)
    overall = fit_gamma_delta(all_traces)
    return FailbitLinearityResult(series=series, fits=fits, overall=overall)


# --------------------------------------------------------------------------------------
# Figure 8: FELP accuracy — P(mtEP(N) | fail-bit range of F(N-1))
# --------------------------------------------------------------------------------------


@dataclass
class FelpAccuracyResult:
    """Joint distribution of predictor input vs ground truth."""

    #: nispe -> {range_index: {mtEP_pulses: count}}.
    joint: Dict[int, Dict[int, Dict[int, int]]]
    #: Samples usable to build an EPT (see repro.core.ept).
    samples: List[FelpSample]

    def majority_fraction(self, nispe: int) -> float:
        """Weighted share of each range's most common mtEP (paper >=66 %)."""
        buckets = self.joint.get(nispe, {})
        total = 0
        majority = 0
        for counts in buckets.values():
            if not counts:
                continue
            total += sum(counts.values())
            majority += max(counts.values())
        return majority / total if total else 0.0

    def conservative_coverage(self, profile) -> float:
        """Fraction of samples whose Table-1 prediction was sufficient."""
        if not self.samples:
            return 0.0
        from repro.core.ept import published_conservative_table

        table = published_conservative_table(profile)
        covered = sum(
            1
            for sample in self.samples
            if table.lookup_pulses(profile, sample.loop, sample.fail_bits)
            >= sample.remaining_pulses
        )
        return covered / len(self.samples)


def felp_accuracy(
    platform: TestPlatform,
    pec_points: Sequence[int] = (1000, 2000, 3000, 4000, 5000),
    blocks_per_point: int = 160,
    engine: str = "auto",
) -> FelpAccuracyResult:
    """Reproduce Figure 8: F(N-1) conservatively predicts mtEP(N).

    ``engine="auto"`` (default) draws each PEC point's fail-bit traces
    in one vectorized batch through the m-ISPE kernel (same verify-read
    model, kernel-local noise stream, like the Figure 7 campaign);
    ``engine="object"`` keeps the per-block measurement loop.
    """
    scheme = MIspeScheme(platform.profile)
    kernel = resolve_kernel(scheme, engine)
    rng = derive_rng(platform.seed, "fig8")
    profile = platform.profile
    per_loop = profile.pulses_per_loop
    joint: Dict[int, Dict[int, Dict[int, int]]] = {}
    samples: List[FelpSample] = []
    for pec in pec_points:
        blocks = platform.sample_blocks(pec, blocks_per_point)
        if kernel is not None:
            state = BlockArrayState.from_blocks(blocks)
            required, traces = kernel.trace_batch(state, rng)
            measurements = [
                (int(required[i]), traces[i]) for i in range(state.count)
            ]
        else:
            measurements = [
                (m.short_loops, m.fail_bits_per_pulse)
                for m in (scheme.measure(block, rng) for block in blocks)
            ]
        for work, trace in measurements:
            nispe = (work + per_loop - 1) // per_loop
            if nispe >= 2:
                f_prev = int(trace[per_loop * (nispe - 1) - 1])
                remaining = work - per_loop * (nispe - 1)
                range_index = profile.failbit_range_index(f_prev)
                joint.setdefault(nispe, {}).setdefault(range_index, {})
                bucket = joint[nispe][range_index]
                bucket[remaining] = bucket.get(remaining, 0) + 1
                samples.append(
                    FelpSample(
                        loop=nispe, fail_bits=f_prev, remaining_pulses=remaining
                    )
                )
            elif work > 2:
                # Single-loop block: the shallow probe's F(0) predicts
                # the remainder (EPT row 1).
                f0 = int(trace[1])
                samples.append(
                    FelpSample(loop=1, fail_bits=f0, remaining_pulses=work - 2)
                )
    return FelpAccuracyResult(joint=joint, samples=samples)


# --------------------------------------------------------------------------------------
# Figure 9: shallow erasure feasibility and tSE selection
# --------------------------------------------------------------------------------------


@dataclass
class ShallowErasureResult:
    """F(0) distribution and achievable tBERS per (tSE, PEC)."""

    #: (tse_pulses, pec) -> histogram of fail-bit range indices of F(0).
    f0_ranges: Dict[Tuple[int, int], Dict[int, int]]
    #: (tse_pulses, pec) -> average achievable single-loop tBERS (ms).
    avg_tbers_ms: Dict[Tuple[int, int], float]
    #: (tse_pulses, pec) -> fraction of blocks finishing below default tEP.
    reduced_fraction: Dict[Tuple[int, int], float]


def shallow_erasure_sweep(
    platform: TestPlatform,
    tse_pulses_options: Sequence[int] = (1, 2, 3, 4),
    pec_points: Sequence[int] = (100, 500),
    blocks_per_point: int = 200,
    engine: str = "auto",
) -> ShallowErasureResult:
    """Reproduce Figure 9: sweep the shallow-probe length.

    For each block the campaign measures F(0) after ``tSE`` and the
    single-loop erase latency achievable with the conservative
    remainder prediction: ``tSE + tVR + tRE + tVR`` (capped at the
    default loop when no reduction is possible).

    ``engine="auto"`` (default) draws each (tSE, PEC) population's
    fail-bit traces in one vectorized batch through the m-ISPE kernel;
    ``engine="object"`` keeps the per-block measurement loop.
    """
    profile = platform.profile
    scheme = MIspeScheme(profile)
    kernel = resolve_kernel(scheme, engine)
    rng = derive_rng(platform.seed, "fig9")
    per_loop = profile.pulses_per_loop
    quantum_ms = profile.pulse_quantum_us / 1000.0
    t_vr_ms = profile.t_vr_us / 1000.0
    from repro.core.ept import published_conservative_table

    table = published_conservative_table(profile)
    f0_ranges: Dict[Tuple[int, int], Dict[int, int]] = {}
    avg_tbers: Dict[Tuple[int, int], float] = {}
    reduced: Dict[Tuple[int, int], float] = {}
    for tse in tse_pulses_options:
        if not 1 <= tse < per_loop:
            raise ConfigError(f"tSE of {tse} pulses is not a shallow probe")
        for pec in pec_points:
            histogram: Dict[int, int] = {}
            latencies: List[float] = []
            reduced_count = 0
            blocks = platform.sample_blocks(pec, blocks_per_point)
            if kernel is not None:
                state = BlockArrayState.from_blocks(blocks)
                required, traces = kernel.trace_batch(state, rng)
                measurements = [
                    (int(required[i]), traces[i, : int(required[i])])
                    for i in range(state.count)
                ]
            else:
                measurements = [
                    (m.short_loops, m.fail_bits_per_pulse)
                    for m in (scheme.measure(block, rng) for block in blocks)
                ]
            for work, trace in measurements:
                if work <= tse:
                    # Probe alone completes the erase.
                    f0 = int(trace[-1])
                    range_index = 0
                    t_total = tse * quantum_ms + t_vr_ms
                    reduced_count += 1
                else:
                    f0 = int(trace[tse - 1])
                    range_index = profile.failbit_range_index(f0)
                    remainder = table.lookup_pulses(profile, 1, f0)
                    remainder = min(remainder, per_loop - tse)
                    total_pulses = tse + remainder
                    if total_pulses < per_loop:
                        reduced_count += 1
                    t_total = total_pulses * quantum_ms + 2 * t_vr_ms
                    if work > per_loop:
                        # Multi-loop block: Figure 9 reports the first
                        # loop only; the probe still caps at default.
                        t_total = per_loop * quantum_ms + 2 * t_vr_ms
                histogram[range_index] = histogram.get(range_index, 0) + 1
                latencies.append(t_total)
            key = (tse, pec)
            f0_ranges[key] = histogram
            avg_tbers[key] = float(np.mean(latencies))
            reduced[key] = reduced_count / len(blocks)
    return ShallowErasureResult(
        f0_ranges=f0_ranges, avg_tbers_ms=avg_tbers, reduced_fraction=reduced
    )


# --------------------------------------------------------------------------------------
# Figures 10 & 11: reliability margin of insufficient erasure
# --------------------------------------------------------------------------------------


@dataclass
class ReliabilityMarginResult:
    """Max MRBER after complete vs insufficient erasure."""

    profile_name: str
    requirement: int
    capability: int
    #: nispe -> max MRBER across blocks after complete erasure.
    complete_max: Dict[int, float]
    #: (nispe, range_index_of_F(N-1)) -> max MRBER after skipping EP(N).
    insufficient_max: Dict[Tuple[int, int], float]

    def safe(self, nispe: int, range_index: int) -> bool:
        """Whether skipping the final loop meets the RBER requirement."""
        key = (nispe, range_index)
        if key not in self.insufficient_max:
            return False
        return self.insufficient_max[key] <= self.requirement

    def safe_conditions(self) -> List[Tuple[int, int]]:
        """All (NISPE, range) pairs safe to under-erase (paper: C1, C2)."""
        return sorted(
            key for key in self.insufficient_max if self.safe(*key)
        )


def reliability_margin(
    platform: TestPlatform,
    pec_points: Sequence[int] = (500, 1500, 2500, 3500, 4500),
    blocks_per_point: int = 150,
    requirement: Optional[int] = None,
    engine: str = "auto",
) -> ReliabilityMarginResult:
    """Reproduce Figure 10: the margin left for aggressive reduction.

    For every sampled block, two clones are treated: one erased
    completely (NISPE loops at minimum latency) and one insufficiently
    (only NISPE-1 loops, leaving F(N-1) fail bits). Both then take the
    reference 1-year retention bake and report MRBER.

    ``engine="auto"`` (default) draws the insufficient branch's
    residual fail-bit counts per PEC point in one vectorized batch
    through the m-ISPE kernel (reading F(N-1) off the batch trace
    instead of looping verify reads); the erase physics and MRBER bake
    stay on the real block clones either way. ``engine="object"``
    keeps the fully per-block loop.
    """
    profile = platform.profile
    scheme = MIspeScheme(profile)
    kernel = resolve_kernel(scheme, engine)
    ecc = profile.ecc
    requirement = requirement if requirement is not None else ecc.requirement_bits_per_kib
    rng = derive_rng(platform.seed, "fig10")
    per_loop = profile.pulses_per_loop
    complete_max: Dict[int, float] = {}
    insufficient_max: Dict[Tuple[int, int], float] = {}
    for pec in pec_points:
        indices = [
            (index * 7) % platform.block_count
            for index in range(blocks_per_point)
        ]
        traces = None
        if kernel is not None:
            # Probe clones feed the batch; the jitter stream of each
            # model restarts per clone, so the probes' required work
            # matches the per-block clones erased below.
            probes = [platform.block_at(i, pec) for i in indices]
            _, traces = kernel.trace_batch(
                BlockArrayState.from_blocks(probes), rng
            )
        for position, block_index in enumerate(indices):
            # --- complete erasure -------------------------------------
            complete = platform.block_at(block_index, pec)
            state = complete.begin_erase()
            nispe = _erase_completely(complete, state, per_loop)
            mrber = platform.measure_mrber(complete)
            complete_max[nispe] = max(complete_max.get(nispe, 0.0), mrber)
            # --- insufficient erasure (skip the final loop) ------------
            if nispe < 2:
                continue
            insufficient = platform.block_at(block_index, pec)
            state = insufficient.begin_erase()
            if traces is not None:
                fail_bits = int(traces[position, per_loop * (nispe - 1) - 1])
                for loop in range(1, nispe):
                    state.start_loop(loop)
                    state.apply_pulses(per_loop)
            else:
                fail_bits = 0
                for loop in range(1, nispe):
                    state.start_loop(loop)
                    state.apply_pulses(per_loop)
                    fail_bits = state.verify_read(rng)
            insufficient.finish_erase(
                state, residual_fail_bits=fail_bits, nispe=nispe
            )
            range_index = profile.failbit_range_index(fail_bits)
            mrber = platform.measure_mrber(insufficient)
            key = (nispe, range_index)
            insufficient_max[key] = max(insufficient_max.get(key, 0.0), mrber)
    return ReliabilityMarginResult(
        profile_name=profile.name,
        requirement=requirement,
        capability=ecc.capability_bits_per_kib,
        complete_max=complete_max,
        insufficient_max=insufficient_max,
    )


def _erase_completely(block: Block, state, per_loop: int) -> int:
    """Erase with exactly the minimum work; returns NISPE."""
    required = state.required
    nispe = (required + per_loop - 1) // per_loop
    for loop in range(1, nispe + 1):
        state.start_loop(loop)
        pulses = per_loop if loop < nispe else required - per_loop * (nispe - 1)
        state.apply_pulses(pulses)
    block.finish_erase(state)
    return nispe
