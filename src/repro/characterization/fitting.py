"""Model fitting over characterization data.

``fit_gamma_delta`` recovers the Figure 7 regularities — the per-pulse
fail-bit slope ``delta`` and the one-pulse-left floor ``gamma`` — from
m-ISPE fail-bit traces, exactly the two values the paper says suffice
to implement FELP on a new chip type (Section 5.2 conclusion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class GammaDeltaFit:
    """Fitted fail-bit regularities of one chip type."""

    gamma: float
    delta: float
    #: Linear-fit determination coefficient of the slope region.
    r_squared: float
    samples: int

    def within(self, gamma_tol: float, delta_tol: float, profile) -> bool:
        """Whether the fit matches the profile within tolerances."""
        return (
            abs(self.gamma - profile.gamma) <= gamma_tol * profile.gamma
            and abs(self.delta - profile.delta) <= delta_tol * profile.delta
        )


def fit_gamma_delta(
    traces: Sequence[Sequence[int]],
) -> GammaDeltaFit:
    """Fit gamma/delta from m-ISPE per-pulse fail-bit traces.

    Each trace is the fail-bit count after every 0.5 ms pulse of one
    erase. ``gamma`` is estimated from the count one pulse before
    completion; ``delta`` from a least-squares line over the linear
    region (counts between ~1 and ~6 delta-equivalents, excluding the
    gamma floor and the saturation plateau).
    """
    gamma_samples: List[float] = []
    xs: List[float] = []
    ys: List[float] = []
    for trace in traces:
        if len(trace) < 2:
            continue
        # The last reading passed (below FPASS); the one before it is
        # the one-pulse-left gamma reading.
        gamma_samples.append(float(trace[-2]))
        # Build (pulses-remaining, fail-bits) pairs for the slope,
        # restricted to the FELP operating range (<= 7 pulses left):
        # beyond FHIGH the count saturates (every bitline fails) and
        # would flatten the fitted line.
        total = len(trace)
        for pulse_index, fail_bits in enumerate(trace[:-1]):
            remaining = total - (pulse_index + 1)
            if 2 <= remaining <= 7:
                xs.append(float(remaining))
                ys.append(float(fail_bits))
    if not gamma_samples or len(xs) < 4:
        raise ConfigError("not enough trace data to fit gamma/delta")
    gamma = float(np.median(gamma_samples))
    x = np.asarray(xs)
    y = np.asarray(ys)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return GammaDeltaFit(
        gamma=gamma,
        delta=float(slope),
        r_squared=r_squared,
        samples=len(gamma_samples),
    )


def linearity_by_group(
    traces: Sequence[Sequence[int]],
    group_sizes: Sequence[int],
) -> List[Tuple[int, GammaDeltaFit]]:
    """Fit gamma/delta separately per group (e.g. per NISPE).

    ``group_sizes`` partitions ``traces`` in order; used to verify the
    paper's claim that the fitted values are consistent across loop
    counts (Figure 7's four panels).
    """
    fits: List[Tuple[int, GammaDeltaFit]] = []
    start = 0
    for group_index, size in enumerate(group_sizes):
        subset = traces[start : start + size]
        start += size
        if subset:
            fits.append((group_index, fit_gamma_delta(subset)))
    return fits
