"""Accelerated retention bake (Arrhenius' law, JEDEC JESD22/JESD218).

The paper emulates a 1-year retention time at 30 C by baking chips at
85 C for 13 hours. With the standard activation energy for charge
de-trapping (~1.1 eV) the Arrhenius acceleration factor between 30 C
and 85 C is ~650x, and 8760 h / 650 ≈ 13.5 h — matching the paper's
methodology (Section 5.1).
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617333262e-5

#: Activation energy for NAND retention loss (eV), JEDEC-typical.
DEFAULT_ACTIVATION_ENERGY_EV = 1.1

#: The paper's reference retention condition.
REFERENCE_TEMP_C = 30.0
REFERENCE_RETENTION_HOURS = 365.0 * 24.0

#: The paper's accelerated bake condition.
BAKE_TEMP_C = 85.0


def _kelvin(celsius: float) -> float:
    if celsius < -273.15:
        raise ConfigError(f"temperature {celsius} C below absolute zero")
    return celsius + 273.15


def arrhenius_acceleration(
    bake_temp_c: float,
    reference_temp_c: float = REFERENCE_TEMP_C,
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
) -> float:
    """Acceleration factor of a bake at ``bake_temp_c`` vs the reference.

    ``AF = exp(Ea/k * (1/T_ref - 1/T_bake))`` — how many hours of
    reference-temperature retention one bake hour emulates.
    """
    if activation_energy_ev <= 0:
        raise ConfigError("activation energy must be positive")
    t_ref = _kelvin(reference_temp_c)
    t_bake = _kelvin(bake_temp_c)
    if t_bake <= t_ref:
        raise ConfigError("bake must be hotter than the reference")
    exponent = (activation_energy_ev / BOLTZMANN_EV) * (1.0 / t_ref - 1.0 / t_bake)
    return math.exp(exponent)


def bake_hours_for_retention(
    retention_hours: float = REFERENCE_RETENTION_HOURS,
    bake_temp_c: float = BAKE_TEMP_C,
    reference_temp_c: float = REFERENCE_TEMP_C,
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
) -> float:
    """Bake duration emulating ``retention_hours`` at the reference temp.

    With the defaults this returns ~13.5 h — the paper's "bake the
    chips at 85 C for 13 hours" for 1-year retention at 30 C.
    """
    if retention_hours <= 0:
        raise ConfigError("retention time must be positive")
    factor = arrhenius_acceleration(
        bake_temp_c, reference_temp_c, activation_energy_ev
    )
    return retention_hours / factor


def retention_scale(
    retention_hours: float,
    reference_hours: float = REFERENCE_RETENTION_HOURS,
) -> float:
    """Scale factor for the RBER retention term vs the reference bake.

    Retention loss is roughly logarithmic in time; the scale is
    ``log(1 + t) / log(1 + t_ref)`` so the reference condition maps
    to 1.0 and zero retention maps to 0.
    """
    if retention_hours < 0:
        raise ConfigError("retention time must be non-negative")
    return math.log1p(retention_hours) / math.log1p(reference_hours)
