"""Deterministic random-number helpers.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` seeded through this module, so any
experiment (characterization campaign, lifetime simulation, trace
generation) is exactly reproducible from its seed.

``derive`` implements hierarchical seeding: a parent seed plus a string
key yields an independent child seed, which keeps per-block / per-chip
streams decoupled (adding blocks does not perturb existing ones).
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Library-wide default seed; experiments may override it.
DEFAULT_SEED = 0xAE20


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a seeded generator (``DEFAULT_SEED`` when ``seed`` is None)."""
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive(seed: int, *keys: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of keys.

    The derivation hashes the parent seed together with the string form
    of each key, so streams for (chip 3, block 17) and (chip 31, block 7)
    never collide the way naive arithmetic mixes would.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for key in keys:
        digest.update(b"/")
        digest.update(str(key).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def derive_rng(seed: int, *keys: object) -> np.random.Generator:
    """Create a generator from a hierarchically derived seed."""
    return make_rng(derive(seed, *keys))


def truncated_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    low: float,
    high: float,
) -> float:
    """Draw one sample from a normal distribution truncated to [low, high].

    Uses simple rejection sampling (the truncation windows used by the
    erase model keep well over half the mass, so this terminates fast);
    falls back to clipping after a bounded number of rejections so the
    function is total even for pathological parameters.
    """
    if low > high:
        raise ValueError(f"empty truncation window [{low}, {high}]")
    for _ in range(64):
        sample = rng.normal(mean, std)
        if low <= sample <= high:
            return float(sample)
    return float(min(max(rng.normal(mean, std), low), high))
