"""Vectorized batch erase kernels: one array op instead of N objects.

Each kernel advances an entire :class:`~repro.kernels.state.BlockArrayState`
by one erase per block, mirroring the decision ladder of the matching
object scheme in :mod:`repro.erase` / :mod:`repro.core.aero`:

* ``baseline`` / ``dpes`` / ``mispe`` / ``iispe`` are *deterministic*
  given each block's required-work draw (verify-read noise never flips
  a pass/fail on these ladders — an unfinished block reports at least
  ``~gamma`` fail bits, far above FPASS), so their kernels reproduce
  the object path's damage trajectory exactly, pulse for pulse.
* ``aero`` / ``aero_cons`` replay the full FELP ladder — shallow probe,
  EPT prediction, aggressive acceptance, misprediction repair — with
  masked array steps. Verify-read noise is drawn from the kernel's own
  generator (vectorized draws cannot interleave with the object path's
  shared stream), so trajectories match statistically, not bit for bit;
  the equivalence suite pins lifetime PEC and trajectory tolerance.

Kernels are stateful where the schemes are (i-ISPE loop memory, AERO
shallow-erase flags): create one kernel per block population and reuse
it across steps, exactly like a scheme instance in an object campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.aero import AeroStats
from repro.erase.dpes import (
    APPLICABLE_PEC_LIMIT,
    PROGRAM_WINDOW_RBER_OFFSET,
    VOLTAGE_REDUCTION,
)
from repro.errors import ConfigError, EraseFailure
from repro.kernels.state import BlockArrayState
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import (
    FAILBIT_SATURATION_DELTAS,
    _jump_efficiency,
    _skip_stress,
)


#: Kernel counters are the same eight fields the object path's
#: :class:`~repro.core.aero.AeroStats` tracks — one definition keeps
#: cross-engine stats comparisons in sync.
KernelStats = AeroStats


@dataclass
class BatchEraseResult:
    """Per-block outcome of one batch erase (arrays over the population).

    The batch counterpart of
    :class:`~repro.erase.scheme.EraseOperationResult`, reduced to the
    quantities the lifetime/characterization loops consume: damage,
    final ladder loop, residual under-erasure, and the DPES program
    window offset.
    """

    scheme: str
    damage: np.ndarray
    loops: np.ndarray
    total_pulses: np.ndarray
    residual_fail_bits: np.ndarray
    residual_nispe: np.ndarray
    rber_offset: np.ndarray
    mispredictions: np.ndarray
    accepted_under_erase: np.ndarray
    used_shallow_erase: np.ndarray


class BatchEraseKernel:
    """Base class: wear accounting shared by every scheme kernel."""

    scheme_key: str = "abstract"

    def __init__(self, profile: ChipProfile):
        self.profile = profile
        self.stats = KernelStats()

    def erase_batch(
        self,
        state: BlockArrayState,
        rng: np.random.Generator,
        cycles: int = 1,
    ) -> BatchEraseResult:
        """Erase every block of ``state`` once; account ``cycles`` cycles.

        Mirrors :meth:`EraseScheme.erase`: the scheme body resolves the
        ladder, then wear is recorded against the *pre-erase* baseline
        damage, with the under-erase residuals of accepted blocks.
        """
        result = self._run_batch(state, rng)
        nispe = np.where(
            result.accepted_under_erase,
            result.residual_nispe,
            np.maximum(1, result.loops),
        )
        state.record_erase(
            result.damage,
            np.where(result.accepted_under_erase, result.residual_fail_bits, 0),
            nispe,
            cycles=cycles,
        )
        per_loop = self.profile.pulses_per_loop
        self.stats.erases += state.count
        self.stats.pulses_applied += int(result.total_pulses.sum())
        self.stats.pulses_saved_vs_baseline += int(
            np.maximum(
                0, per_loop * np.maximum(result.loops, 1) - result.total_pulses
            ).sum()
        )
        return result

    def _run_batch(
        self, state: BlockArrayState, rng: np.random.Generator
    ) -> BatchEraseResult:
        raise NotImplementedError

    def _result(
        self,
        state: BlockArrayState,
        damage: np.ndarray,
        loops: np.ndarray,
        total_pulses: np.ndarray,
        **overrides: np.ndarray,
    ) -> BatchEraseResult:
        """Assemble a result with all-zero stochastic fields by default."""
        n = state.count
        fields = dict(
            residual_fail_bits=np.zeros(n, dtype=np.int64),
            residual_nispe=np.zeros(n, dtype=np.int64),
            rber_offset=np.zeros(n, dtype=np.float64),
            mispredictions=np.zeros(n, dtype=np.int64),
            accepted_under_erase=np.zeros(n, dtype=bool),
            used_shallow_erase=np.zeros(n, dtype=bool),
        )
        fields.update(overrides)
        return BatchEraseResult(
            scheme=self.scheme_key,
            damage=damage,
            loops=loops.astype(np.int64),
            total_pulses=total_pulses.astype(np.int64),
            **fields,
        )


class BaselineBatchKernel(BatchEraseKernel):
    """Conventional ISPE: full-length pulses, ladder up on failure."""

    scheme_key = "baseline"

    def _run_batch(self, state, rng):
        per_loop = self.profile.pulses_per_loop
        required = state.required_pulses()
        loops = (required + per_loop - 1) // per_loop
        damage = per_loop * state.cum_loop_damage[loops]
        return self._result(state, damage, loops, per_loop * loops)


class DpesBatchKernel(BatchEraseKernel):
    """DPES: the Baseline ladder at reduced VERASE while applicable."""

    scheme_key = "dpes"

    def __init__(self, profile: ChipProfile):
        super().__init__(profile)
        exponent = profile.wear.voltage_damage_exponent
        self.damage_factor = (1.0 - VOLTAGE_REDUCTION) ** exponent

    def _run_batch(self, state, rng):
        per_loop = self.profile.pulses_per_loop
        active = state.pec < APPLICABLE_PEC_LIMIT
        required = state.required_pulses()
        loops = (required + per_loop - 1) // per_loop
        damage = per_loop * state.cum_loop_damage[loops]
        damage = damage * np.where(active, self.damage_factor, 1.0)
        rber_offset = np.where(active, PROGRAM_WINDOW_RBER_OFFSET, 0.0)
        return self._result(
            state, damage, loops, per_loop * loops, rber_offset=rber_offset
        )


class MispeBatchKernel(BatchEraseKernel):
    """m-ISPE: 0.5 ms sub-pulses, voltage step every ``pulses_per_loop``."""

    scheme_key = "mispe"

    def __init__(self, profile: ChipProfile):
        super().__init__(profile)
        per_loop = profile.pulses_per_loop
        loop_of_pulse = 1 + np.arange(profile.max_pulses) // per_loop
        per_pulse = np.array(
            [profile.pulse_damage(int(k)) for k in loop_of_pulse]
        )
        #: ``damage_by_pulses[p]`` = damage of the first ``p`` sub-pulses.
        self.damage_by_pulses = np.concatenate(([0.0], np.cumsum(per_pulse)))

    def _run_batch(self, state, rng):
        per_loop = self.profile.pulses_per_loop
        required = state.required_pulses()
        loops = (required + per_loop - 1) // per_loop
        damage = self.damage_by_pulses[required]
        return self._result(state, damage, loops, required)

    def measure_batch(
        self, state: BlockArrayState
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`MIspeScheme.measure` headline quantities.

        Returns ``(short_loops, nispe, min_t_bers_us)`` without erasing
        the array (the characterization campaigns sample fresh clones
        per PEC point, so there is no wear to advance). Consumes one
        jitter draw per block, like the object path's erase.
        """
        profile = self.profile
        required = state.required_pulses()
        per_loop = profile.pulses_per_loop
        nispe = (required + per_loop - 1) // per_loop
        min_t_bers_us = (
            required * profile.pulse_quantum_us + nispe * profile.t_vr_us
        )
        return required, nispe, min_t_bers_us

    def trace_batch(
        self, state: BlockArrayState, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized m-ISPE fail-bit traces (Figures 7/8 campaigns).

        Returns ``(required, traces)`` where ``traces[i, j]`` is the
        verify-read count of block ``i`` after its ``j+1``-th sub-pulse
        (columns beyond ``required[i] - 1`` are padding). The verify
        model matches :meth:`EraseState.verify_read` draw for draw in
        distribution; the draws come from ``rng``, so traces are
        deterministic per kernel seed.
        """
        required = state.required_pulses()
        width = int(required.max())
        pulses = np.arange(1, width + 1)
        remaining = required[:, None] - pulses[None, :]
        traces = _failbit_model(self.profile, remaining, rng)
        return required, traces


class IispeBatchKernel(BatchEraseKernel):
    """i-ISPE: jump to the memorized loop; partial credit on 3D chips."""

    scheme_key = "iispe"

    def __init__(self, profile: ChipProfile):
        super().__init__(profile)
        self.efficiency = _jump_efficiency(profile)
        self.skip_stress = _skip_stress(profile)
        self._memory: Optional[np.ndarray] = None

    def _run_batch(self, state, rng):
        per_loop = self.profile.pulses_per_loop
        n = state.count
        if self._memory is None:
            self._memory = np.ones(n, dtype=np.int64)
        elif self._memory.shape[0] != n:
            raise ConfigError(
                "i-ISPE kernel is bound to a different block population"
            )
        memory = self._memory
        required = state.required_pulses()
        baseline_loops = (required + per_loop - 1) // per_loop
        jumped = memory > 1
        # Jump credit per EraseState.start_loop: efficiency * 7 * (m-1),
        # then one full pulse step capped at the loop-m ceiling.
        first_progress = np.minimum(
            per_loop * memory,
            self.efficiency * per_loop * (memory - 1) + per_loop,
        )
        # After any continuous escalation past m, progress tops up to
        # 7*(l-1) + 7 = 7l, so the ladder completes at max(m+1, NISPE).
        final = np.where(
            jumped,
            np.where(
                first_progress >= required,
                memory,
                np.maximum(memory + 1, baseline_loops),
            ),
            baseline_loops,
        )
        start = np.where(jumped, memory, 1)
        span = (
            state.cum_loop_damage[final] - state.cum_loop_damage[start - 1]
        )
        stress = np.where(
            jumped, 1.0 + self.skip_stress * (memory - 1), 1.0
        )
        damage = per_loop * span * stress
        total_pulses = per_loop * (final - start + 1)
        self._memory = final.astype(np.int64)
        return self._result(state, damage, final, total_pulses)


def _failbit_model(
    profile: ChipProfile,
    remaining: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized Figure 7 fail-bit model, shape-generic over ``remaining``.

    Mirrors :meth:`EraseState.verify_read`: ~``gamma`` with one pulse
    left, ``gamma + delta*(r-1)`` plus the bin-composition offset with
    ``r`` left, saturation near ``8*delta``, multiplicative measurement
    noise. Works elementwise on any array shape (1-D verify steps, 2-D
    whole-trace matrices).
    """
    shape = remaining.shape
    u = rng.random(shape)
    gamma, delta = profile.gamma, profile.delta
    true_count = np.where(
        remaining <= 0,
        0.6 * profile.f_pass * u,
        np.where(
            remaining == 1,
            gamma * (0.85 + 0.30 * u),
            gamma + delta * (remaining - 1) + (-0.65 + 0.80 * u) * delta,
        ),
    )
    saturation = FAILBIT_SATURATION_DELTAS * delta
    true_count = np.minimum(
        true_count, saturation * (0.97 + 0.06 * rng.random(shape))
    )
    measured = true_count * (
        1.0 + rng.normal(0.0, profile.failbit_noise, shape)
    )
    return np.maximum(0, np.rint(measured)).astype(np.int64)


def _verify_batch(
    profile: ChipProfile,
    required: np.ndarray,
    progress: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized :meth:`EraseState.verify_read` at the current progress."""
    remaining = np.maximum(
        0, np.ceil(required - progress - 1e-9).astype(np.int64)
    )
    return _failbit_model(profile, remaining, rng)


class AeroBatchKernel(BatchEraseKernel):
    """AERO / AEROcons: the FELP ladder as masked array steps."""

    def __init__(
        self,
        profile: ChipProfile,
        conservative_rows: np.ndarray,
        aggressive_rows: Optional[np.ndarray],
        default_pulses: int,
        acceptance_threshold: int,
        shallow_pulses: int,
        mispredict_rate: float = 0.0,
    ):
        super().__init__(profile)
        self.scheme_key = "aero" if aggressive_rows is not None else "aero_cons"
        self._cons = np.asarray(conservative_rows, dtype=np.int64)
        self._agg = (
            None
            if aggressive_rows is None
            else np.asarray(aggressive_rows, dtype=np.int64)
        )
        self._default = int(default_pulses)
        self._threshold = int(acceptance_threshold)
        self.shallow_pulses = int(shallow_pulses)
        self.mispredict_rate = float(mispredict_rate)
        self._edges = np.asarray(profile.failbit_range_edges(), dtype=np.int64)
        self._shallow: Optional[np.ndarray] = None

    @classmethod
    def from_scheme(cls, scheme) -> "AeroBatchKernel":
        """Build the kernel from a configured :class:`AeroEraseScheme`."""
        predictor = scheme.predictor
        cons = predictor.conservative
        cons_rows = np.array(
            [cons.row(loop) for loop in range(1, cons.loops + 1)]
        )
        agg_rows = None
        if scheme.aggressive and predictor.aggressive is not None:
            agg = predictor.aggressive
            agg_rows = np.array(
                [agg.row(loop) for loop in range(1, agg.loops + 1)]
            )
        return cls(
            scheme.profile,
            cons_rows,
            agg_rows,
            cons.default_pulses,
            predictor.acceptance_threshold(),
            scheme.shallow_pulses,
            mispredict_rate=scheme.mispredict_rate,
        )

    # --- FELP prediction ------------------------------------------------------

    def _predict(
        self, loop: int, fail_bits: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`FelpPredictor.predict` for one ladder loop.

        Returns ``(pulses, reduced, aggressive)`` arrays; above FHIGH
        the default full-length pulse applies and neither flag is set.
        """
        row = min(loop, self._cons.shape[0]) - 1
        range_index = np.searchsorted(self._edges, fail_bits, side="left")
        in_table = range_index < self._edges.shape[0]
        index = np.minimum(range_index, self._edges.shape[0] - 1)
        cons_pulses = self._cons[row, index]
        if self._agg is not None:
            agg_pulses = self._agg[row, index]
            aggressive = in_table & (agg_pulses != cons_pulses)
            pulses = np.where(
                in_table, np.where(aggressive, agg_pulses, cons_pulses),
                self._default,
            )
        else:
            aggressive = np.zeros(fail_bits.shape[0], dtype=bool)
            pulses = np.where(in_table, cons_pulses, self._default)
        reduced = pulses < self._default
        return pulses, reduced, aggressive

    def _inject(
        self,
        pulses: np.ndarray,
        reduced: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized misprediction injection (Figure 16 sensitivity)."""
        if self.mispredict_rate <= 0.0:
            return pulses
        candidates = mask & reduced & (pulses > 0)
        hits = candidates & (
            rng.random(pulses.shape[0]) < self.mispredict_rate
        )
        self.stats.injected_mispredictions += int(hits.sum())
        return np.where(hits, pulses - 1, pulses)

    # --- scheme body ----------------------------------------------------------

    def _run_batch(self, state, rng):
        profile = self.profile
        per_loop = profile.pulses_per_loop
        n = state.count
        if self._shallow is None:
            self._shallow = np.ones(n, dtype=bool)
        elif self._shallow.shape[0] != n:
            raise ConfigError(
                "AERO kernel is bound to a different block population"
            )
        required = state.required_pulses().astype(np.float64)
        pulse_damage = state.pulse_damage_lut

        progress = np.zeros(n)
        pulses_in_loop = np.zeros(n, dtype=np.int64)
        total_pulses = np.zeros(n, dtype=np.int64)
        damage = np.zeros(n)
        completed = np.zeros(n, dtype=bool)
        accepted = np.zeros(n, dtype=bool)
        residual_fail = np.zeros(n, dtype=np.int64)
        residual_nispe = np.zeros(n, dtype=np.int64)
        mispredictions = np.zeros(n, dtype=np.int64)
        fail_bits = np.zeros(n, dtype=np.int64)
        last_loop = np.ones(n, dtype=np.int64)
        used_shallow = self._shallow.copy()
        shallow_useful = np.zeros(n, dtype=bool)

        def apply_pulses(mask: np.ndarray, loop: int, counts) -> None:
            applied = np.where(mask, counts, 0)
            progress[...] = np.where(
                mask, np.minimum(per_loop * loop, progress + applied), progress
            )
            pulses_in_loop[...] = pulses_in_loop + applied
            total_pulses[...] = total_pulses + applied
            damage[...] = damage + applied * pulse_damage[loop]

        def verify(mask: np.ndarray) -> None:
            fail_bits[mask] = _verify_batch(
                profile, required[mask], progress[mask], rng
            )

        def accept(mask: np.ndarray, loop: int) -> None:
            if not mask.any():
                return
            accepted[mask] = True
            residual_fail[mask] = fail_bits[mask]
            residual_nispe[mask] = loop
            self.stats.aggressive_accepts += int(mask.sum())

        def settle(
            mask: np.ndarray,
            loop: int,
            reduced: np.ndarray,
            aggressive: np.ndarray,
        ) -> None:
            """Vectorized :meth:`AeroEraseScheme._settle_loop`."""
            passed = mask & (progress >= required)
            completed[passed] = True
            live = mask & ~passed
            acceptable = (
                live
                & aggressive
                & (fail_bits <= self._threshold)
                & (pulses_in_loop < per_loop)
            )
            accept(acceptable, loop)
            repair = live & ~acceptable & reduced
            if not repair.any():
                return
            count = int(repair.sum())
            mispredictions[repair] += 1
            self.stats.mispredictions += count
            while True:
                repair = repair & (pulses_in_loop < per_loop)
                if not repair.any():
                    break
                apply_pulses(repair, loop, 1)
                verify(repair)
                done = repair & (progress >= required)
                completed[done] = True
                repair &= ~done
                acceptable = (
                    repair
                    & aggressive
                    & (fail_bits <= self._threshold)
                    & (pulses_in_loop < per_loop)
                )
                accept(acceptable, loop)
                repair &= ~acceptable

        # --- loop 1: shallow probe or full default pulse ----------------------
        self.stats.shallow_probes += int(used_shallow.sum())
        everyone = np.ones(n, dtype=bool)
        apply_pulses(
            everyone, 1, np.where(used_shallow, self.shallow_pulses, per_loop)
        )
        verify(everyone)
        passed = progress >= required
        completed[passed] = True
        shallow_useful |= used_shallow & passed

        continued = used_shallow & ~passed
        if continued.any():
            pulses, reduced, aggressive = self._predict(1, fail_bits)
            skip_accept = continued & aggressive & (pulses == 0)
            accept(skip_accept, 1)
            shallow_useful |= skip_accept
            go = continued & ~skip_accept
            if go.any():
                remainder_cap = per_loop - self.shallow_pulses
                capped = np.minimum(pulses, remainder_cap)
                capped = self._inject(capped, reduced, go, rng)
                shallow_useful |= go & (
                    (self.shallow_pulses + capped) < per_loop
                )
                apply_pulses(go, 1, capped)
                verify(go)
                settle(go, 1, reduced, aggressive)

        # Persist the SEF outcome for blocks that ran the probe.
        self._shallow = np.where(used_shallow, shallow_useful, self._shallow)
        self.stats.shallow_useful += int((used_shallow & shallow_useful).sum())

        # --- loops 2..max: predict, pulse, settle -----------------------------
        for loop in range(2, profile.max_loops + 1):
            active = ~completed & ~accepted
            if not active.any():
                break
            pulses, reduced, aggressive = self._predict(loop, fail_bits)
            skip_accept = active & aggressive & (pulses == 0)
            accept(skip_accept, loop)
            go = active & ~skip_accept
            if not go.any():
                continue
            injected = self._inject(pulses, reduced, go, rng)
            last_loop[go] = loop
            # Entering the loop: continuous escalation tops progress up
            # to the previous loop's ceiling and resets the pulse budget.
            progress[...] = np.where(
                go, np.maximum(progress, per_loop * (loop - 1)), progress
            )
            pulses_in_loop[...] = np.where(go, 0, pulses_in_loop)
            apply_pulses(go, loop, injected)
            verify(go)
            settle(go, loop, reduced, aggressive)

        unresolved = ~completed & ~accepted
        if unresolved.any():
            raise EraseFailure(
                f"{self.scheme_key} batch kernel failed to erase "
                f"{int(unresolved.sum())} blocks",
                fail_bits=int(fail_bits[unresolved].max()),
                loops=profile.max_loops,
            )

        loops_final = np.maximum(np.maximum(last_loop, residual_nispe), 1)
        return self._result(
            state,
            damage,
            loops_final,
            total_pulses,
            residual_fail_bits=np.where(accepted, residual_fail, 0),
            residual_nispe=residual_nispe,
            mispredictions=mispredictions,
            accepted_under_erase=accepted,
            used_shallow_erase=used_shallow,
        )
