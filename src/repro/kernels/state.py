"""Structure-of-arrays block state for the vectorized batch kernels.

:class:`BlockArrayState` is the batch counterpart of a list of
:class:`~repro.nand.block.Block` objects: one NumPy array per physical
quantity (process-variation ``base``/``rate`` draws, damage-normalized
wear age, P/E count, residual fail bits / NISPE from the last erase)
instead of one Python object per block. The batch erase kernels in
:mod:`repro.kernels.erase` advance every block of the array per step,
which is what turns the lifetime and characterization hot loops from
O(blocks) Python into a handful of vectorized operations.

Bit-compatibility: the arrays are initialized *from* the existing
:class:`~repro.nand.erase_model.BlockEraseModel` instances (same seed
derivation, same truncated-normal draws), and the per-erase jitter is
drawn from each model's own jitter stream in buffered batches — NumPy
``Generator`` array fills consume the stream exactly like repeated
scalar draws, so the kernel path sees the same required-pulse sequence
as the object path. The wear-age update mirrors
:meth:`~repro.nand.erase_model.WearState.record_erase` term for term.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import (
    ERASE_WEAR_SHARE,
    PROGRAM_WEAR_SHARE,
    BlockEraseModel,
)

#: Jitter draws buffered per refill (one column is consumed per erase).
_JITTER_CHUNK = 64

#: Ladder headroom beyond ``max_loops`` covered by the damage lookup
#: table (i-ISPE may escalate past the datasheet budget).
_LOOP_HEADROOM = 4


class BlockArrayState:
    """Per-block state of a block population, stored as arrays.

    Mutable wear quantities (``age``, ``pec``, ``damage_total``,
    ``residual_fail_bits``, ``residual_nispe``) advance through
    :meth:`record_erase`; the static process-variation draws
    (``base``, ``rate``, ``sensitivity``) are fixed at construction.
    """

    def __init__(self, profile: ChipProfile, models: Sequence[BlockEraseModel]):
        if not models:
            raise ConfigError("block array needs at least one block")
        self.profile = profile
        self.models: List[BlockEraseModel] = list(models)
        n = len(self.models)
        self.count = n
        self.base = np.array([m.base for m in self.models], dtype=np.float64)
        self.rate = np.array([m.rate for m in self.models], dtype=np.float64)
        self.sensitivity = self.rate / profile.erase_work.rate_mean
        self.age = np.zeros(n, dtype=np.float64)
        self.pec = np.zeros(n, dtype=np.int64)
        self.damage_total = np.zeros(n, dtype=np.float64)
        self.residual_fail_bits = np.zeros(n, dtype=np.int64)
        self.residual_nispe = np.ones(n, dtype=np.int64)
        points = profile.erase_work.floor_points
        self._floor_x = np.array([p[0] for p in points], dtype=np.float64)
        self._floor_y = np.array([p[1] for p in points], dtype=np.float64)
        max_loop = profile.max_loops + _LOOP_HEADROOM
        #: ``pulse_damage_lut[k]`` = damage of one pulse quantum in loop k.
        self.pulse_damage_lut = np.array(
            [0.0] + [profile.pulse_damage(k) for k in range(1, max_loop + 1)]
        )
        #: ``cum_loop_damage[k]`` = sum of pulse_damage over loops 1..k.
        self.cum_loop_damage = np.cumsum(self.pulse_damage_lut)
        self._jitter_buf: np.ndarray | None = None
        self._jitter_pos = 0

    # --- construction ---------------------------------------------------------

    @classmethod
    def from_blocks(cls, blocks: Sequence[Block]) -> "BlockArrayState":
        """Mirror a list of ``Block`` objects, wear state included."""
        if not blocks:
            raise ConfigError("block array needs at least one block")
        state = cls(blocks[0].profile, [b.erase_model for b in blocks])
        state.age = np.array([b.wear.age_kilocycles for b in blocks])
        state.pec = np.array([b.wear.pec for b in blocks], dtype=np.int64)
        state.damage_total = np.array([b.wear.damage_total for b in blocks])
        state.residual_fail_bits = np.array(
            [b.wear.residual_fail_bits for b in blocks], dtype=np.int64
        )
        state.residual_nispe = np.array(
            [b.wear.residual_nispe for b in blocks], dtype=np.int64
        )
        return state

    # --- required erase work --------------------------------------------------

    def draw_jitter(self) -> np.ndarray:
        """One erase-to-erase jitter draw per block (buffered refills).

        Consumes each block's own jitter stream, so the sequence seen
        by block ``i`` is identical to what ``required_pulses`` on the
        corresponding :class:`BlockEraseModel` would have drawn.
        """
        if self._jitter_buf is None or self._jitter_pos >= self._jitter_buf.shape[1]:
            self._jitter_buf = np.stack(
                [m.jitter_batch(_JITTER_CHUNK) for m in self.models], axis=0
            )
            self._jitter_pos = 0
        column = self._jitter_buf[:, self._jitter_pos]
        self._jitter_pos += 1
        return column

    def _floor_pulses(self, age: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`EraseWorkModel.floor_pulses` (same rounding)."""
        pec = np.rint(age * 1000.0)
        return np.interp(pec / 1000.0, self._floor_x, self._floor_y)

    def _pulses(self, jitter: np.ndarray | float) -> np.ndarray:
        work = self.profile.erase_work
        raw = self.base + self.rate * self.age ** work.pec_exponent + jitter
        bounded = np.maximum(raw, self._floor_pulses(self.age))
        clipped = np.clip(np.rint(bounded), 1, self.profile.max_pulses)
        return clipped.astype(np.int64)

    def required_pulses(self, jitter: np.ndarray | None = None) -> np.ndarray:
        """Sample each block's required pulses for one erase."""
        if jitter is None:
            jitter = self.draw_jitter()
        return self._pulses(jitter)

    def deterministic_pulses(self) -> np.ndarray:
        """Required pulses at the current wear, without operation jitter."""
        return self._pulses(0.0)

    def nispe(self) -> np.ndarray:
        """Loops a standard ISPE erase needs per block at current wear."""
        per_loop = self.profile.pulses_per_loop
        return (self.deterministic_pulses() + per_loop - 1) // per_loop

    def baseline_damage(self) -> np.ndarray:
        """Damage a Baseline ISPE erase would inflict per block."""
        loops = self.nispe()
        return self.profile.pulses_per_loop * self.cum_loop_damage[loops]

    # --- wear accounting ------------------------------------------------------

    def record_erase(
        self,
        damage: np.ndarray,
        residual_fail_bits: np.ndarray,
        nispe: np.ndarray,
        cycles: int = 1,
    ) -> None:
        """Account one batch erase (``cycles`` coarse-step cycles each).

        Mirrors :meth:`WearState.record_erase`: damage is normalized by
        the Baseline reference at the *pre-erase* wear age, so Baseline
        cycling ages every block by exactly one cycle per erase.
        """
        baseline = self.baseline_damage()
        ratio = np.where(baseline > 0, damage / baseline, 1.0)
        step = (PROGRAM_WEAR_SHARE + ERASE_WEAR_SHARE * ratio) / 1000.0
        self.age = self.age + step * cycles
        self.pec = self.pec + cycles
        self.damage_total = self.damage_total + damage * cycles
        self.residual_fail_bits = np.asarray(residual_fail_bits, dtype=np.int64)
        self.residual_nispe = np.asarray(nispe, dtype=np.int64)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"BlockArrayState({self.profile.name}, blocks={self.count}, "
            f"mean_age={float(np.mean(self.age)):.3f}kc)"
        )
