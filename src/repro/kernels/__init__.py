"""Vectorized batch kernels for the simulator's hot paths.

The package holds the structure-of-arrays block state
(:class:`BlockArrayState`) and one batch erase kernel per built-in
scheme. Schemes opt in by overriding
:meth:`repro.erase.scheme.EraseScheme.batch_kernel`; campaign drivers
call :func:`kernel_for_scheme` and fall back to the per-block object
path when it returns ``None`` (third-party schemes keep working
unchanged).

:mod:`repro.kernels.cell` adds the grid-cell replay kernel behind the
``engine`` knob of :func:`repro.harness.cells.run_workload_cell`:
``precondition_kernel`` / ``run_trace_kernel`` replace the
per-transaction object event loop with a report-identical lean replay,
gated by ``kernel_replay_supported``. Those three are re-exported here
lazily (the cell module pulls in the full SSD stack, which importers
of just ``ENGINES`` should not pay for).
"""

from repro.errors import ConfigError
from repro.kernels.erase import (
    AeroBatchKernel,
    BaselineBatchKernel,
    BatchEraseKernel,
    BatchEraseResult,
    DpesBatchKernel,
    IispeBatchKernel,
    KernelStats,
    MispeBatchKernel,
)
from repro.kernels.state import BlockArrayState

#: Valid values of the campaign ``engine`` knob: ``auto`` prefers the
#: vectorized batch kernel and falls back to the object path for
#: schemes without one; ``object``/``kernel`` force the respective path.
ENGINES = ("auto", "object", "kernel")


def resolve_kernel(scheme, engine: str, scheme_name: str | None = None):
    """Validate ``engine`` and resolve the kernel the campaign should use.

    Returns ``None`` for the object path (``engine="object"``, or
    ``"auto"`` with a kernel-less scheme); raises
    :class:`~repro.errors.ConfigError` for unknown engine values and
    for ``engine="kernel"`` on a scheme that provides no kernel. The
    one place every engine knob (lifetime simulator, characterization
    campaigns, CLI) resolves through.
    """
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    if engine == "object":
        return None
    kernel = kernel_for_scheme(scheme)
    if engine == "kernel" and kernel is None:
        name = scheme_name or getattr(scheme, "name", repr(scheme))
        raise ConfigError(
            f"scheme {name!r} provides no batch kernel; "
            "use engine='object' (or 'auto' to fall back)"
        )
    return kernel


def kernel_for_scheme(scheme) -> "BatchEraseKernel | None":
    """The scheme's batch kernel, or ``None`` for object-path-only schemes.

    Any object with a callable ``batch_kernel`` attribute participates;
    everything else (including third-party registry schemes predating
    the kernel subsystem) falls back to the object path.
    """
    factory = getattr(scheme, "batch_kernel", None)
    if not callable(factory):
        return None
    return factory()


#: Lazily re-exported from :mod:`repro.kernels.cell` (PEP 562).
_CELL_EXPORTS = (
    "kernel_replay_supported",
    "precondition_kernel",
    "run_trace_kernel",
)


def __getattr__(name: str):
    if name in _CELL_EXPORTS:
        from repro.kernels import cell

        return getattr(cell, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AeroBatchKernel",
    "BaselineBatchKernel",
    "BatchEraseKernel",
    "BatchEraseResult",
    "BlockArrayState",
    "DpesBatchKernel",
    "ENGINES",
    "IispeBatchKernel",
    "KernelStats",
    "MispeBatchKernel",
    "kernel_for_scheme",
    "kernel_replay_supported",
    "precondition_kernel",
    "resolve_kernel",
    "run_trace_kernel",
]
