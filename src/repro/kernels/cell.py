"""Event-exact lean replay of one grid cell's timed trace window.

``run_trace_kernel`` is the ``engine="kernel"`` fast path behind
:func:`repro.harness.cells.run_workload_cell`. It produces a
:class:`~repro.ssd.metrics.PerfReport` that is **bit-identical** to the
object path (``Ssd.run_trace``) — same latencies, same float
accumulation order, same RNG stream — while replacing the per-event
object machinery (``Simulator`` heap entries, ``PageTransaction``
dataclasses, ``ChipExecutor``/``SsdController`` callback chains, FTL
page-state objects) with flat locals, tuples, and lists on one merged
heap. ``precondition_kernel`` is the matching fast path for the
untimed steady-state fill that precedes the replay.

How identity is preserved:

* **Event order** — the heap holds ``(time, seq, kind, payload)``
  tuples and every schedule operation allocates the next ``seq`` in the
  exact control-flow position where the object path calls
  ``Simulator.after``/``at``, so same-time events fire in the same
  order. A chip has at most one completion in flight, so completions
  skip the heap entirely: they live in per-chip ``fire``/``fire_seq``
  slots the event loop merges with the heap head under the same
  ``(time, seq)`` order, and cancellation (erase suspension revoking a
  completion) just clears the slot.
* **Float arithmetic** — durations, bus reservations, and the
  suspend/resume segment cursor reproduce the object path's expression
  shapes (association order included), so every timestamp and every
  ``erase_busy_us`` increment is the same float.
* **Erase physics and RNG** — erases are not re-implemented at all:
  the kernel syncs the victim block's write pointer and calls the real
  ``ftl._erase_block``, so scheme code, ``ftl.rng`` draws, wear
  accounting, SEF/feature-command bookkeeping, and per-erase
  ``FtlStats`` updates are the object path's own, in the same order.
* **Mutable device state** — block wear, scheme memories, and erase
  statistics live on the real objects throughout; page states, the
  mapping table, the per-plane allocators, and the bulk ``FtlStats``
  counters are tracked lean and written back at the end, leaving the
  drive exactly as the object path would.

``kernel_replay_supported`` gates the fast path to configurations whose
FTL bookkeeping the kernel replicates exactly (the two built-in FTL
classes, no retired blocks); anything else falls back to the object
path via ``engine="auto"``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import List, Optional

from repro.erase.scheme import EraseScheme
from repro.errors import MappingError, OutOfSpaceError, SimulationError
from repro.ftl.aeroftl import AeroFtl
from repro.ftl.allocator import WriteStream
from repro.ftl.ftl import PageLevelFtl
from repro.nand.block import PageState
from repro.rng import derive_rng
from repro.ssd.metrics import LatencyRecorder, PerfReport
from repro.telemetry.instruments import observe_replay
from repro.units import SECTOR_BYTES

# Heap event kinds. Never compared (the seq field is unique).
# Completions are not heap events: each chip has at most one in flight,
# held in its ``fire``/``fire_seq`` slots and merged with the heap head
# by the event loop.
_ADMIT, _CREDIT, _FINALIZE = 0, 1, 2

# Transactions are plain tuples
#   (kind, priority, chip, req, scale, durs, gc)
# with kind/priority matching the TxnKind/TxnPriority values. ``req``
# is a host-request list [total, done, submit_us, is_read]; ``gc`` is a
# GC tracker list [plane, erase_txn, moves_remaining, erase_submitted].
_READ, _PROGRAM, _GC_READ, _GC_PROGRAM, _ERASE = 0, 1, 2, 3, 4


class _Cursor:
    """Lean :class:`~repro.erase.suspension.SegmentCursor` (same floats)."""

    __slots__ = ("durs", "idx", "consumed", "pending", "count")

    def __init__(self, durs: List[float]):
        self.durs = durs
        self.idx = 0
        self.consumed = 0.0
        self.pending = 0.0
        self.count = 0  # suspensions so far

    def remaining(self) -> float:
        remaining = self.pending
        durs = self.durs
        idx = self.idx
        for index in range(idx, len(durs)):
            duration = durs[index]
            if index == idx:
                duration -= self.consumed
            remaining += duration
        return remaining

    def boundary(self) -> float:
        if self.idx >= len(self.durs):
            return 0.0
        return self.pending + (self.durs[self.idx] - self.consumed)

    def advance(self, elapsed: float) -> float:
        used = 0.0
        budget = elapsed
        if self.pending > 0.0:
            step = min(self.pending, budget)
            self.pending -= step
            used += step
            budget -= step
        durs = self.durs
        idx = self.idx
        consumed = self.consumed
        while budget > 1e-12 and idx < len(durs):
            duration = durs[idx]
            step = min(duration - consumed, budget)
            consumed += step
            used += step
            budget -= step
            if consumed >= duration - 1e-12:
                idx += 1
                consumed = 0.0
        self.idx = idx
        self.consumed = consumed
        return used


class _Bus:
    __slots__ = ("busy_until", "tr")

    def __init__(self, tr: float):
        self.busy_until = 0.0
        self.tr = tr


class _Chip:
    __slots__ = (
        "q0", "q1", "q2", "q3", "busy", "current", "cursor", "run_started",
        "susp_txn", "susp_cursor", "susp_pending", "fire", "fire_seq",
        "suspensions", "erases", "erase_busy", "bus", "t_r", "t_prog",
        "a_read",
    )

    def __init__(self, bus: _Bus, t_r: float, t_prog: float, overhead: float):
        self.q0 = deque()
        self.q1 = deque()
        self.q2 = deque()
        self.q3 = deque()
        self.busy = False
        self.current = None
        self.cursor: Optional[_Cursor] = None
        self.run_started = 0.0
        self.susp_txn = None
        self.susp_cursor: Optional[_Cursor] = None
        self.susp_pending = False
        self.fire: Optional[float] = None  # in-flight completion time
        self.fire_seq = 0
        self.suspensions = 0
        self.erases = 0
        self.erase_busy = 0.0
        self.bus = bus
        self.t_r = t_r
        self.t_prog = t_prog
        self.a_read = overhead + t_r


class _Plane:
    __slots__ = (
        "alloc", "blocks", "free", "free_set", "active_host", "active_gc",
        "chip", "backlog", "pec_min", "pec_max",
    )


class _LeanFtl:
    """Flat snapshot of the FTL plus the lean write/GC fast path.

    Shared by ``precondition_kernel`` and ``run_trace_kernel``: both
    drive the same ``write``/GC closures and call ``write_back`` once
    at the end to restore the real page states, mapping table,
    allocators, and bulk ``FtlStats`` counters.
    """

    __slots__ = (
        "planes", "lmap", "blk_obj", "blk_wp", "blk_valid", "blk_lpns",
        "blk_num", "write", "write_back",
    )


def _lean_ftl(ftl) -> _LeanFtl:
    spec = ftl.spec
    stats = ftl.stats
    scheme = ftl.scheme
    page_count = spec.geometry.pages_per_block
    low_wm = spec.gc.low_watermark
    high_wm = spec.gc.high_watermark
    leveler = ftl.leveler
    wl_gap = leveler.pec_gap_threshold
    wl_cold = wl_gap // 4
    erase_block = ftl._erase_block
    default_scale = type(scheme).program_scale is EraseScheme.program_scale
    program_scale = scheme.program_scale

    blk_obj: List = []
    blk_wp: List[int] = []
    blk_valid: List[int] = []
    blk_lpns: List[List[Optional[int]]] = []
    blk_num: List[int] = []
    blk_pec: List[int] = []
    planes: List[_Plane] = []
    addr_to_idx = {}
    id_to_idx = {}
    for allocator in ftl.planes:
        plane = _Plane()
        plane.alloc = allocator
        plane.chip = None
        plane.backlog = 0
        idxs = []
        for block in allocator.all_blocks:
            index = len(blk_obj)
            blk_obj.append(block)
            addr_to_idx[block.address] = index
            id_to_idx[id(block)] = index
            wp = block.write_pointer
            blk_wp.append(wp)
            blk_valid.append(block.valid_count)
            lpns: List[Optional[int]] = [None] * page_count
            states = block._page_states
            stored = block._page_lpns
            for i in range(wp):
                if states[i] is PageState.VALID:
                    lpns[i] = stored[i]
            blk_lpns.append(lpns)
            blk_num.append(block.address.block)
            blk_pec.append(block.wear.pec)
            idxs.append(index)
        plane.blocks = idxs
        pecs = [blk_pec[b] for b in idxs]
        plane.pec_min = min(pecs)
        plane.pec_max = max(pecs)
        plane.free = deque(id_to_idx[id(b)] for b in allocator._free)
        plane.free_set = set(plane.free)
        host = allocator._active[WriteStream.HOST]
        gc_active = allocator._active[WriteStream.GC]
        plane.active_host = id_to_idx[id(host)] if host is not None else None
        plane.active_gc = (
            id_to_idx[id(gc_active)] if gc_active is not None else None
        )
        planes.append(plane)
    nplanes = len(planes)

    lmap = {
        lpn: (addr_to_idx[address.block_address], address.page)
        for lpn, address in ftl.mapping._map.items()
    }
    lmap_get = lmap.get

    # Bulk counters accumulate locally and flush in write_back (nothing
    # reads them mid-run; per-erase stats update live via _erase_block).
    n_host_writes = 0
    n_gc_moves = 0
    n_wl_moves = 0
    n_gc_jobs = 0
    n_interventions = 0

    def collect_one(plane):
        nonlocal n_gc_moves, n_wl_moves, n_gc_jobs, n_interventions
        host = plane.active_host
        gc_active = plane.active_gc
        free_set = plane.free_set
        blocks = plane.blocks
        # Wear leveling first: cold victim if the plane's PEC gap
        # demands it, else greedy least-valid. Manual single-pass scans
        # (strict < on the (key, block-number) pair keeps min()'s
        # first-minimal tie-breaking); the plane's PEC min/max are
        # maintained incrementally across erases.
        victim = None
        if plane.pec_max - plane.pec_min > wl_gap:
            cold_limit = plane.pec_min + wl_cold
            best_pec = best_num = 0
            for b in blocks:
                if (
                    b != host and b != gc_active and b not in free_set
                    and blk_wp[b] > 0
                ):
                    pec = blk_pec[b]
                    if pec <= cold_limit:
                        num = blk_num[b]
                        if (
                            victim is None or pec < best_pec
                            or (pec == best_pec and num < best_num)
                        ):
                            victim = b
                            best_pec = pec
                            best_num = num
            if victim is not None:
                n_interventions += 1
        if victim is not None:
            n_wl_moves += blk_valid[victim]
        else:
            best_valid = best_num = 0
            for b in blocks:
                if (
                    b != host and b != gc_active and b not in free_set
                    and blk_wp[b] > 0
                ):
                    valid = blk_valid[b]
                    num = blk_num[b]
                    if (
                        victim is None or valid < best_valid
                        or (valid == best_valid and num < best_num)
                    ):
                        victim = b
                        best_valid = valid
                        best_num = num
            if victim is None:
                return None
        moves = 0
        lpns = blk_lpns[victim]
        wp = blk_wp[victim]
        # Cache the GC destination block's state in locals across the
        # move loop (victim is never the GC block); flushed on block
        # switch and at loop end. blk_valid[victim] is not decremented
        # per move — nothing reads it before it is zeroed below.
        gb = plane.active_gc
        if gb is not None:
            gwp = blk_wp[gb]
            gval = blk_valid[gb]
            glpns = blk_lpns[gb]
        for i in range(wp):
            lpn = lpns[i]
            if lpn is None:
                continue
            location = lmap_get(lpn)
            if location is None or location[0] != victim or location[1] != i:
                # Stale copy: invalidate without moving.
                lpns[i] = None
                continue
            if gb is None or gwp >= page_count:
                if gb is not None:
                    blk_wp[gb] = gwp
                    blk_valid[gb] = gval
                free = plane.free
                if not free:
                    raise OutOfSpaceError(
                        f"plane {plane.alloc.address} has no free blocks"
                    )
                gb = free.popleft()
                free_set.discard(gb)
                plane.active_gc = gb
                gwp = blk_wp[gb]
                gval = blk_valid[gb]
                glpns = blk_lpns[gb]
            glpns[gwp] = lpn
            lmap[lpn] = (gb, gwp)
            gwp += 1
            gval += 1
            lpns[i] = None
            moves += 1
        if gb is not None:
            blk_wp[gb] = gwp
            blk_valid[gb] = gval
        n_gc_moves += moves
        # Erase physics through the real FTL: scheme code, ftl.rng
        # draws, wear/SEF/feature accounting and per-erase stats all
        # happen on the real objects, in object-path order.
        # finish_erase only needs the write pointer synced (it resets
        # pages up to it).
        block = blk_obj[victim]
        block.write_pointer = wp
        result = erase_block(block)
        old_pec = blk_pec[victim]
        new_pec = block.wear.pec
        blk_pec[victim] = new_pec
        if new_pec > plane.pec_max:
            plane.pec_max = new_pec
        if old_pec == plane.pec_min:
            plane.pec_min = min(blk_pec[b] for b in blocks)
        blk_wp[victim] = 0
        blk_valid[victim] = 0
        plane.free.append(victim)
        free_set.add(victim)
        n_gc_jobs += 1
        return moves, [segment.duration_us for segment in result.segments]

    def write(lpn):
        """One host page write; returns (plane, block, scale, gc_jobs)."""
        nonlocal n_host_writes
        plane = planes[lpn % nplanes]
        block = plane.active_host
        if block is None or blk_wp[block] >= page_count:
            free = plane.free
            if not free:
                raise OutOfSpaceError(
                    f"plane {plane.alloc.address} has no free blocks"
                )
            block = free.popleft()
            plane.free_set.discard(block)
            plane.active_host = block
        page = blk_wp[block]
        blk_wp[block] = page + 1
        blk_valid[block] += 1
        blk_lpns[block][page] = lpn
        previous = lmap_get(lpn)
        lmap[lpn] = (block, page)
        if previous is not None:
            blk_valid[previous[0]] -= 1
            blk_lpns[previous[0]][previous[1]] = None
        n_host_writes += 1
        scale = 1.0 if default_scale else program_scale(blk_obj[block])
        jobs = None
        free = plane.free
        while len(free) < low_wm:
            job = collect_one(plane)
            if job is None:
                break
            if jobs is None:
                jobs = []
            jobs.append(job)
            if len(free) >= high_wm:
                break
        return plane, block, scale, jobs

    def write_back():
        stats.host_writes += n_host_writes
        stats.gc_page_moves += n_gc_moves
        stats.wear_leveling_moves += n_wl_moves
        stats.gc_jobs += n_gc_jobs
        leveler.interventions += n_interventions
        for index, block in enumerate(blk_obj):
            wp = blk_wp[index]
            lpns = blk_lpns[index]
            states = block._page_states
            stored = block._page_lpns
            for i in range(wp):
                lpn = lpns[i]
                if lpn is not None:
                    states[i] = PageState.VALID
                    stored[i] = lpn
                else:
                    states[i] = PageState.INVALID
                    stored[i] = None
            for i in range(wp, page_count):
                states[i] = PageState.FREE
                stored[i] = None
            block.write_pointer = wp
            block.valid_count = blk_valid[index]
        ftl.mapping._map = {
            lpn: blk_obj[block].address.page(page)
            for lpn, (block, page) in lmap.items()
        }
        for plane in planes:
            allocator = plane.alloc
            allocator._free = deque(blk_obj[b] for b in plane.free)
            allocator._active[WriteStream.HOST] = (
                blk_obj[plane.active_host]
                if plane.active_host is not None else None
            )
            allocator._active[WriteStream.GC] = (
                blk_obj[plane.active_gc]
                if plane.active_gc is not None else None
            )

    lean = _LeanFtl()
    lean.planes = planes
    lean.lmap = lmap
    lean.blk_obj = blk_obj
    lean.blk_wp = blk_wp
    lean.blk_valid = blk_valid
    lean.blk_lpns = blk_lpns
    lean.blk_num = blk_num
    lean.write = write
    lean.write_back = write_back
    return lean


def kernel_replay_supported(ssd) -> bool:
    """Whether the lean cell kernels can drive this SSD bit-exactly.

    The kernels replicate the page/mapping/allocator bookkeeping of the
    two built-in FTL classes; a subclassed FTL may override any of it,
    so only exact types qualify. Retired blocks never occur in grid
    cells (no lifetime cycling) and the lean GC does not model them.
    """
    ftl = ssd.ftl
    if type(ftl) not in (PageLevelFtl, AeroFtl):
        return False
    for allocator in ftl.planes:
        for block in allocator.all_blocks:
            if block.retired:
                return False
    return True


def precondition_kernel(
    ssd,
    footprint_pages: Optional[int] = None,
    overwrite_fraction: float = 0.6,
    write_back: bool = True,
) -> _LeanFtl:
    """Lean twin of :meth:`Ssd.precondition` (identical end state).

    Same write sequence, same GC decisions, same real erases (and
    therefore the same ``ftl.rng``/wear stream) as the object path —
    only the per-page bookkeeping is lean.

    Returns the lean FTL state. With ``write_back=False`` the real FTL
    objects are left stale and the caller must hand the returned state
    to :func:`run_trace_kernel` (via ``lean``), which writes everything
    back after the replay — saving one restore/re-snapshot round trip
    when the two kernels run back to back.
    """
    ftl = ssd.ftl
    spec = ssd.spec
    if footprint_pages is None:
        footprint_pages = spec.logical_pages
    if footprint_pages > spec.logical_pages:
        raise MappingError("footprint exceeds the logical space")
    rng = derive_rng(spec.seed, "precondition")
    lean = _lean_ftl(ftl)
    write = lean.write
    for lpn in range(footprint_pages):
        write(lpn)
    overwrites = int(footprint_pages * overwrite_fraction)
    if overwrites:
        for lpn in rng.integers(0, footprint_pages, size=overwrites):
            write(int(lpn))
    if write_back:
        lean.write_back()
    return lean


def run_trace_kernel(
    ssd,
    trace,
    max_requests: Optional[int] = None,
    workload_name: Optional[str] = None,
    lean: Optional[_LeanFtl] = None,
) -> PerfReport:
    """Replay ``trace`` with the lean cell kernel (report-identical).

    Mirrors :meth:`repro.ssd.ssd.Ssd.run_trace` exactly; see the module
    docstring for how identity is maintained. The caller is expected to
    have checked :func:`kernel_replay_supported`. ``lean`` accepts the
    not-yet-written-back state returned by
    ``precondition_kernel(..., write_back=False)``.
    """
    spec = ssd.spec
    ftl = ssd.ftl
    stats = ftl.stats
    geometry = spec.geometry
    page_size = geometry.page_size
    logical_pages = spec.logical_pages
    sched = spec.scheduler
    suspension_on = sched.erase_suspension
    soh = sched.suspend_overhead_us
    max_susp = sched.max_suspensions_per_erase
    gc_escal = sched.gc_escalation_backlog
    overhead = spec.controller_overhead_us
    decode = spec.profile.ecc.decode_latency_us

    if lean is None:
        lean = _lean_ftl(ftl)
    lmap_get = lean.lmap.get
    ftl_write = lean.write
    push = heappush
    pop = heappop

    # --- timed front end ------------------------------------------------------
    buses = [_Bus(spec.page_transfer_us) for _ in range(geometry.channels)]
    chips: List[_Chip] = []
    chip_map = {}
    for chip in ssd.chips:
        lean_chip = _Chip(
            buses[chip.channel], chip.timing.t_r_us, chip.timing.t_prog_us,
            overhead,
        )
        chips.append(lean_chip)
        chip_map[(chip.channel, chip.chip)] = lean_chip
    for plane in lean.planes:
        address = plane.alloc.address
        plane.chip = chip_map[(address.channel, address.chip)]
    blk_chip = [None] * len(lean.blk_obj)
    for plane in lean.planes:
        for b in plane.blocks:
            blk_chip[b] = plane.chip

    requests = trace.requests
    if max_requests is not None:
        requests = requests[:max_requests]
    # Makespan floor: the replayed slice's horizon (same rule as the
    # object path).
    horizon = requests[-1].arrival_us if requests else 0.0

    # Admissions carry seqs 0..N-1, exactly like the object path's
    # pre-run ``sim.at`` calls; a time-ordered list of strictly
    # increasing seqs is already a valid min-heap.
    heap = []
    seq = 0
    for request in requests:
        heap.append((request.arrival_us, seq, _ADMIT, request))
        seq += 1

    reads = LatencyRecorder("read")
    writes = LatencyRecorder("write")
    read_record = reads.record
    write_record = writes.record
    completed = 0
    last_completion = 0.0
    now = 0.0
    n_host_reads = 0
    n_unmapped = 0

    def request_suspension(chip, cursor):
        nonlocal seq
        if chip.susp_pending:
            return
        if cursor.count >= max_susp:
            return
        chip.erase_busy += cursor.advance(now - chip.run_started)
        chip.run_started = now
        chip.fire = None  # cancel the in-flight completion
        boundary = cursor.boundary()
        chip.susp_pending = True
        push(heap, (now + boundary, seq, _FINALIZE, chip))
        seq += 1

    def execute(chip, txn):
        nonlocal seq
        chip.busy = True
        chip.current = txn
        kind = txn[0]
        if kind == _READ or kind == _GC_READ:
            bus = chip.bus
            cell_done = now + overhead + chip.t_r
            until = bus.busy_until
            start = cell_done if cell_done > until else until
            tr = bus.tr
            bus.busy_until = start + tr
            fire = now + (chip.a_read + ((start - cell_done) + tr) + decode)
        elif kind == _PROGRAM or kind == _GC_PROGRAM:
            bus = chip.bus
            ready = now + overhead
            until = bus.busy_until
            start = ready if ready > until else until
            tr = bus.tr
            bus.busy_until = start + tr
            fire = now + (
                overhead + ((start - ready) + tr) + chip.t_prog * txn[4]
            )
        else:
            cursor = _Cursor(txn[5])
            chip.cursor = cursor
            chip.run_started = now
            fire = now + cursor.remaining()
        chip.fire = fire
        chip.fire_seq = seq
        seq += 1

    def resume_erase(chip):
        nonlocal seq
        txn = chip.susp_txn
        cursor = chip.susp_cursor
        chip.susp_txn = None
        chip.susp_cursor = None
        cursor.pending += soh
        chip.busy = True
        chip.current = txn
        chip.cursor = cursor
        chip.run_started = now
        chip.fire = now + cursor.remaining()
        chip.fire_seq = seq
        seq += 1

    def dispatch(chip):
        if chip.busy:
            return
        if chip.q0:
            execute(chip, chip.q0.popleft())
        elif chip.q1:
            execute(chip, chip.q1.popleft())
        elif chip.q2:
            execute(chip, chip.q2.popleft())
        elif chip.susp_txn is not None:
            # Resume the suspended erase before starting a new one
            # (same anti-starvation rule as ChipExecutor._dispatch).
            resume_erase(chip)
        elif chip.q3:
            execute(chip, chip.q3.popleft())

    def submit_txn(chip, txn):
        priority = txn[1]
        if priority == 0:
            chip.q0.append(txn)
            if suspension_on and chip.busy:
                current = chip.current
                if current is not None and current[0] == _ERASE:
                    cursor = chip.cursor
                    if cursor is not None and cursor.idx < len(cursor.durs):
                        request_suspension(chip, cursor)
        elif priority == 1:
            chip.q1.append(txn)
        elif priority == 2:
            chip.q2.append(txn)
        else:
            chip.q3.append(txn)
        if not chip.busy:
            dispatch(chip)

    def credit_request(req):
        nonlocal completed, last_completion
        req[1] += 1
        if req[1] < req[0]:
            return
        latency = now - req[2]
        if req[3]:
            read_record(latency)
        else:
            write_record(latency)
        completed += 1
        last_completion = now

    def finalize_suspension(chip):
        cursor = chip.cursor
        txn = chip.current
        chip.erase_busy += cursor.advance(now - chip.run_started)
        chip.susp_pending = False
        if cursor.idx >= len(cursor.durs):
            # The boundary was the end of the operation.
            chip.cursor = None
            chip.erases += 1
            chip.busy = False
            chip.current = None
            gc = txn[6]
            if gc is not None:
                backlog = gc[0].backlog - 1
                gc[0].backlog = backlog if backlog > 0 else 0
            dispatch(chip)
            return
        cursor.count += 1
        chip.susp_txn = txn
        chip.susp_cursor = cursor
        chip.cursor = None
        chip.current = None
        chip.busy = False
        chip.suspensions += 1
        dispatch(chip)

    def enqueue_gc_job(plane, moves, durs):
        backlog = plane.backlog
        escalated = backlog >= gc_escal
        plane.backlog = backlog + 1
        chip = plane.chip
        gc = [plane, None, 2 * moves, False]
        erase_txn = (_ERASE, 1 if escalated else 3, chip, None, 1.0, durs, gc)
        gc[1] = erase_txn
        if moves == 0:
            gc[3] = True
            submit_txn(chip, erase_txn)
            return
        # GC moves never trigger suspension (priority > 0), so submits
        # inline to queue-append + dispatch-if-idle. Move txns are
        # value-identical and never compared by identity, so one tuple
        # per kind serves the whole job; and once the first dispatch
        # runs the chip stays busy until a heap event fires, so the
        # object path's remaining per-submit dispatches are no-ops.
        priority = 1 if escalated else 2
        queue = chip.q1 if escalated else chip.q2
        read_txn = (_GC_READ, priority, chip, None, 1.0, None, gc)
        prog_txn = (_GC_PROGRAM, priority, chip, None, 1.0, None, gc)
        queue.append(read_txn)
        if not chip.busy:
            dispatch(chip)
        queue.append(prog_txn)
        if not chip.busy:
            dispatch(chip)
        for _ in range(moves - 1):
            queue.append(read_txn)
            queue.append(prog_txn)

    def admit(request):
        nonlocal seq, n_host_reads, n_unmapped
        first = (request.lba * SECTOR_BYTES) // page_size
        last = (request.end_lba * SECTOR_BYTES - 1) // page_size
        if request.is_read:
            req = [last - first + 1, 0, now, True]
            n_host_reads += last - first + 1
            # One txn tuple per chip serves every page of the request
            # (read txns are value-identical, never identity-compared).
            read_txns = {}
            for raw in range(first, last + 1):
                location = lmap_get(raw % logical_pages)
                if location is None:
                    # Never-written page: answered from the mapping
                    # table after the controller overhead.
                    n_unmapped += 1
                    push(heap, (now + overhead, seq, _CREDIT, req))
                    seq += 1
                else:
                    # submit_txn inlined for the user-read fast path.
                    chip = blk_chip[location[0]]
                    txn = read_txns.get(chip)
                    if txn is None:
                        txn = (_READ, 0, chip, req, 1.0, None, None)
                        read_txns[chip] = txn
                    chip.q0.append(txn)
                    if chip.busy:
                        if suspension_on:
                            current = chip.current
                            if current is not None and current[0] == _ERASE:
                                cursor = chip.cursor
                                if (
                                    cursor is not None
                                    and cursor.idx < len(cursor.durs)
                                ):
                                    request_suspension(chip, cursor)
                    else:
                        dispatch(chip)
        else:
            req = [last - first + 1, 0, now, False]
            for raw in range(first, last + 1):
                plane, block, scale, jobs = ftl_write(raw % logical_pages)
                # submit_txn inlined for the user-program fast path
                # (priority 1 never triggers suspension).
                chip = plane.chip
                chip.q1.append((_PROGRAM, 1, chip, req, scale, None, None))
                if not chip.busy:
                    dispatch(chip)
                if jobs:
                    for moves, durs in jobs:
                        enqueue_gc_job(plane, moves, durs)

    # --- event loop -----------------------------------------------------------
    # The next event is the minimum over the heap head and the chips'
    # in-flight completion slots, compared by the same (time, seq) key
    # the object simulator orders its heap by. Keeping completions out
    # of the heap removes a push+pop per transaction and makes
    # completion chaining implicit: the inlined execute below just
    # refills the chip's slot and the next iteration re-selects.
    while True:
        if heap:
            head = heap[0]
            best_t = head[0]
            best_s = head[1]
        else:
            head = None
            best_t = None
            best_s = 0
        chip = None
        for candidate in chips:
            fire = candidate.fire
            if fire is not None and (
                best_t is None
                or fire < best_t
                or (fire == best_t and candidate.fire_seq < best_s)
            ):
                best_t = fire
                best_s = candidate.fire_seq
                chip = candidate
        if chip is None:
            if head is None:
                break
            pop(heap)
            now = head[0]
            kind = head[2]
            if kind == _ADMIT:
                admit(head[3])
            elif kind == _CREDIT:
                credit_request(head[3])
            else:
                finalize_suspension(head[3])
            continue
        # Completion on ``chip``.
        now = best_t
        chip.fire = None
        txn = chip.current
        req = txn[3]
        if req is not None:
            # Host read/program page completion (common case).
            chip.busy = False
            chip.current = None
            req[1] += 1
            if req[1] >= req[0]:
                latency = now - req[2]
                if req[3]:
                    read_record(latency)
                else:
                    write_record(latency)
                completed += 1
                last_completion = now
        else:
            if txn[0] == _ERASE:
                cursor = chip.cursor
                if cursor is not None:
                    chip.erase_busy += cursor.advance(cursor.remaining())
                chip.cursor = None
                chip.erases += 1
            chip.busy = False
            chip.current = None
            gc = txn[6]
            if gc is not None:
                if txn[0] == _ERASE:
                    backlog = gc[0].backlog - 1
                    gc[0].backlog = backlog if backlog > 0 else 0
                else:
                    gc[2] -= 1
                    if gc[2] == 0 and not gc[3]:
                        gc[3] = True
                        erase_txn = gc[1]
                        submit_txn(erase_txn[2], erase_txn)
        if chip.busy:
            continue
        if chip.q0:
            nxt = chip.q0.popleft()
        elif chip.q1:
            nxt = chip.q1.popleft()
        elif chip.q2:
            nxt = chip.q2.popleft()
        elif chip.susp_txn is not None:
            resume_erase(chip)
            continue
        elif chip.q3:
            nxt = chip.q3.popleft()
        else:
            continue
        # execute() inlined — this is the hottest dispatch site (one
        # per completion); same expression shapes.
        chip.busy = True
        chip.current = nxt
        nkind = nxt[0]
        if nkind == _READ or nkind == _GC_READ:
            bus = chip.bus
            cell_done = now + overhead + chip.t_r
            until = bus.busy_until
            start = cell_done if cell_done > until else until
            tr = bus.tr
            bus.busy_until = start + tr
            fire = now + (chip.a_read + ((start - cell_done) + tr) + decode)
        elif nkind == _PROGRAM or nkind == _GC_PROGRAM:
            bus = chip.bus
            ready = now + overhead
            until = bus.busy_until
            start = ready if ready > until else until
            tr = bus.tr
            bus.busy_until = start + tr
            fire = now + (
                overhead + ((start - ready) + tr) + chip.t_prog * nxt[4]
            )
        else:
            cursor = _Cursor(nxt[5])
            chip.cursor = cursor
            chip.run_started = now
            fire = now + cursor.remaining()
        chip.fire = fire
        chip.fire_seq = seq
        seq += 1

    # Restore the real device (page states, mapping, allocators, bulk
    # stats) before any report/exception, so the drive's state is
    # current just as it always is on the object path.
    stats.host_reads += n_host_reads
    stats.unmapped_reads += n_unmapped
    lean.write_back()

    expected = len(requests)
    if completed != expected:
        raise SimulationError(
            f"replay incomplete: {completed}/{expected} requests finished"
        )
    report = PerfReport(
        workload=workload_name or trace.name,
        scheme=ssd.scheme.name,
        reads=reads,
        writes=writes,
        requests_completed=completed,
        makespan_us=max(last_completion, horizon),
        erases=sum(chip.erases for chip in chips),
        erase_busy_us=sum(chip.erase_busy for chip in chips),
        erase_suspensions=sum(chip.suspensions for chip in chips),
        gc_jobs=stats.gc_jobs,
        gc_page_moves=stats.gc_page_moves,
    )
    report.extra["waf"] = stats.write_amplification
    report.extra["mean_erase_latency_us"] = stats.mean_erase_latency_us
    observe_replay(report, stats)
    return report
