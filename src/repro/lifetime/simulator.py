"""P/E cycling lifetime simulation (Figure 13 methodology).

The paper constructs five sets of 120 blocks and cycles each set with
one erase scheme, measuring the average MRBER (max raw bit errors per
1 KiB under 1-year retention) as PEC grows; a set's lifetime is the
PEC at which the average MRBER crosses the RBER requirement.

The simulator cycles each virtual block with the real scheme
implementations — every erase runs the full decision logic (FELP
lookups, shallow probes, aggressive acceptance, i-ISPE memory, DPES
gating) against the block's erase physics — in coarse steps: one
representative erase is simulated per ``step`` cycles and accounted
``step`` times, which keeps trajectories faithful while making a full
five-scheme sweep take seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.geometry import BlockAddress
from repro.nand.rber import RberModel
from repro.experiments.registry import SCHEMES
from repro.kernels import BlockArrayState, resolve_kernel
from repro.rng import derive, derive_rng
from repro.telemetry.instruments import kernel_metrics


@dataclass
class LifetimeCurve:
    """Average-MRBER trajectory of one scheme's block set."""

    scheme: str
    pec_points: List[int] = field(default_factory=list)
    avg_mrber: List[float] = field(default_factory=list)
    lifetime_pec: Optional[int] = None
    requirement: float = 63.0

    @property
    def initial_mrber(self) -> float:
        return self.avg_mrber[0] if self.avg_mrber else 0.0

    def mrber_at(self, pec: int) -> float:
        """Average MRBER at the recorded point nearest to ``pec``."""
        if not self.pec_points:
            raise ConfigError("empty lifetime curve")
        index = int(np.argmin(np.abs(np.asarray(self.pec_points) - pec)))
        return self.avg_mrber[index]

    def improvement_over(self, baseline: "LifetimeCurve") -> float:
        """Relative lifetime gain vs a baseline curve."""
        if not self.lifetime_pec or not baseline.lifetime_pec:
            raise ConfigError("both curves must have crossed the requirement")
        return self.lifetime_pec / baseline.lifetime_pec - 1.0

    def to_json_dict(self) -> Dict[str, Any]:
        """Serialize to plain JSON types; exact round-trip via
        :meth:`from_json_dict` (floats survive bit-identically)."""
        return {
            "scheme": self.scheme,
            "pec_points": list(self.pec_points),
            "avg_mrber": [float(value) for value in self.avg_mrber],
            "lifetime_pec": self.lifetime_pec,
            "requirement": float(self.requirement),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "LifetimeCurve":
        lifetime_pec = data["lifetime_pec"]
        return cls(
            scheme=str(data["scheme"]),
            pec_points=[int(value) for value in data["pec_points"]],
            avg_mrber=[float(value) for value in data["avg_mrber"]],
            lifetime_pec=None if lifetime_pec is None else int(lifetime_pec),
            requirement=float(data["requirement"]),
        )


class LifetimeSimulator:
    """Cycles one block set with one erase scheme until failure."""

    def __init__(
        self,
        profile: ChipProfile,
        scheme_key: str,
        block_count: int = 64,
        step: int = 50,
        seed: int = 0xAE20,
        mispredict_rate: float = 0.0,
        requirement: Optional[int] = None,
        engine: str = "auto",
    ):
        if block_count <= 0 or step <= 0:
            raise ConfigError("block count and step must be positive")
        self.profile = profile
        self.scheme_key = scheme_key
        self.step = step
        self.engine = engine
        self.requirement = (
            requirement
            if requirement is not None
            else profile.ecc.requirement_bits_per_kib
        )
        self.rber = RberModel(profile)
        self.scheme = SCHEMES.create(
            scheme_key,
            profile,
            mispredict_rate=mispredict_rate,
            rber_requirement=requirement,
        )
        self.rng = derive_rng(seed, "lifetime", scheme_key)
        self.seed = seed
        self.blocks: List[Block] = [
            Block(
                address=BlockAddress(0, 0, 0, index),
                profile=profile,
                pages=8,
                seed=derive(seed, "lifetime-block", index),
            )
            for index in range(block_count)
        ]
        self.kernel = resolve_kernel(self.scheme, engine, scheme_name=scheme_key)
        #: Per-block extra MRBER from the last erase (DPES window).
        self._extra_rber: Dict[int, float] = {}

    def run(self, max_pec: int = 12000, record_every: int = 250) -> LifetimeCurve:
        """Cycle until the average MRBER crosses the requirement."""
        kernel_metrics().engine_cells.labels(
            site="lifetime",
            engine="kernel" if self.kernel is not None else "object",
        ).inc()
        if self.kernel is not None:
            return self._run_kernel(max_pec, record_every)
        curve = LifetimeCurve(
            scheme=self.scheme.name, requirement=float(self.requirement)
        )
        pec = 0
        self._record_point(curve, pec)
        while pec < max_pec:
            for index, block in enumerate(self.blocks):
                result = self.scheme.erase(block, self.rng, cycles=self.step)
                self._extra_rber[index] = result.rber_offset
            pec += self.step
            if pec % record_every == 0 or pec >= max_pec:
                average = self._record_point(curve, pec)
                if average > self.requirement:
                    curve.lifetime_pec = pec
                    break
        return curve

    def _run_kernel(self, max_pec: int, record_every: int) -> LifetimeCurve:
        """Vectorized run: one batch-kernel step per coarse erase.

        The block array initializes from the same :class:`Block` set
        (same seed derivation, same jitter streams), so schemes whose
        ladder is deterministic in the required-work draw — baseline,
        DPES, i-ISPE, m-ISPE — reproduce the object path's trajectory
        exactly; AERO's verify-noise draws come from a kernel-local
        generator and match statistically.
        """
        curve = LifetimeCurve(
            scheme=self.scheme.name, requirement=float(self.requirement)
        )
        state = BlockArrayState.from_blocks(self.blocks)
        kernel_rng = derive_rng(self.seed, "lifetime", self.scheme_key, "kernel")
        extra_rber = np.zeros(state.count)
        batch_blocks = kernel_metrics().batch_blocks
        pec = 0
        self._record_kernel_point(curve, pec, state, extra_rber)
        while pec < max_pec:
            batch_blocks.observe(state.count)
            result = self.kernel.erase_batch(state, kernel_rng, cycles=self.step)
            extra_rber = result.rber_offset
            pec += self.step
            if pec % record_every == 0 or pec >= max_pec:
                average = self._record_kernel_point(curve, pec, state, extra_rber)
                if average > self.requirement:
                    curve.lifetime_pec = pec
                    break
        return curve

    def _record_kernel_point(
        self,
        curve: LifetimeCurve,
        pec: int,
        state: BlockArrayState,
        extra_rber: np.ndarray,
    ) -> float:
        batch = self.rber.mrber_batch(
            state.age,
            state.residual_fail_bits,
            state.residual_nispe,
            extra_rber=extra_rber,
            sensitivity=state.sensitivity,
        )
        average = float(np.mean(batch.total))
        curve.pec_points.append(pec)
        curve.avg_mrber.append(average)
        return average

    def _record_point(self, curve: LifetimeCurve, pec: int) -> float:
        values = [
            self.rber.mrber(
                block.wear,
                extra_rber=self._extra_rber.get(index, 0.0),
                sensitivity=block.rber_sensitivity,
            ).total
            for index, block in enumerate(self.blocks)
        ]
        average = float(np.mean(values))
        curve.pec_points.append(pec)
        curve.avg_mrber.append(average)
        return average
