"""Five-scheme lifetime comparison and sensitivity sweeps.

Drives :class:`~repro.lifetime.simulator.LifetimeSimulator` across the
paper's comparison set (Figure 13) and the two sensitivity studies:
misprediction rate (Figure 16, lifetime panel) and RBER requirement
(Figure 17, lifetime panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.experiments.registry import SCHEMES
from repro.lifetime.simulator import LifetimeCurve, LifetimeSimulator
from repro.nand.chip_types import ChipProfile
from repro.schemes import SCHEME_KEYS


@dataclass
class SchemeComparison:
    """Results of one multi-scheme lifetime campaign."""

    profile_name: str
    curves: Dict[str, LifetimeCurve] = field(default_factory=dict)

    def lifetime(self, key: str) -> int:
        curve = self.curves[key]
        if curve.lifetime_pec is None:
            raise ConfigError(f"{key} never crossed the requirement")
        return curve.lifetime_pec

    def improvement(self, key: str, baseline_key: str = "baseline") -> float:
        """Relative lifetime change of ``key`` vs the baseline scheme."""
        return self.curves[key].improvement_over(self.curves[baseline_key])

    def ranking(self) -> List[str]:
        """Scheme keys sorted by lifetime, best first."""
        return sorted(
            self.curves,
            key=lambda k: -(self.curves[k].lifetime_pec or 0),
        )


@dataclass(frozen=True)
class _CurveJob:
    """Picklable work order for one scheme's lifetime curve."""

    profile: ChipProfile
    key: str
    block_count: int
    step: int
    seed: int
    mispredict_rate: float
    requirement: Optional[int]
    max_pec: int
    engine: str = "auto"


def _run_curve(job: _CurveJob) -> LifetimeCurve:
    """Cycle one block set to failure (module-level so workers can import it)."""
    simulator = LifetimeSimulator(
        job.profile,
        job.key,
        block_count=job.block_count,
        step=job.step,
        seed=job.seed,
        mispredict_rate=job.mispredict_rate,
        requirement=job.requirement,
        engine=job.engine,
    )
    return simulator.run(max_pec=job.max_pec)


def compare_schemes(
    profile: ChipProfile,
    scheme_keys: Sequence[str] = SCHEME_KEYS,
    block_count: int = 48,
    step: int = 50,
    seed: int = 0xAE20,
    max_pec: int = 12000,
    requirement: Optional[int] = None,
    mispredict_rate: float = 0.0,
    executor: Optional[Any] = None,
    engine: str = "auto",
) -> SchemeComparison:
    """Run the Figure 13 campaign: one block set per erase scheme.

    Each scheme's block set cycles independently, so the campaign fans
    out across an executor from :mod:`repro.harness.executors` — pass
    ``executor=ProcessExecutor(n)`` to run schemes concurrently; results
    are identical to the serial run (each curve is a pure function of
    its job).

    Scheme keys resolve through :data:`repro.experiments.SCHEMES`, so
    registered plugin schemes compare alongside the built-ins; unknown
    keys fail fast with the registry's rich error before any cycling.

    ``engine`` selects the per-scheme execution path: ``auto`` (the
    default) cycles each block set through the scheme's vectorized
    batch kernel when it provides one and falls back to per-block
    object erases otherwise; ``object``/``kernel`` force one path
    (``kernel`` raises for schemes without a kernel).
    """
    for key in scheme_keys:
        SCHEMES.get(key)
    comparison = SchemeComparison(profile_name=profile.name)
    jobs = [
        _CurveJob(
            profile=profile,
            key=key,
            block_count=block_count,
            step=step,
            seed=seed,
            mispredict_rate=mispredict_rate if key.startswith("aero") else 0.0,
            requirement=requirement,
            max_pec=max_pec,
            engine=engine,
        )
        for key in scheme_keys
    ]
    if executor is None:
        curves = [_run_curve(job) for job in jobs]
    else:
        curves = executor.map(_run_curve, jobs)
    comparison.curves = dict(zip(scheme_keys, curves))
    return comparison


def misprediction_sensitivity(
    profile: ChipProfile,
    rates: Sequence[float] = (0.0, 0.01, 0.05, 0.10, 0.20),
    scheme_keys: Sequence[str] = ("aero_cons", "aero"),
    block_count: int = 32,
    step: int = 50,
    seed: int = 0xAE20,
    engine: str = "auto",
) -> Dict[float, Dict[str, LifetimeCurve]]:
    """Figure 16 (lifetime panel): inject forced mispredictions.

    Each misprediction costs one extra 0.5 ms erase pulse plus a
    verify-read; the paper finds AERO keeps ~40 % of its benefits even
    at a 20 % misprediction rate.
    """
    results: Dict[float, Dict[str, LifetimeCurve]] = {}
    for rate in rates:
        results[rate] = {}
        for key in scheme_keys:
            simulator = LifetimeSimulator(
                profile,
                key,
                block_count=block_count,
                step=step,
                seed=seed,
                mispredict_rate=rate,
                engine=engine,
            )
            results[rate][key] = simulator.run()
    return results


def requirement_sensitivity(
    profile: ChipProfile,
    requirements: Sequence[int] = (40, 50, 63),
    scheme_keys: Sequence[str] = ("baseline", "aero_cons", "aero"),
    block_count: int = 32,
    step: int = 50,
    seed: int = 0xAE20,
    engine: str = "auto",
) -> Dict[int, SchemeComparison]:
    """Figure 17 (lifetime panel): weaker ECC shrinks the margin.

    The aggressive EPT is rebuilt for each requirement (fewer safe
    skips), and every scheme's lifetime is evaluated against the same
    requirement — Baseline and AEROcons lose lifetime too, exactly as
    the paper notes.
    """
    results: Dict[int, SchemeComparison] = {}
    for requirement in requirements:
        results[requirement] = compare_schemes(
            profile,
            scheme_keys=scheme_keys,
            block_count=block_count,
            step=step,
            seed=seed,
            requirement=requirement,
            engine=engine,
        )
    return results
