"""Five-scheme lifetime comparison and sensitivity sweeps.

Drives :class:`~repro.lifetime.simulator.LifetimeSimulator` across the
paper's comparison set (Figure 13) and the two sensitivity studies:
misprediction rate (Figure 16, lifetime panel) and RBER requirement
(Figure 17, lifetime panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.experiments.registry import SCHEMES
from repro.lifetime.simulator import LifetimeCurve, LifetimeSimulator
from repro.nand.chip_types import ChipProfile, profile_by_name
from repro.schemes import SCHEME_KEYS


@dataclass
class SchemeComparison:
    """Results of one multi-scheme lifetime campaign."""

    profile_name: str
    curves: Dict[str, LifetimeCurve] = field(default_factory=dict)

    def lifetime(self, key: str) -> int:
        curve = self.curves[key]
        if curve.lifetime_pec is None:
            raise ConfigError(f"{key} never crossed the requirement")
        return curve.lifetime_pec

    def improvement(self, key: str, baseline_key: str = "baseline") -> float:
        """Relative lifetime change of ``key`` vs the baseline scheme."""
        return self.curves[key].improvement_over(self.curves[baseline_key])

    def ranking(self) -> List[str]:
        """Scheme keys sorted by lifetime, best first."""
        return sorted(
            self.curves,
            key=lambda k: -(self.curves[k].lifetime_pec or 0),
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """Serialize to plain JSON types; exact round-trip via
        :meth:`from_json_dict` (curve order preserved)."""
        return {
            "profile_name": self.profile_name,
            "curves": {
                key: curve.to_json_dict()
                for key, curve in self.curves.items()
            },
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SchemeComparison":
        return cls(
            profile_name=str(data["profile_name"]),
            curves={
                str(key): LifetimeCurve.from_json_dict(curve)
                for key, curve in data["curves"].items()
            },
        )


@dataclass(frozen=True)
class _CurveJob:
    """Picklable work order for one scheme's lifetime curve."""

    profile: ChipProfile
    key: str
    block_count: int
    step: int
    seed: int
    mispredict_rate: float
    requirement: Optional[int]
    max_pec: int
    engine: str = "auto"


def _run_curve(job: _CurveJob) -> LifetimeCurve:
    """Cycle one block set to failure (module-level so workers can import it)."""
    simulator = LifetimeSimulator(
        job.profile,
        job.key,
        block_count=job.block_count,
        step=job.step,
        seed=job.seed,
        mispredict_rate=job.mispredict_rate,
        requirement=job.requirement,
        engine=job.engine,
    )
    return simulator.run(max_pec=job.max_pec)


def _builtin_profile_name(profile: ChipProfile) -> Optional[str]:
    """The registry name of ``profile``, or None for ad-hoc profiles.

    The unified cached path carries profiles *by name* (so jobs stay
    small and specs stay registry-validated); a caller-constructed
    profile that differs from the built-in registered under its name
    falls back to the direct, uncached path.
    """
    try:
        if profile_by_name(profile.name) == profile:
            return profile.name
    except ConfigError:
        pass
    return None


def compare_schemes(
    profile: ChipProfile,
    scheme_keys: Sequence[str] = SCHEME_KEYS,
    block_count: int = 48,
    step: int = 50,
    seed: int = 0xAE20,
    max_pec: int = 12000,
    requirement: Optional[int] = None,
    mispredict_rate: float = 0.0,
    executor: Optional[Any] = None,
    engine: str = "auto",
    cache: Optional[Any] = None,
    cache_dir: Optional[Any] = None,
    runner: Optional[Any] = None,
) -> SchemeComparison:
    """Run the Figure 13 campaign: one block set per erase scheme.

    A thin shim over the unified spec path: for a built-in chip
    profile the call builds a :class:`~repro.lifetime.spec.
    LifetimeSpec` and runs its jobs through
    :meth:`~repro.harness.runner.GridRunner.execute_jobs`, so flag
    calls, ``compare --spec`` files, and orchestrated campaigns share
    one cache entry per (scheme, profile) fingerprint. Pass ``cache``
    (any :class:`~repro.harness.store.ResultStore`) or ``cache_dir``
    to persist curves and crash-resume, or a pre-built ``runner`` to
    share its cache and stats across calls. Ad-hoc
    :class:`ChipProfile` objects keep the direct path (no cache — an
    unnamed profile has no stable fingerprint).

    Each scheme's block set cycles independently, so the campaign fans
    out across an executor from :mod:`repro.harness.executors` — pass
    ``executor=ProcessExecutor(n)`` to run schemes concurrently; results
    are identical to the serial run (each curve is a pure function of
    its job).

    Scheme keys resolve through :data:`repro.experiments.SCHEMES`, so
    registered plugin schemes compare alongside the built-ins; unknown
    keys fail fast with the registry's rich error before any cycling.

    ``engine`` selects the per-scheme execution path: ``auto`` (the
    default) cycles each block set through the scheme's vectorized
    batch kernel when it provides one and falls back to per-block
    object erases otherwise; ``object``/``kernel`` force one path
    (``kernel`` raises for schemes without a kernel).
    """
    for key in scheme_keys:
        SCHEMES.get(key)
    profile_name = _builtin_profile_name(profile)
    if profile_name is not None:
        # Unified path: LifetimeSpec -> LifetimeJob -> GridRunner.
        from repro.harness.runner import GridRunner
        from repro.lifetime.spec import LifetimeSpec

        spec = LifetimeSpec(
            schemes=tuple(scheme_keys),
            profile=profile_name,
            block_count=block_count,
            step=step,
            seed=seed,
            max_pec=max_pec,
            requirement=requirement,
            mispredict_rate=float(mispredict_rate),
            engine=engine,
        )
        if runner is None:
            runner = GridRunner(
                executor=executor, cache=cache, cache_dir=cache_dir
            )
        return spec.comparison(runner.execute_jobs(spec.jobs()))
    if cache is not None or cache_dir is not None or runner is not None:
        raise ConfigError(
            f"profile {profile.name!r} is not a built-in chip profile; "
            "curves for ad-hoc profiles cannot be cached"
        )
    comparison = SchemeComparison(profile_name=profile.name)
    jobs = [
        _CurveJob(
            profile=profile,
            key=key,
            block_count=block_count,
            step=step,
            seed=seed,
            mispredict_rate=mispredict_rate if key.startswith("aero") else 0.0,
            requirement=requirement,
            max_pec=max_pec,
            engine=engine,
        )
        for key in scheme_keys
    ]
    if executor is None:
        curves = [_run_curve(job) for job in jobs]
    else:
        curves = executor.map(_run_curve, jobs)
    comparison.curves = dict(zip(scheme_keys, curves))
    return comparison


def misprediction_sensitivity(
    profile: ChipProfile,
    rates: Sequence[float] = (0.0, 0.01, 0.05, 0.10, 0.20),
    scheme_keys: Sequence[str] = ("aero_cons", "aero"),
    block_count: int = 32,
    step: int = 50,
    seed: int = 0xAE20,
    engine: str = "auto",
    executor: Optional[Any] = None,
    cache: Optional[Any] = None,
    cache_dir: Optional[Any] = None,
) -> Dict[float, Dict[str, LifetimeCurve]]:
    """Figure 16 (lifetime panel): inject forced mispredictions.

    Each misprediction costs one extra 0.5 ms erase pulse plus a
    verify-read; the paper finds AERO keeps ~40 % of its benefits even
    at a 20 % misprediction rate.

    Runs through the cached :class:`~repro.lifetime.spec.LifetimeJob`
    path for built-in profiles: jobs whose fingerprints coincide
    across sweep points (the misprediction rate only perturbs the
    aero schemes, so every non-aero curve is shared) execute once and
    fan out to every rate; pass ``cache``/``cache_dir`` to also reuse
    curves across sessions.
    """
    if _builtin_profile_name(profile) is None:
        results: Dict[float, Dict[str, LifetimeCurve]] = {}
        for rate in rates:
            results[rate] = {}
            for key in scheme_keys:
                simulator = LifetimeSimulator(
                    profile,
                    key,
                    block_count=block_count,
                    step=step,
                    seed=seed,
                    mispredict_rate=rate,
                    engine=engine,
                )
                results[rate][key] = simulator.run()
        return results
    from repro.harness.runner import GridRunner
    from repro.lifetime.spec import LifetimeSpec

    point_jobs = {
        rate: LifetimeSpec(
            schemes=tuple(scheme_keys),
            profile=profile.name,
            block_count=block_count,
            step=step,
            seed=seed,
            mispredict_rate=float(rate),
            engine=engine,
        ).jobs()
        for rate in rates
    }
    # Deduplicate by fingerprint across the whole sweep, then execute
    # each distinct curve exactly once.
    unique = {}
    for jobs in point_jobs.values():
        for job in jobs:
            unique.setdefault(job.fingerprint, job)
    runner = GridRunner(executor=executor, cache=cache, cache_dir=cache_dir)
    ordered = list(unique.values())
    curves = dict(
        zip(
            (job.fingerprint for job in ordered),
            runner.execute_jobs(ordered),
        )
    )
    return {
        rate: {
            key: curves[job.fingerprint]
            for key, job in zip(scheme_keys, jobs)
        }
        for rate, jobs in point_jobs.items()
    }


def requirement_sensitivity(
    profile: ChipProfile,
    requirements: Sequence[int] = (40, 50, 63),
    scheme_keys: Sequence[str] = ("baseline", "aero_cons", "aero"),
    block_count: int = 32,
    step: int = 50,
    seed: int = 0xAE20,
    engine: str = "auto",
    executor: Optional[Any] = None,
    cache: Optional[Any] = None,
    cache_dir: Optional[Any] = None,
) -> Dict[int, SchemeComparison]:
    """Figure 17 (lifetime panel): weaker ECC shrinks the margin.

    The aggressive EPT is rebuilt for each requirement (fewer safe
    skips), and every scheme's lifetime is evaluated against the same
    requirement — Baseline and AEROcons lose lifetime too, exactly as
    the paper notes.

    For built-in profiles every point runs through one shared
    :class:`~repro.harness.runner.GridRunner` on the cached
    :class:`~repro.lifetime.spec.LifetimeJob` path, so re-running a
    sweep (or widening it) against a ``cache``/``cache_dir`` only
    computes the curves it has never seen.
    """
    runner = None
    if _builtin_profile_name(profile) is not None:
        from repro.harness.runner import GridRunner

        runner = GridRunner(
            executor=executor, cache=cache, cache_dir=cache_dir
        )
    elif cache is not None or cache_dir is not None:
        raise ConfigError(
            f"profile {profile.name!r} is not a built-in chip profile; "
            "curves for ad-hoc profiles cannot be cached"
        )
    results: Dict[int, SchemeComparison] = {}
    for requirement in requirements:
        results[requirement] = compare_schemes(
            profile,
            scheme_keys=scheme_keys,
            block_count=block_count,
            step=step,
            seed=seed,
            requirement=requirement,
            engine=engine,
            executor=executor,
            runner=runner,
        )
    return results
