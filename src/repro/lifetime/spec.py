"""Declarative lifetime campaigns: ``LifetimeSpec`` -> ``LifetimeJob``.

The lifetime family (Figure 13 scheme comparison, Figure 16/17
sensitivity sweeps) gets the same declarative surface the grid-cell
replay family has had since the ``ExperimentSpec`` refactor: a frozen,
registry-validated spec that round-trips through JSON with a stable
fingerprint per job, so lifetime sweeps cache, crash-resume, and ride
the campaign orchestrator exactly like replay grids.

Fingerprints pin the *seed trajectory*, not just the seed: the
per-block seeds come from :func:`repro.rng.derive` (changed
deliberately in the kernels PR), and the fingerprint folds in a digest
of every derived stream a curve consumes — per-block seeds, the
object-path scheme RNG, and the kernel-path RNG. If the derivation
scheme ever changes again, every cached curve misses instead of
silently serving stale trajectories.

Unlike grid cells — where the kernel replay is bit-identical to the
object path and the fingerprint deliberately excludes the engine —
AERO's lifetime kernels match the object path only statistically, so
the lifetime fingerprint includes the *resolved* engine (``auto``
canonicalizes to the path actually taken, so ``auto`` and an explicit
``kernel`` share one cache entry).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.experiments.registry import SCHEMES
from repro.harness.cache import CACHE_VERSION
from repro.kernels import ENGINES, kernel_for_scheme
from repro.lifetime.comparison import SchemeComparison
from repro.lifetime.simulator import LifetimeCurve, LifetimeSimulator
from repro.nand.chip_types import profile_by_name
from repro.rng import derive
from repro.schemes import SCHEME_KEYS

#: Spec wire-format version; bump on incompatible to_dict changes.
LIFETIME_SPEC_VERSION = 1

#: Job/spec family discriminator shared with the campaign layer.
LIFETIME_FAMILY = "lifetime"


@lru_cache(maxsize=None)
def _resolved_engine(scheme: str, profile: str, engine: str) -> str:
    """Canonicalize ``auto`` to the path a curve actually takes.

    ``auto`` resolves to ``kernel`` when the scheme provides a batch
    kernel and ``object`` otherwise, so a spec run with ``auto`` and
    one run with the explicit concrete engine share cache entries.
    Unknown engines and ``kernel`` for kernel-less schemes fail fast
    here, before any cycling.
    """
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    if engine == "object":
        return "object"
    kernel = kernel_for_scheme(SCHEMES.create(scheme, profile_by_name(profile)))
    if kernel is None:
        if engine == "kernel":
            raise ConfigError(
                f"scheme {scheme!r} provides no batch kernel; "
                "use engine='auto' or 'object'"
            )
        return "object"
    return "kernel"


@dataclass(frozen=True)
class LifetimeJob:
    """Picklable work order for one (scheme, profile) lifetime curve.

    The lifetime-family counterpart of
    :class:`~repro.harness.runner.CellJob`: carries everything a
    worker needs to cycle one block set to failure, fingerprints
    stably, and executes to a :class:`LifetimeCurve`. ``profile`` is a
    built-in chip profile *name* (resolved through
    :func:`repro.nand.chip_types.profile_by_name`) so jobs stay small
    on the wire and specs stay registry-validated.
    """

    scheme: str
    profile: str
    block_count: int = 48
    step: int = 50
    seed: int = 0xAE20
    max_pec: int = 12000
    requirement: Optional[int] = None
    mispredict_rate: float = 0.0
    engine: str = "auto"

    #: Family discriminator for the campaign layer and result stores.
    family = LIFETIME_FAMILY

    @property
    def resolved_engine(self) -> str:
        """The concrete path (``kernel``/``object``) this job takes."""
        return _resolved_engine(self.scheme, self.profile, self.engine)

    @property
    def fingerprint(self) -> str:
        """Stable cache key over everything the curve depends on.

        Includes a digest of the full derived-seed trajectory (see
        module docstring) and the resolved engine — aero/aero_cons
        kernel curves match the object path only statistically, so the
        two paths must not share cache entries.
        """
        trajectory = hashlib.sha256()
        trajectory.update(str(derive(self.seed, "lifetime", self.scheme)).encode())
        trajectory.update(
            str(derive(self.seed, "lifetime", self.scheme, "kernel")).encode()
        )
        for index in range(self.block_count):
            trajectory.update(b"/")
            trajectory.update(
                str(derive(self.seed, "lifetime-block", index)).encode()
            )
        lines = [
            f"family={LIFETIME_FAMILY}",
            f"version={CACHE_VERSION}",
            f"scheme={self.scheme}",
            f"profile={self.profile}",
            f"block_count={self.block_count}",
            f"step={self.step}",
            f"seed={self.seed}",
            f"max_pec={self.max_pec}",
            f"requirement={self.requirement!r}",
            f"mispredict_rate={float(self.mispredict_rate)!r}",
            f"engine={self.resolved_engine}",
            f"seed_trajectory={trajectory.hexdigest()}",
        ]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def execute(self) -> LifetimeCurve:
        """Cycle the block set to failure (pure function of the job)."""
        simulator = LifetimeSimulator(
            profile_by_name(self.profile),
            self.scheme,
            block_count=self.block_count,
            step=self.step,
            seed=self.seed,
            mispredict_rate=self.mispredict_rate,
            requirement=self.requirement,
            engine=self.engine,
        )
        return simulator.run(max_pec=self.max_pec)

    def store_meta(self) -> Dict[str, Any]:
        """Human-readable provenance stored alongside the curve."""
        meta: Dict[str, Any] = {
            "family": LIFETIME_FAMILY,
            "scheme": self.scheme,
            "profile": self.profile,
            "block_count": self.block_count,
            "step": self.step,
            "seed": self.seed,
            "max_pec": self.max_pec,
        }
        if self.requirement is not None:
            meta["requirement"] = self.requirement
        if self.mispredict_rate:
            meta["mispredict_rate"] = float(self.mispredict_rate)
        return meta

    def describe(self) -> str:
        """Short label for logs and quarantine records."""
        return f"{self.scheme}@{self.profile}"


@dataclass(frozen=True)
class LifetimeSpec:
    """Frozen, registry-validated description of a lifetime campaign.

    Mirrors :class:`~repro.experiments.spec.ExperimentSpec` /
    :class:`~repro.campaign.spec.CampaignSpec`: JSON round-trip via
    :meth:`to_dict`/:meth:`from_dict`, validation against the scheme
    and chip-profile registries, and resolution to per-(scheme,
    profile) :class:`LifetimeJob` work orders whose fingerprints are
    stable across sessions.
    """

    schemes: Tuple[str, ...] = SCHEME_KEYS
    profile: str = "3D-TLC-48L"
    block_count: int = 48
    step: int = 50
    seed: int = 0xAE20
    max_pec: int = 12000
    requirement: Optional[int] = None
    mispredict_rate: float = 0.0
    engine: str = "auto"

    #: Family discriminator for the campaign layer.
    family = LIFETIME_FAMILY

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        if not self.schemes:
            raise ConfigError("lifetime spec needs at least one scheme")
        if self.block_count <= 0 or self.step <= 0:
            raise ConfigError("block count and step must be positive")
        if self.max_pec <= 0:
            raise ConfigError("max_pec must be positive")
        if not 0.0 <= float(self.mispredict_rate) <= 1.0:
            raise ConfigError("mispredict_rate must be within [0, 1]")
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; "
                f"choose from {', '.join(ENGINES)}"
            )

    @property
    def size(self) -> int:
        return len(self.schemes)

    def validate(self) -> "LifetimeSpec":
        """Resolve every scheme and the profile through the registries."""
        for key in self.schemes:
            SCHEMES.get(key)
        profile_by_name(self.profile)
        return self

    def jobs(self) -> List[LifetimeJob]:
        """One job per scheme, in spec order.

        ``mispredict_rate`` applies to the aero schemes only, matching
        :func:`~repro.lifetime.comparison.compare_schemes` — forced
        mispredictions are an AERO failure mode, and zeroing the rate
        elsewhere lets every sweep point share the non-aero curves.
        """
        self.validate()
        return [
            LifetimeJob(
                scheme=key,
                profile=self.profile,
                block_count=self.block_count,
                step=self.step,
                seed=self.seed,
                max_pec=self.max_pec,
                requirement=self.requirement,
                mispredict_rate=(
                    float(self.mispredict_rate)
                    if key.startswith("aero")
                    else 0.0
                ),
                engine=self.engine,
            )
            for key in self.schemes
        ]

    def fingerprints(self) -> List[str]:
        return [job.fingerprint for job in self.jobs()]

    def comparison(self, curves: Sequence[LifetimeCurve]) -> SchemeComparison:
        """Assemble curves (in :meth:`jobs` order) into a comparison."""
        if len(curves) != len(self.schemes):
            raise ConfigError(
                f"expected {len(self.schemes)} curves, got {len(curves)}"
            )
        return SchemeComparison(
            profile_name=self.profile,
            curves=dict(zip(self.schemes, curves)),
        )

    # --- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; exact inverse of :meth:`from_dict`."""
        return {
            "version": LIFETIME_SPEC_VERSION,
            "family": LIFETIME_FAMILY,
            "schemes": list(self.schemes),
            "profile": self.profile,
            "block_count": self.block_count,
            "step": self.step,
            "seed": self.seed,
            "max_pec": self.max_pec,
            "requirement": self.requirement,
            "mispredict_rate": float(self.mispredict_rate),
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LifetimeSpec":
        if not isinstance(data, Mapping):
            raise ConfigError("lifetime spec must be a JSON object")
        version = data.get("version", LIFETIME_SPEC_VERSION)
        if version != LIFETIME_SPEC_VERSION:
            raise ConfigError(
                f"unsupported lifetime spec version {version!r} "
                f"(this build reads version {LIFETIME_SPEC_VERSION})"
            )
        family = data.get("family", LIFETIME_FAMILY)
        if family != LIFETIME_FAMILY:
            raise ConfigError(
                f"family {family!r} is not a lifetime spec"
            )
        known = {
            "version", "family", "schemes", "profile", "block_count",
            "step", "seed", "max_pec", "requirement", "mispredict_rate",
            "engine",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown lifetime spec field(s): {', '.join(unknown)}"
            )
        spec = cls()
        overrides: Dict[str, Any] = {}
        if "schemes" in data:
            overrides["schemes"] = tuple(
                str(key) for key in data["schemes"]
            )
        if "profile" in data:
            overrides["profile"] = str(data["profile"])
        for field_name in ("block_count", "step", "seed", "max_pec"):
            if field_name in data:
                overrides[field_name] = int(data[field_name])
        if "requirement" in data and data["requirement"] is not None:
            overrides["requirement"] = int(data["requirement"])
        if "mispredict_rate" in data:
            overrides["mispredict_rate"] = float(data["mispredict_rate"])
        if "engine" in data:
            overrides["engine"] = str(data["engine"])
        return replace(spec, **overrides)


def load_lifetime_file(path: Union[str, Path]) -> LifetimeSpec:
    """Load a lifetime spec from a JSON file.

    Accepts either a bare spec object or the campaign wrapper
    ``{"campaign": {...}}`` (so one file feeds both ``compare --spec``
    and ``campaign run --spec-file``); the family, when present, must
    be ``lifetime``.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigError(f"cannot read lifetime spec {path}: {error}")
    if isinstance(data, Mapping) and "campaign" in data:
        data = data["campaign"]
    return LifetimeSpec.from_dict(data)
