"""Lifetime evaluation: P/E cycling to failure per erase scheme (§7.2).

Two entry styles share one execution path: the imperative
:func:`compare_schemes` / sensitivity sweeps, and the declarative
:class:`LifetimeSpec`, which resolves to cacheable
:class:`LifetimeJob` work orders that run through the same
:class:`~repro.harness.runner.GridRunner`/:class:`~repro.harness.
store.ResultStore` machinery (and the campaign orchestrator) as
grid-cell replays.
"""

from repro.lifetime.simulator import LifetimeCurve, LifetimeSimulator
from repro.lifetime.comparison import (
    SchemeComparison,
    compare_schemes,
    misprediction_sensitivity,
    requirement_sensitivity,
)
from repro.lifetime.spec import (
    LIFETIME_SPEC_VERSION,
    LifetimeJob,
    LifetimeSpec,
    load_lifetime_file,
)

__all__ = [
    "LIFETIME_SPEC_VERSION",
    "LifetimeCurve",
    "LifetimeJob",
    "LifetimeSimulator",
    "LifetimeSpec",
    "SchemeComparison",
    "compare_schemes",
    "load_lifetime_file",
    "misprediction_sensitivity",
    "requirement_sensitivity",
]
