"""Lifetime evaluation: P/E cycling to failure per erase scheme (§7.2)."""

from repro.lifetime.simulator import LifetimeCurve, LifetimeSimulator
from repro.lifetime.comparison import (
    SchemeComparison,
    compare_schemes,
    misprediction_sensitivity,
    requirement_sensitivity,
)

__all__ = [
    "LifetimeCurve",
    "LifetimeSimulator",
    "SchemeComparison",
    "compare_schemes",
    "misprediction_sensitivity",
    "requirement_sensitivity",
]
