"""Factory for the five evaluated erase schemes (paper Section 7.1).

Central place mapping scheme keys — ``baseline``, ``iispe``, ``dpes``,
``aero_cons``, ``aero`` — to configured scheme objects, shared by the
lifetime simulator, the SSD builder, benchmarks, and examples.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aero import AeroEraseScheme
from repro.core.ept import (
    build_aggressive_table,
    published_conservative_table,
)
from repro.core.felp import FelpPredictor
from repro.erase.dpes import DpesScheme
from repro.erase.iispe import IntelligentIspeScheme
from repro.erase.ispe import BaselineIspeScheme
from repro.erase.mispe import MIspeScheme
from repro.erase.scheme import EraseScheme
from repro.errors import ConfigError
from repro.nand.chip_types import ChipProfile
from repro.nand.rber import RberModel

#: Keys accepted by :func:`make_scheme`, in the paper's comparison order.
SCHEME_KEYS = ("baseline", "iispe", "dpes", "aero_cons", "aero")


def make_scheme(
    profile: ChipProfile,
    key: str,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """Instantiate one of the evaluated erase schemes.

    ``mispredict_rate`` injects forced under-predictions into AERO
    (Figure 16 sensitivity); ``rber_requirement`` rebuilds AERO's
    aggressive table for a weaker ECC (Figure 17 sensitivity). Both are
    ignored by the non-AERO schemes.
    """
    if key == "baseline":
        return BaselineIspeScheme(profile)
    if key == "iispe":
        return IntelligentIspeScheme(profile)
    if key == "dpes":
        return DpesScheme(profile)
    if key == "mispe":
        return MIspeScheme(profile)
    if key in ("aero", "aero_cons"):
        aggressive = key == "aero"
        conservative = published_conservative_table(profile)
        aggressive_table = None
        if aggressive:
            aggressive_table = build_aggressive_table(
                profile,
                conservative,
                rber_model=RberModel(profile),
                requirement_bits_per_kib=rber_requirement,
            )
        predictor = FelpPredictor(
            profile, conservative=conservative, aggressive=aggressive_table
        )
        return AeroEraseScheme(
            profile,
            predictor=predictor,
            aggressive=aggressive,
            mispredict_rate=mispredict_rate,
        )
    raise ConfigError(
        f"unknown scheme {key!r}; known: {', '.join(SCHEME_KEYS)} (+ 'mispe')"
    )
