"""Built-in erase schemes, registered with the scheme registry.

The six evaluated schemes — ``baseline``, ``iispe``, ``dpes``,
``mispe``, ``aero_cons``, ``aero`` — register themselves with
:data:`repro.experiments.SCHEMES` when this module is imported; the
registry lazily imports this module, so looking a key up anywhere
(``make_scheme``, ``build_ssd``, :class:`~repro.experiments.ExperimentSpec`,
the ``python -m repro`` CLI) always sees all six. Third-party schemes
plug in the same way without editing this file::

    @SCHEMES.register("my_scheme")
    def _build(profile, *, mispredict_rate=0.0, rber_requirement=None):
        return MyScheme(profile)

``make_scheme`` remains as a thin shim over ``SCHEMES.create`` for
existing callers.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.aero import AeroEraseScheme
from repro.core.ept import (
    build_aggressive_table,
    published_conservative_table,
)
from repro.core.felp import FelpPredictor
from repro.erase.dpes import DpesScheme
from repro.erase.iispe import IntelligentIspeScheme
from repro.erase.ispe import BaselineIspeScheme
from repro.erase.mispe import MIspeScheme
from repro.erase.scheme import EraseScheme
from repro.experiments.registry import SCHEMES
from repro.nand.chip_types import ChipProfile
from repro.nand.rber import RberModel

#: The paper's five comparison schemes, in presentation order
#: (Figure 13 / Table 4). ``mispe`` is evaluated separately (Section 5
#: characterization), so it is registered but not part of this tuple.
SCHEME_KEYS = ("baseline", "iispe", "dpes", "aero_cons", "aero")


@SCHEMES.register("baseline")
def _build_baseline(
    profile: ChipProfile,
    *,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """Baseline ISPE: fixed loop ladder, no adaptation."""
    return BaselineIspeScheme(profile)


@SCHEMES.register("iispe")
def _build_iispe(
    profile: ChipProfile,
    *,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """i-ISPE: per-block memorized loop counts (Section 3.3 baseline)."""
    return IntelligentIspeScheme(profile)


@SCHEMES.register("dpes")
def _build_dpes(
    profile: ChipProfile,
    *,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """DPES: dynamic erase-voltage scaling (Section 7 baseline)."""
    return DpesScheme(profile)


@SCHEMES.register("mispe")
def _build_mispe(
    profile: ChipProfile,
    *,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """m-ISPE: fine-grained sub-pulse stepping (characterization tool)."""
    return MIspeScheme(profile)


def _build_aero(
    profile: ChipProfile,
    aggressive: bool,
    mispredict_rate: float,
    rber_requirement: Optional[int],
) -> EraseScheme:
    conservative = published_conservative_table(profile)
    aggressive_table = None
    if aggressive:
        aggressive_table = build_aggressive_table(
            profile,
            conservative,
            rber_model=RberModel(profile),
            requirement_bits_per_kib=rber_requirement,
        )
    predictor = FelpPredictor(
        profile, conservative=conservative, aggressive=aggressive_table
    )
    return AeroEraseScheme(
        profile,
        predictor=predictor,
        aggressive=aggressive,
        mispredict_rate=mispredict_rate,
    )


@SCHEMES.register("aero_cons")
def _build_aero_cons(
    profile: ChipProfile,
    *,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """AEROcons: conservative EPT only (no aggressive reduction)."""
    return _build_aero(profile, False, mispredict_rate, rber_requirement)


@SCHEMES.register("aero")
def _build_aero_full(
    profile: ChipProfile,
    *,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """Full AERO: aggressive ECC-margin-aware under-erasure."""
    return _build_aero(profile, True, mispredict_rate, rber_requirement)


#: Every registered scheme key at import time (the six built-ins, in
#: registration order). Plugins registered later are visible through
#: ``SCHEMES.keys()`` / :func:`all_scheme_keys`, which stay live.
ALL_SCHEME_KEYS: Tuple[str, ...] = SCHEMES.keys()


def all_scheme_keys() -> Tuple[str, ...]:
    """Currently registered scheme keys (built-ins plus plugins)."""
    return SCHEMES.keys()


def make_scheme(
    profile: ChipProfile,
    key: str,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
) -> EraseScheme:
    """Instantiate one of the registered erase schemes (registry shim).

    ``mispredict_rate`` injects forced under-predictions into AERO
    (Figure 16 sensitivity); ``rber_requirement`` rebuilds AERO's
    aggressive table for a weaker ECC (Figure 17 sensitivity). Both are
    ignored by the non-AERO schemes. Unknown keys raise
    :class:`~repro.errors.ConfigError` listing every registered key.
    """
    return SCHEMES.create(
        key,
        profile,
        mispredict_rate=mispredict_rate,
        rber_requirement=rber_requirement,
    )
