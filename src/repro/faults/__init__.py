"""Deterministic fault injection for chaos-testing the campaign stack.

A :class:`FaultPlan` is a seeded, JSON round-trippable description of
*exactly* which faults fire where: the Nth store put writes a torn
final line, the worker executing cell K dies, a compaction is
interrupted between writing the merged segment and unlinking the old
ones. Because every fault is a pure predicate over (cell index,
attempt number, put ordinal) plus a seed — no wall clocks, no real
randomness — a chaos run reproduces byte-for-byte: CI replays every
failure mode the suite pins.

Hook points are threaded through the store and orchestrator behind a
no-op default (:data:`NO_FAULTS`), so production paths pay one branch
per boundary call. ``python -m repro campaign run --fault-plan
plan.json`` arms a plan from the shell.

Fault kinds
===========

``torn_tail``
    The targeted put's line is truncated mid-record before the append
    (a crash mid-``write``); the record is lost, later loads skip it.
``corrupt_checksum``
    The targeted put's CRC32 field is flipped; the record parses but
    reads as a checksum miss.
``crash_before_put`` / ``crash_after_put``
    :class:`~repro.errors.InjectedFault` is raised around the targeted
    append — the orchestrator treats it as a torn persist and retries
    the cell (before: nothing durable; after: a superseded duplicate).
``kill_worker``
    The worker executing the targeted cell dies — ``os._exit`` in a
    process worker (real worker death, exercising pool rebuild),
    :class:`InjectedFault` in a thread worker.
``slow_cell``
    The targeted cell sleeps ``delay_s`` before executing — pair with
    ``--cell-timeout`` to exercise the timeout/retry path.
``compact_interrupt``
    :class:`InjectedFault` is raised inside ``compact()`` after the
    merged segment is in place but before old segments are unlinked —
    the crash window compaction must survive.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NO_FAULTS,
    load_fault_file,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NO_FAULTS",
    "load_fault_file",
]
