"""Fault plans: seeded, declarative, stateless fault predicates.

See :mod:`repro.faults` for the catalogue of fault kinds and where
each one hooks in. Two objects matter here:

* :class:`FaultPlan` — the frozen description (JSON round-trippable,
  picklable into worker processes). Worker-side faults are pure
  functions of ``(cell, attempt, engine)`` so a forked or spawned
  worker evaluates them without shared state.
* :class:`FaultInjector` — the orchestrator-side stateful wrapper: it
  numbers store puts, fires the store/compaction hooks, and counts
  every fired fault in the ``repro_faults_injected_total{kind}``
  telemetry family.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError, InjectedFault
from repro.rng import derive

#: Every fault kind a plan may name.
FAULT_KINDS = (
    "torn_tail",
    "corrupt_checksum",
    "crash_before_put",
    "crash_after_put",
    "kill_worker",
    "slow_cell",
    "compact_interrupt",
)

#: Kinds that target a campaign cell (evaluated inside workers).
CELL_KINDS = ("kill_worker", "slow_cell")

#: Kinds that target the Nth store put (evaluated in the store).
PUT_KINDS = (
    "torn_tail", "corrupt_checksum", "crash_before_put", "crash_after_put",
)

#: Exit code a process worker dies with under ``kill_worker`` — chosen
#: to be recognizable in supervisor logs, nothing depends on the value.
KILL_WORKER_EXIT = 113


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind plus the predicate selecting where it fires.

    ``cell`` / ``attempt`` / ``engine`` select a campaign cell
    (``attempt`` is 1-based; ``None`` matches every attempt; ``engine``
    filters on the job's engine field, e.g. ``"auto"`` matches only
    kernel-path attempts so an object-path fallback escapes the
    fault). ``put_index`` selects the Nth put (0-based) on the store
    the injector is armed on. ``delay_s`` is the ``slow_cell`` sleep.
    """

    kind: str
    cell: Optional[int] = None
    attempt: Optional[int] = 1
    engine: Optional[str] = None
    put_index: Optional[int] = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.kind in CELL_KINDS and self.cell is None:
            raise ConfigError(f"{self.kind} fault needs a cell index")
        if self.kind in PUT_KINDS and self.put_index is None:
            raise ConfigError(f"{self.kind} fault needs a put_index")
        if self.kind == "slow_cell" and self.delay_s <= 0:
            raise ConfigError("slow_cell fault needs delay_s > 0")
        if self.attempt is not None and self.attempt < 1:
            raise ConfigError("fault attempt numbers are 1-based")

    def matches_cell(self, cell: int, attempt: int, engine: str) -> bool:
        return (
            self.kind in CELL_KINDS
            and self.cell == cell
            and (self.attempt is None or self.attempt == attempt)
            and (self.engine is None or self.engine == engine)
        )

    def matches_put(self, put_index: int) -> bool:
        return self.kind in PUT_KINDS and self.put_index == put_index

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        for name in ("cell", "attempt", "engine", "put_index"):
            value = getattr(self, name)
            if value is not None and not (name == "attempt" and value == 1):
                data[name] = value
        if self.attempt is None:
            data["attempt"] = None
        if self.delay_s:
            data["delay_s"] = self.delay_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"fault spec must be a JSON object, got {type(data).__name__}"
            )
        known = {"kind", "cell", "attempt", "engine", "put_index", "delay_s"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown fault spec fields {unknown}; "
                f"known: {', '.join(sorted(known))}"
            )
        if "kind" not in data:
            raise ConfigError("fault spec needs a kind")
        return cls(
            kind=data["kind"],
            cell=data.get("cell"),
            attempt=data.get("attempt", 1),
            engine=data.get("engine"),
            put_index=data.get("put_index"),
            delay_s=float(data.get("delay_s", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults; empty plan == no faults anywhere.

    ``seed`` feeds the deterministic details of a fault's *shape*
    (where a torn line is cut), never *whether* it fires — firing is
    decided by the specs' predicates alone, so two runs of the same
    plan fail identically.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    # --- worker-side (pure) -------------------------------------------------

    def cell_fault(
        self, cell: int, attempt: int, engine: str
    ) -> Tuple[float, bool]:
        """``(delay_s, kill)`` for one cell attempt; ``(0.0, False)``
        when nothing fires. Pure — safe to evaluate in any process."""
        delay = 0.0
        kill = False
        for spec in self.faults:
            if spec.matches_cell(cell, attempt, engine):
                if spec.kind == "slow_cell":
                    delay += spec.delay_s
                elif spec.kind == "kill_worker":
                    kill = True
        return delay, kill

    def put_fault(self, put_index: int) -> Optional[FaultSpec]:
        """The store fault targeting this put ordinal, if any."""
        for spec in self.faults:
            if spec.matches_put(put_index):
                return spec
        return None

    def has_compact_interrupt(self) -> bool:
        return any(spec.kind == "compact_interrupt" for spec in self.faults)

    def torn_cut(self, put_index: int, length: int) -> int:
        """Deterministic byte count a torn line keeps (1..length-2)."""
        if length <= 2:
            return 1
        return 1 + derive(self.seed, "torn", put_index) % (length - 2)

    # --- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "faults"})
        if unknown:
            raise ConfigError(
                f"unknown fault plan fields {unknown}; known: faults, seed"
            )
        faults = data.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ConfigError("fault plan 'faults' must be a list")
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(item) for item in faults),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)


def load_fault_file(path: Union[str, Path]) -> FaultPlan:
    """Load a fault plan from a JSON file.

    Accepts the bare plan object or ``{"fault_plan": {...}}``.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read fault plan {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(
            f"invalid JSON in fault plan {path}: {exc}"
        ) from exc
    if isinstance(data, Mapping) and "fault_plan" in data:
        data = data["fault_plan"]
    return FaultPlan.from_dict(data)


class FaultInjector:
    """Stateful store/compaction hooks for one armed :class:`FaultPlan`.

    One injector per store handle: it numbers that store's puts (the
    coordinate ``put_index`` predicates fire on) and counts every
    fired fault in telemetry. The no-op default (:data:`NO_FAULTS`)
    short-circuits each hook on an empty plan.

    Subclasses may override :meth:`fire` to turn a matched fault into
    a harder failure (the kill -9 compaction test does exactly this).
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._put_ordinal = 0

    def __bool__(self) -> bool:
        return bool(self.plan)

    def record(self, kind: str) -> None:
        """Count one fired fault in telemetry."""
        from repro.telemetry.instruments import fault_metrics

        fault_metrics().injected.labels(kind=kind).inc()

    def fire(self, spec: FaultSpec, context: str) -> None:
        """Fire one crash-flavoured fault (override point for tests)."""
        self.record(spec.kind)
        raise InjectedFault(
            f"injected {spec.kind} at {context}", kind=spec.kind
        )

    # --- store hooks --------------------------------------------------------

    def before_put(self, key: str) -> int:
        """Claim this put's ordinal; crash here if the plan says so."""
        with self._lock:
            ordinal = self._put_ordinal
            self._put_ordinal += 1
        if not self.plan:
            return ordinal
        spec = self.plan.put_fault(ordinal)
        if spec is not None and spec.kind == "crash_before_put":
            self.fire(spec, f"put #{ordinal} ({key[:12]})")
        return ordinal

    def mutate_line(self, ordinal: int, line: bytes) -> bytes:
        """Corrupt the record line about to be appended, per the plan."""
        if not self.plan:
            return line
        spec = self.plan.put_fault(ordinal)
        if spec is None:
            return line
        if spec.kind == "torn_tail":
            self.record(spec.kind)
            return line[: self.plan.torn_cut(ordinal, len(line))]
        if spec.kind == "corrupt_checksum":
            try:
                record = json.loads(line)
                record["crc"] = (int(record.get("crc", 0)) + 1) & 0xFFFFFFFF
            except (ValueError, TypeError):
                return line
            self.record(spec.kind)
            return json.dumps(record, separators=(",", ":")).encode() + b"\n"
        return line

    def after_put(self, ordinal: int, key: str) -> None:
        if not self.plan:
            return
        spec = self.plan.put_fault(ordinal)
        if spec is not None and spec.kind == "crash_after_put":
            self.fire(spec, f"put #{ordinal} ({key[:12]})")

    # --- compaction hook ----------------------------------------------------

    def on_compact(self, stage: str) -> None:
        """Called between compaction stages; ``stage`` is
        ``"before-unlink"`` — merged segment durable, old ones live."""
        if not self.plan or not self.plan.has_compact_interrupt():
            return
        for spec in self.plan.faults:
            if spec.kind == "compact_interrupt":
                self.fire(spec, f"compaction stage {stage}")


#: Shared no-op injector — the default on every store.
NO_FAULTS = FaultInjector()
