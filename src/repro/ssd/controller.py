"""SSD controller: request admission, page fan-out, GC orchestration.

The controller splits each host request into page transactions, routes
them to the owning chip executors, tracks per-request completion, and
turns the FTL's instantly-planned GC jobs into timed transaction chains
(moves first, erase gated on their completion).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import SsdSpec
from repro.errors import SimulationError
from repro.ftl.ftl import PageLevelFtl
from repro.ftl.gc import GcJob
from repro.nand.geometry import PlaneAddress
from repro.sim.engine import Simulator
from repro.ssd.metrics import LatencyRecorder
from repro.ssd.request import (
    GcJobTracker,
    HostRequest,
    PageTransaction,
    TxnKind,
    TxnPriority,
)
from repro.ssd.scheduler import ChipExecutor
from repro.units import SECTOR_BYTES
from repro.workloads.trace import TraceRequest


class SsdController:
    """Front end of the simulated SSD."""

    def __init__(
        self,
        sim: Simulator,
        spec: SsdSpec,
        ftl: PageLevelFtl,
        executors: Dict[tuple, ChipExecutor],
    ):
        self.sim = sim
        self.spec = spec
        self.ftl = ftl
        self.executors = executors
        self.reads = LatencyRecorder("read")
        self.writes = LatencyRecorder("write")
        self.requests_completed = 0
        self.last_completion_us = 0.0
        self._next_request_id = 0
        self._gc_trackers: Dict[int, GcJobTracker] = {}
        self._gc_backlog: Dict[PlaneAddress, int] = {}

    # --- host path --------------------------------------------------------------

    def submit(self, trace_request: TraceRequest) -> HostRequest:
        """Admit one trace request at the current simulation time."""
        pages = self._page_span(trace_request)
        request = HostRequest(
            request_id=self._next_request_id,
            trace=trace_request,
            submit_us=self.sim.now,
            pages_total=len(pages),
        )
        self._next_request_id += 1
        if trace_request.is_read:
            for lpn in pages:
                self._submit_read_page(request, lpn)
        else:
            for lpn in pages:
                self._submit_write_page(request, lpn)
        return request

    def _page_span(self, trace_request: TraceRequest) -> List[int]:
        page_size = self.spec.geometry.page_size
        first_byte = trace_request.lba * SECTOR_BYTES
        last_byte = trace_request.end_lba * SECTOR_BYTES - 1
        first = first_byte // page_size
        last = last_byte // page_size
        limit = self.spec.logical_pages
        return [lpn % limit for lpn in range(first, last + 1)]

    def _submit_read_page(self, request: HostRequest, lpn: int) -> None:
        address = self.ftl.read(lpn)
        if address is None:
            # Never-written page: controller answers from the mapping
            # table without touching flash.
            self.sim.after(
                self.spec.controller_overhead_us,
                lambda: self._credit_page(request),
            )
            return
        txn = PageTransaction(
            kind=TxnKind.READ,
            priority=TxnPriority.USER_READ,
            channel=address.channel,
            chip=address.chip,
            address=address,
            lpn=lpn,
            request=request,
        )
        self.executors[(address.channel, address.chip)].submit(txn)

    def _submit_write_page(self, request: HostRequest, lpn: int) -> None:
        plan = self.ftl.write(lpn)
        address = plan.destination
        txn = PageTransaction(
            kind=TxnKind.PROGRAM,
            priority=TxnPriority.USER_WRITE,
            channel=address.channel,
            chip=address.chip,
            address=address,
            lpn=lpn,
            request=request,
            program_scale=plan.program_scale,
        )
        self.executors[(address.channel, address.chip)].submit(txn)
        for job in plan.gc_jobs:
            self._enqueue_gc_job(job)

    # --- GC orchestration -----------------------------------------------------------

    def _enqueue_gc_job(self, job: GcJob) -> None:
        backlog = self._gc_backlog.get(job.plane, 0)
        escalated = backlog >= self.spec.scheduler.gc_escalation_backlog
        job.escalated = escalated
        priority = TxnPriority.USER_WRITE if escalated else TxnPriority.GC
        self._gc_backlog[job.plane] = backlog + 1
        erase_txn = PageTransaction(
            kind=TxnKind.ERASE,
            priority=TxnPriority.USER_WRITE if escalated else TxnPriority.ERASE,
            channel=job.plane.channel,
            chip=job.plane.chip,
            erase_result=job.erase_result,
            gc_job=job,
        )
        tracker = GcJobTracker(job=job, erase_txn=erase_txn)
        self._gc_trackers[id(job)] = tracker
        executor = self.executors[(job.plane.channel, job.plane.chip)]
        for move in job.moves:
            read_txn = PageTransaction(
                kind=TxnKind.GC_READ,
                priority=priority,
                channel=move.source.channel,
                chip=move.source.chip,
                address=move.source,
                lpn=move.lpn,
                gc_job=job,
            )
            program_txn = PageTransaction(
                kind=TxnKind.GC_PROGRAM,
                priority=priority,
                channel=move.destination.channel,
                chip=move.destination.chip,
                address=move.destination,
                lpn=move.lpn,
                gc_job=job,
            )
            tracker.moves_remaining += 2
            tracker.move_txns.extend((read_txn, program_txn))
        if tracker.moves_remaining == 0:
            tracker.submitted_erase = True
            executor.submit(erase_txn)
        else:
            for txn in tracker.move_txns:
                self.executors[(txn.channel, txn.chip)].submit(txn)

    # --- completion handling -----------------------------------------------------------

    def on_txn_complete(self, txn: PageTransaction) -> None:
        """Callback wired into every chip executor."""
        if txn.request is not None:
            self._credit_page(txn.request)
            return
        if txn.gc_job is not None:
            self._credit_gc(txn)

    def _credit_page(self, request: HostRequest) -> None:
        request.pages_done += 1
        if request.pages_done < request.pages_total:
            return
        if request.complete_us is not None:
            raise SimulationError("request completed twice")
        request.complete_us = self.sim.now
        latency = request.latency_us or 0.0
        if request.is_read:
            self.reads.record(latency)
        else:
            self.writes.record(latency)
        self.requests_completed += 1
        self.last_completion_us = self.sim.now

    def _credit_gc(self, txn: PageTransaction) -> None:
        tracker = self._gc_trackers.get(id(txn.gc_job))
        if tracker is None:
            raise SimulationError("GC completion for unknown job")
        if txn.kind is TxnKind.ERASE:
            plane = tracker.job.plane
            self._gc_backlog[plane] = max(0, self._gc_backlog.get(plane, 1) - 1)
            del self._gc_trackers[id(txn.gc_job)]
            return
        tracker.moves_remaining -= 1
        if tracker.moves_remaining == 0 and not tracker.submitted_erase:
            tracker.submitted_erase = True
            executor = self.executors[
                (tracker.erase_txn.channel, tracker.erase_txn.chip)
            ]
            executor.submit(tracker.erase_txn)

    # --- diagnostics ------------------------------------------------------------------

    @property
    def outstanding_gc_jobs(self) -> int:
        return len(self._gc_trackers)
