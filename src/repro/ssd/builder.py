"""Assemble a simulated SSD at a given wear point.

The paper evaluates every scheme at fixed P/E-cycle setpoints (0.5K,
2.5K, 4.5K); the builder ages every block to the setpoint (with small
block-to-block jitter), warms up scheme-internal state (i-ISPE's
memorized loop counts), and wires chips, FTL, and scheme together.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SsdSpec
from repro.core.aero import AeroEraseScheme
from repro.erase.iispe import IntelligentIspeScheme
from repro.experiments.registry import SCHEMES
from repro.ftl.aeroftl import AeroFtl
from repro.ftl.ftl import PageLevelFtl
from repro.nand.chip import NandChip
from repro.rng import derive_rng
from repro.ssd.ssd import Ssd


def build_ssd(
    spec: SsdSpec,
    scheme_key: str = "aero",
    pec_setpoint: int = 0,
    mispredict_rate: float = 0.0,
    rber_requirement: Optional[int] = None,
    **scheme_params,
) -> Ssd:
    """Build an SSD whose blocks sit at ``pec_setpoint`` P/E cycles.

    ``scheme_key`` resolves through the scheme registry
    (:data:`repro.experiments.SCHEMES`), so registered plugin schemes
    build the same way as the six built-ins; extra keyword arguments
    are passed through to the scheme factory.
    """
    geometry = spec.geometry
    chips = [
        NandChip(
            channel=channel,
            chip=chip,
            profile=spec.profile,
            planes=geometry.planes_per_chip,
            blocks_per_plane=geometry.blocks_per_plane,
            pages_per_block=geometry.pages_per_block,
            seed=spec.seed,
        )
        for channel in range(geometry.channels)
        for chip in range(geometry.chips_per_channel)
    ]
    scheme = SCHEMES.create(
        scheme_key,
        spec.profile,
        mispredict_rate=mispredict_rate,
        rber_requirement=rber_requirement,
        **scheme_params,
    )
    _age_blocks(chips, pec_setpoint, spec.seed)
    if isinstance(scheme, IntelligentIspeScheme):
        _warm_up_iispe(scheme, chips)
    rng = derive_rng(spec.seed, "ftl", scheme_key, pec_setpoint)
    if isinstance(scheme, AeroEraseScheme):
        ftl: PageLevelFtl = AeroFtl(spec, chips, scheme, rng)
    else:
        ftl = PageLevelFtl(spec, chips, scheme, rng)
    return Ssd(spec=spec, chips=chips, ftl=ftl, scheme=scheme)


def _age_blocks(chips, pec_setpoint: int, seed: int) -> None:
    """Set every block's wear to the setpoint (±2 % jitter)."""
    if pec_setpoint <= 0:
        return
    rng = derive_rng(seed, "aging", pec_setpoint)
    for chip in chips:
        for block in chip.iter_blocks():
            jitter = float(rng.normal(1.0, 0.02))
            block.wear.age_kilocycles = max(0.0, pec_setpoint * jitter) / 1000.0
            block.wear.pec = pec_setpoint


def _warm_up_iispe(scheme: IntelligentIspeScheme, chips) -> None:
    """Seed i-ISPE's per-block memory with the current loop counts.

    At a wear setpoint the drive has been running for thousands of
    cycles; i-ISPE's table would long since reflect each block's
    NISPE, so the builder initializes it rather than starting cold.
    """
    for chip in chips:
        for block in chip.iter_blocks():
            loops = block.erase_model.nispe(block.wear.age_kilocycles)
            scheme._memorized_loop[block.address] = loops
