"""Host requests and page-level transactions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional

from repro.erase.scheme import EraseOperationResult
from repro.ftl.gc import GcJob
from repro.nand.geometry import PageAddress
from repro.workloads.trace import TraceRequest


class TxnKind(IntEnum):
    """NAND-level transaction types."""

    READ = 0
    PROGRAM = 1
    GC_READ = 2
    GC_PROGRAM = 3
    ERASE = 4


class TxnPriority(IntEnum):
    """Chip scheduling priority (lower value = served first).

    User reads outrank everything (the paper's scheduler extension);
    GC work and erases run in idle gaps unless the plane's backlog
    forces escalation.
    """

    USER_READ = 0
    USER_WRITE = 1
    GC = 2
    ERASE = 3


@dataclass
class HostRequest:
    """One trace request in flight."""

    request_id: int
    trace: TraceRequest
    submit_us: float
    pages_total: int
    pages_done: int = 0
    complete_us: Optional[float] = None

    @property
    def is_read(self) -> bool:
        return self.trace.is_read

    @property
    def latency_us(self) -> Optional[float]:
        if self.complete_us is None:
            return None
        return self.complete_us - self.submit_us


@dataclass
class PageTransaction:
    """One NAND operation queued at a chip."""

    kind: TxnKind
    priority: TxnPriority
    #: Channel/chip the transaction executes on.
    channel: int
    chip: int
    #: Physical page (None for unmapped reads and erases).
    address: Optional[PageAddress] = None
    lpn: Optional[int] = None
    #: Host request to credit on completion (None for GC/erase).
    request: Optional[HostRequest] = None
    #: tPROG scale for program transactions (DPES).
    program_scale: float = 1.0
    #: Erase payload (segments to replay).
    erase_result: Optional[EraseOperationResult] = None
    #: GC job this transaction belongs to (dependency tracking).
    gc_job: Optional[GcJob] = None
    enqueue_us: float = 0.0

    @property
    def is_user(self) -> bool:
        return self.priority in (TxnPriority.USER_READ, TxnPriority.USER_WRITE)


@dataclass
class GcJobTracker:
    """Dependency tracker: the erase runs after all moves complete."""

    job: GcJob
    erase_txn: PageTransaction
    moves_remaining: int = 0
    submitted_erase: bool = False
    move_txns: List[PageTransaction] = field(default_factory=list)
