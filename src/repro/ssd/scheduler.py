"""Chip-level transaction scheduling with erase suspension.

One :class:`ChipExecutor` serializes the NAND operations of one chip
(die). Scheduling policy (the paper's MQSim extension, Section 7.1):

* strict priority: user reads > user writes > GC > erase, FIFO within
  a level;
* an in-flight erase is suspended the moment a user read arrives
  (practical erase suspension [13]); it resumes — paying the ramp
  overhead — once no higher-priority work is queued;
* GC jobs escalate to write priority when the plane's backlog exceeds
  the configured threshold ("no longer possible to delay").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.config import SsdSpec
from repro.erase.suspension import SegmentCursor
from repro.errors import SimulationError
from repro.nand.chip import NandChip
from repro.sim.engine import Event, Simulator
from repro.ssd.channel import ChannelBus
from repro.ssd.request import PageTransaction, TxnKind, TxnPriority


class ChipExecutor:
    """Priority scheduler + timing replay for one chip."""

    def __init__(
        self,
        sim: Simulator,
        spec: SsdSpec,
        chip: NandChip,
        bus: ChannelBus,
        on_complete: Callable[[PageTransaction], None],
    ):
        self.sim = sim
        self.spec = spec
        self.chip = chip
        self.bus = bus
        self.on_complete = on_complete
        self.queues: Dict[TxnPriority, Deque[PageTransaction]] = {
            priority: deque() for priority in TxnPriority
        }
        self.busy = False
        self.current: Optional[PageTransaction] = None
        self._completion: Optional[Event] = None
        self._erase_cursor: Optional[SegmentCursor] = None
        self._erase_run_started: float = 0.0
        self._suspended_txn: Optional[PageTransaction] = None
        self._suspended_cursor: Optional[SegmentCursor] = None
        self._suspend_pending = False
        # stats
        self.erase_suspensions = 0
        self.erases_completed = 0
        self.erase_busy_us = 0.0
        self.txns_completed = 0

    # --- submission ---------------------------------------------------------------

    def submit(self, txn: PageTransaction) -> None:
        """Queue a transaction; may suspend an in-flight erase."""
        txn.enqueue_us = self.sim.now
        self.queues[txn.priority].append(txn)
        if (
            txn.priority is TxnPriority.USER_READ
            and self.spec.scheduler.erase_suspension
            and self._erase_in_flight()
        ):
            self._request_erase_suspension()
        self._dispatch()

    def queued(self) -> int:
        return sum(len(q) for q in self.queues.values())

    # --- dispatch loop ----------------------------------------------------------------

    def _dispatch(self) -> None:
        if self.busy:
            return
        for priority in TxnPriority:
            if (
                priority is TxnPriority.ERASE
                and self._suspended_txn is not None
            ):
                # The suspended erase is FIFO-older than anything in the
                # ERASE queue — resume it before starting a new erase,
                # otherwise later arrivals starve it and two erases
                # interleave on the chip.
                self._resume_erase()
                return
            queue = self.queues[priority]
            if queue:
                self._execute(queue.popleft())
                return

    def _execute(self, txn: PageTransaction) -> None:
        self.busy = True
        self.current = txn
        if txn.kind is TxnKind.ERASE:
            self._start_erase(txn)
            return
        duration = self._operation_duration(txn)
        self._completion = self.sim.after(duration, self._complete)

    def _operation_duration(self, txn: PageTransaction) -> float:
        """Service time for a read/program transaction (us)."""
        spec = self.spec
        timing = self.chip.timing
        overhead = spec.controller_overhead_us
        if txn.kind in (TxnKind.READ, TxnKind.GC_READ):
            cell_done = self.sim.now + overhead + timing.t_r_us
            transfer = self.bus.reserve(cell_done)
            decode = spec.profile.ecc.decode_latency_us
            return overhead + timing.t_r_us + transfer + decode
        if txn.kind in (TxnKind.PROGRAM, TxnKind.GC_PROGRAM):
            transfer = self.bus.reserve(self.sim.now + overhead)
            return (
                overhead + transfer + timing.t_prog_us * txn.program_scale
            )
        raise SimulationError(f"unsupported transaction kind {txn.kind}")

    # --- erase execution ----------------------------------------------------------------

    def _start_erase(self, txn: PageTransaction) -> None:
        if txn.erase_result is None:
            raise SimulationError("erase transaction without a result payload")
        cursor = SegmentCursor(
            txn.erase_result,
            suspend_overhead_us=self.spec.scheduler.suspend_overhead_us,
        )
        self._erase_cursor = cursor
        self._erase_run_started = self.sim.now
        self._completion = self.sim.after(
            cursor.remaining_us(), self._complete
        )

    def _erase_in_flight(self) -> bool:
        return (
            self.busy
            and self.current is not None
            and self.current.kind is TxnKind.ERASE
            and self._erase_cursor is not None
            and not self._erase_cursor.finished
        )

    def _request_erase_suspension(self) -> None:
        """Ask the in-flight erase to suspend at its next pulse boundary.

        Practical erase suspension: the current pulse must finish
        (partially applied pulses cannot be safely aborted), and the
        number of suspensions per erase is capped to guarantee the
        erase's forward progress under read storms — beyond the cap the
        erase runs to completion and reads wait it out.
        """
        if self._suspend_pending:
            return
        cursor = self._erase_cursor
        if cursor is None:
            raise SimulationError("no erase to suspend")
        if cursor.suspend_count >= self.spec.scheduler.max_suspensions_per_erase:
            return
        elapsed = self.sim.now - self._erase_run_started
        consumed = cursor.advance(elapsed)
        self.erase_busy_us += consumed
        self._erase_run_started = self.sim.now
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        boundary = cursor.time_to_segment_boundary()
        self._suspend_pending = True
        self.sim.after(boundary, self._finalize_suspension)

    def _finalize_suspension(self) -> None:
        cursor = self._erase_cursor
        txn = self.current
        if cursor is None or txn is None:
            raise SimulationError("suspension finalized with no erase")
        boundary = self.sim.now - self._erase_run_started
        consumed = cursor.advance(boundary)
        self.erase_busy_us += consumed
        self._suspend_pending = False
        if cursor.finished:
            # The boundary was the end of the operation.
            self._erase_cursor = None
            self.erases_completed += 1
            self.busy = False
            self.current = None
            self.txns_completed += 1
            self.on_complete(txn)
            self._dispatch()
            return
        cursor.suspend()
        self._suspended_txn = txn
        self._suspended_cursor = cursor
        self._erase_cursor = None
        self.current = None
        self.busy = False
        self.erase_suspensions += 1
        self._dispatch()

    def _resume_erase(self) -> None:
        txn = self._suspended_txn
        cursor = self._suspended_cursor
        if txn is None or cursor is None:
            raise SimulationError("no suspended erase to resume")
        self._suspended_txn = None
        self._suspended_cursor = None
        cursor.resume()
        self.busy = True
        self.current = txn
        self._erase_cursor = cursor
        self._erase_run_started = self.sim.now
        self._completion = self.sim.after(
            cursor.remaining_us(), self._complete
        )

    # --- completion -------------------------------------------------------------------

    def _complete(self) -> None:
        txn = self.current
        if txn is None:
            raise SimulationError("completion fired with no current txn")
        if txn.kind is TxnKind.ERASE:
            cursor = self._erase_cursor
            if cursor is not None:
                consumed = cursor.advance(cursor.remaining_us())
                self.erase_busy_us += consumed
            self._erase_cursor = None
            self.erases_completed += 1
        self.busy = False
        self.current = None
        self._completion = None
        self.txns_completed += 1
        self.on_complete(txn)
        self._dispatch()
