"""SSD facade: assembled device + trace replay."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import SsdSpec
from repro.erase.scheme import EraseScheme
from repro.errors import SimulationError
from repro.ftl.ftl import PageLevelFtl
from repro.nand.chip import NandChip
from repro.sim.engine import Simulator
from repro.ssd.channel import ChannelBus
from repro.ssd.controller import SsdController
from repro.ssd.metrics import PerfReport
from repro.ssd.scheduler import ChipExecutor
from repro.telemetry.instruments import observe_replay
from repro.workloads.trace import Trace


class Ssd:
    """One simulated SSD: chips + FTL + (per-run) timed front end."""

    def __init__(
        self,
        spec: SsdSpec,
        chips: Sequence[NandChip],
        ftl: PageLevelFtl,
        scheme: EraseScheme,
    ):
        self.spec = spec
        self.chips = list(chips)
        self.ftl = ftl
        self.scheme = scheme

    # --- state preparation -------------------------------------------------------

    def precondition(
        self,
        footprint_pages: Optional[int] = None,
        overwrite_fraction: float = 0.6,
    ) -> None:
        """Fill the drive to steady state (instant, untimed)."""
        if footprint_pages is None:
            footprint_pages = self.spec.logical_pages
        self.ftl.precondition(footprint_pages, overwrite_fraction)

    # --- timed replay ---------------------------------------------------------------

    def run_trace(
        self,
        trace: Trace,
        max_requests: Optional[int] = None,
        workload_name: Optional[str] = None,
    ) -> PerfReport:
        """Replay ``trace`` on the event clock and report performance.

        Each call builds a fresh timed front end (simulator, executors,
        controller); device state (mapping, wear) carries over, so a
        drive can be cycled through several measured windows.
        """
        sim = Simulator()
        buses: Dict[int, ChannelBus] = {
            channel: ChannelBus(channel, self.spec.page_transfer_us)
            for channel in range(self.spec.geometry.channels)
        }
        controller_holder: list = []

        def on_complete(txn):
            controller_holder[0].on_txn_complete(txn)

        executors: Dict[tuple, ChipExecutor] = {}
        for chip in self.chips:
            executors[(chip.channel, chip.chip)] = ChipExecutor(
                sim=sim,
                spec=self.spec,
                chip=chip,
                bus=buses[chip.channel],
                on_complete=on_complete,
            )
        controller = SsdController(sim, self.spec, self.ftl, executors)
        controller_holder.append(controller)

        requests = trace.requests
        if max_requests is not None:
            requests = requests[:max_requests]
        # Makespan floor: the replayed slice's horizon, not the full
        # trace's — a truncated replay must not inherit the arrival time
        # of requests that were never submitted.
        horizon_us = requests[-1].arrival_us if requests else 0.0
        for trace_request in requests:
            sim.at(
                trace_request.arrival_us,
                lambda r=trace_request: controller.submit(r),
            )
        sim.run(max_events=80_000_000)

        expected = len(requests)
        if controller.requests_completed != expected:
            raise SimulationError(
                f"replay incomplete: {controller.requests_completed}/"
                f"{expected} requests finished"
            )
        report = PerfReport(
            workload=workload_name or trace.name,
            scheme=self.scheme.name,
            reads=controller.reads,
            writes=controller.writes,
            requests_completed=controller.requests_completed,
            makespan_us=max(controller.last_completion_us, horizon_us),
            erases=sum(e.erases_completed for e in executors.values()),
            erase_busy_us=sum(e.erase_busy_us for e in executors.values()),
            erase_suspensions=sum(
                e.erase_suspensions for e in executors.values()
            ),
            gc_jobs=self.ftl.stats.gc_jobs,
            gc_page_moves=self.ftl.stats.gc_page_moves,
        )
        report.extra["waf"] = self.ftl.stats.write_amplification
        report.extra["mean_erase_latency_us"] = (
            self.ftl.stats.mean_erase_latency_us
        )
        observe_replay(report, self.ftl.stats)
        return report
