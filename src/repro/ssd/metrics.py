"""Latency recording and performance reporting.

``PerfReport`` (and the ``LatencyRecorder`` samples inside it) can be
serialized to a JSON-compatible dict and reconstructed exactly —
``PerfReport.from_json_dict(report.to_json_dict()) == report`` — which
is what lets the evaluation harness cache finished grid cells on disk
and resume interrupted campaigns (see :mod:`repro.harness.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import SimulationError

#: Percentiles reported by default: the paper's Figure 14/15 points
#: (99.99, 99.9999) plus the robust 99.9 used at bench scale.
DEFAULT_PERCENTILES = (99.0, 99.9, 99.99, 99.9999)


class LatencyRecorder:
    """Accumulates per-request latencies for one operation class."""

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise SimulationError(f"negative latency {latency_us}")
        self._values.append(latency_us)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        return self._values

    @property
    def mean_us(self) -> float:
        return float(np.mean(self._values)) if self._values else 0.0

    @property
    def max_us(self) -> float:
        return float(np.max(self._values)) if self._values else 0.0

    def percentile(self, pct: float) -> float:
        """Exact percentile over recorded samples (us).

        At bench scale the extreme percentiles saturate to the max
        sample; callers compare *relative* values across schemes, as
        the paper does (all Figure 14 values are normalized).
        """
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, pct))

    def summary(self, percentiles=DEFAULT_PERCENTILES) -> Dict[str, float]:
        out = {"count": float(len(self._values)), "mean_us": self.mean_us}
        for pct in percentiles:
            out[f"p{pct:g}_us"] = self.percentile(pct)
        out["max_us"] = self.max_us
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyRecorder):
            return NotImplemented
        return self.name == other.name and self._values == other._values

    # --- serialization ------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-compatible form preserving every recorded sample."""
        return {"name": self.name, "values": list(self._values)}

    @classmethod
    def from_values(
        cls, name: str, values: Iterable[float]
    ) -> "LatencyRecorder":
        recorder = cls(name)
        recorder._values = [float(v) for v in values]
        return recorder

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "LatencyRecorder":
        return cls.from_values(data["name"], data["values"])


@dataclass
class PerfReport:
    """Outcome of one timed trace replay."""

    workload: str
    scheme: str
    reads: LatencyRecorder
    writes: LatencyRecorder
    requests_completed: int = 0
    makespan_us: float = 0.0
    erases: int = 0
    erase_busy_us: float = 0.0
    erase_suspensions: int = 0
    gc_jobs: int = 0
    gc_page_moves: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def iops(self) -> float:
        """Completed requests per second over the makespan."""
        if self.makespan_us <= 0:
            return 0.0
        return self.requests_completed / (self.makespan_us / 1e6)

    def read_tail(self, pct: float) -> float:
        return self.reads.percentile(pct)

    def as_dict(self) -> Dict[str, float]:
        out = {
            "workload": self.workload,
            "scheme": self.scheme,
            "requests": self.requests_completed,
            "iops": self.iops,
            "makespan_us": self.makespan_us,
            "erases": self.erases,
            "erase_suspensions": self.erase_suspensions,
            "gc_jobs": self.gc_jobs,
            "gc_page_moves": self.gc_page_moves,
        }
        for key, value in self.reads.summary().items():
            out[f"read_{key}"] = value
        for key, value in self.writes.summary().items():
            out[f"write_{key}"] = value
        return out

    # --- serialization ------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Lossless JSON-compatible form (exact float round-trip)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "reads": self.reads.to_json_dict(),
            "writes": self.writes.to_json_dict(),
            "requests_completed": self.requests_completed,
            "makespan_us": self.makespan_us,
            "erases": self.erases,
            "erase_busy_us": self.erase_busy_us,
            "erase_suspensions": self.erase_suspensions,
            "gc_jobs": self.gc_jobs,
            "gc_page_moves": self.gc_page_moves,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "PerfReport":
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            reads=LatencyRecorder.from_json_dict(data["reads"]),
            writes=LatencyRecorder.from_json_dict(data["writes"]),
            requests_completed=int(data["requests_completed"]),
            makespan_us=float(data["makespan_us"]),
            erases=int(data["erases"]),
            erase_busy_us=float(data["erase_busy_us"]),
            erase_suspensions=int(data["erase_suspensions"]),
            gc_jobs=int(data["gc_jobs"]),
            gc_page_moves=int(data["gc_page_moves"]),
            extra={k: float(v) for k, v in data.get("extra", {}).items()},
        )


def normalize(value: float, baseline: float) -> float:
    """value / baseline with a guard for empty baselines."""
    if baseline <= 0:
        return 0.0 if value <= 0 else float("inf")
    return value / baseline
