"""Latency recording and performance reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SimulationError

#: Percentiles reported by default: the paper's Figure 14/15 points
#: (99.99, 99.9999) plus the robust 99.9 used at bench scale.
DEFAULT_PERCENTILES = (99.0, 99.9, 99.99, 99.9999)


class LatencyRecorder:
    """Accumulates per-request latencies for one operation class."""

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise SimulationError(f"negative latency {latency_us}")
        self._values.append(latency_us)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        return self._values

    @property
    def mean_us(self) -> float:
        return float(np.mean(self._values)) if self._values else 0.0

    @property
    def max_us(self) -> float:
        return float(np.max(self._values)) if self._values else 0.0

    def percentile(self, pct: float) -> float:
        """Exact percentile over recorded samples (us).

        At bench scale the extreme percentiles saturate to the max
        sample; callers compare *relative* values across schemes, as
        the paper does (all Figure 14 values are normalized).
        """
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, pct))

    def summary(self, percentiles=DEFAULT_PERCENTILES) -> Dict[str, float]:
        out = {"count": float(len(self._values)), "mean_us": self.mean_us}
        for pct in percentiles:
            out[f"p{pct:g}_us"] = self.percentile(pct)
        out["max_us"] = self.max_us
        return out


@dataclass
class PerfReport:
    """Outcome of one timed trace replay."""

    workload: str
    scheme: str
    reads: LatencyRecorder
    writes: LatencyRecorder
    requests_completed: int = 0
    makespan_us: float = 0.0
    erases: int = 0
    erase_busy_us: float = 0.0
    erase_suspensions: int = 0
    gc_jobs: int = 0
    gc_page_moves: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def iops(self) -> float:
        """Completed requests per second over the makespan."""
        if self.makespan_us <= 0:
            return 0.0
        return self.requests_completed / (self.makespan_us / 1e6)

    def read_tail(self, pct: float) -> float:
        return self.reads.percentile(pct)

    def as_dict(self) -> Dict[str, float]:
        out = {
            "workload": self.workload,
            "scheme": self.scheme,
            "requests": self.requests_completed,
            "iops": self.iops,
            "makespan_us": self.makespan_us,
            "erases": self.erases,
            "erase_suspensions": self.erase_suspensions,
            "gc_jobs": self.gc_jobs,
            "gc_page_moves": self.gc_page_moves,
        }
        for key, value in self.reads.summary().items():
            out[f"read_{key}"] = value
        for key, value in self.writes.summary().items():
            out[f"write_{key}"] = value
        return out


def normalize(value: float, baseline: float) -> float:
    """value / baseline with a guard for empty baselines."""
    if baseline <= 0:
        return 0.0 if value <= 0 else float("inf")
    return value / baseline
