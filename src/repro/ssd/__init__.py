"""Event-driven SSD model (the MQSim-style substrate of Section 7)."""

from repro.ssd.request import HostRequest, PageTransaction, TxnKind, TxnPriority
from repro.ssd.metrics import LatencyRecorder, PerfReport
from repro.ssd.channel import ChannelBus
from repro.ssd.scheduler import ChipExecutor
from repro.ssd.controller import SsdController
from repro.ssd.ssd import Ssd
from repro.ssd.builder import build_ssd

__all__ = [
    "ChannelBus",
    "ChipExecutor",
    "HostRequest",
    "LatencyRecorder",
    "PageTransaction",
    "PerfReport",
    "Ssd",
    "SsdController",
    "TxnKind",
    "TxnPriority",
    "build_ssd",
]
