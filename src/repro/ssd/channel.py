"""Channel bus: serialized page transfers between controller and chips.

Chips on one channel share the data bus; cell operations (tR, tPROG,
erase pulses) proceed in parallel, but page transfers serialize. The
bus is modeled as a reservation timeline: a transaction reserves its
transfer slot when it starts, and the wait (if the bus is busy) adds to
its service time.
"""

from __future__ import annotations

from repro.errors import SimulationError


class ChannelBus:
    """Reservation-based bus occupancy for one channel."""

    def __init__(self, channel: int, transfer_us_per_page: float):
        if transfer_us_per_page < 0:
            raise SimulationError("transfer time must be non-negative")
        self.channel = channel
        self.transfer_us_per_page = transfer_us_per_page
        self._busy_until = 0.0
        self.transfers = 0
        self.busy_total_us = 0.0

    def reserve(self, now: float, pages: int = 1) -> float:
        """Reserve a transfer starting at/after ``now``.

        Returns the *total delay* from ``now`` until the transfer
        completes (queueing wait + transfer time).
        """
        duration = pages * self.transfer_us_per_page
        start = max(now, self._busy_until)
        self._busy_until = start + duration
        self.transfers += pages
        self.busy_total_us += duration
        return (start - now) + duration

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def utilization(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_total_us / elapsed_us)
