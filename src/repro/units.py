"""Time, size, and rate units used throughout the library.

All simulator time is kept in **microseconds** (float). NAND datasheets
mix microseconds (``tR``, ``tPROG``) and milliseconds (``tBERS``), so the
module provides explicit constructors instead of letting bare numbers
float around the codebase.

Sizes are kept in **bytes** (int); logical block addresses address
``SECTOR_BYTES`` units, matching the block traces used in the paper's
evaluation (Table 3 workloads address 512-byte sectors).
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

US = 1.0
MS = 1000.0
SEC = 1_000_000.0

#: One hour, in microseconds. Used by the retention bake model.
HOUR = 3600.0 * SEC


def us(value: float) -> float:
    """Express ``value`` microseconds in simulator time units."""
    return value * US


def ms(value: float) -> float:
    """Express ``value`` milliseconds in simulator time units."""
    return value * MS


def sec(value: float) -> float:
    """Express ``value`` seconds in simulator time units."""
    return value * SEC


def to_ms(time_us: float) -> float:
    """Convert simulator time (microseconds) to milliseconds."""
    return time_us / MS


def to_sec(time_us: float) -> float:
    """Convert simulator time (microseconds) to seconds."""
    return time_us / SEC


# --- sizes ----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Logical sector size used by block traces (bytes).
SECTOR_BYTES = 512


def kib(value: float) -> int:
    """Express ``value`` KiB in bytes."""
    return int(value * KIB)


def mib(value: float) -> int:
    """Express ``value`` MiB in bytes."""
    return int(value * MIB)


def gib(value: float) -> int:
    """Express ``value`` GiB in bytes."""
    return int(value * GIB)


def sectors_for(byte_count: int) -> int:
    """Number of 512-byte sectors needed to hold ``byte_count`` bytes."""
    return (byte_count + SECTOR_BYTES - 1) // SECTOR_BYTES
