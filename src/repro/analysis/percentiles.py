"""Percentile utilities for latency analysis."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigError


def exact_percentile(samples: Sequence[float], pct: float) -> float:
    """Exact percentile by sorting (numpy's linear interpolation).

    Raises on an empty sample set rather than guessing — tail latency
    of nothing is a bug, not zero.
    """
    if len(samples) == 0:
        raise ConfigError("cannot take a percentile of no samples")
    if not 0.0 <= pct <= 100.0:
        raise ConfigError(f"percentile {pct} outside [0, 100]")
    return float(np.percentile(np.asarray(samples, dtype=float), pct))


def tail_summary(
    samples: Sequence[float],
    percentiles: Sequence[float] = (50.0, 99.0, 99.9, 99.99, 99.9999),
) -> Dict[str, float]:
    """Mean/max plus the requested percentiles."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ConfigError("cannot summarize no samples")
    out = {"count": float(arr.size), "mean": float(arr.mean()), "max": float(arr.max())}
    for pct in percentiles:
        out[f"p{pct:g}"] = float(np.percentile(arr, pct))
    return out
