"""Analysis helpers: percentiles, CDFs, ASCII tables."""

from repro.analysis.percentiles import exact_percentile, tail_summary
from repro.analysis.cdf import Cdf
from repro.analysis.tables import format_table

__all__ = ["Cdf", "exact_percentile", "format_table", "tail_summary"]
