"""ASCII table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table (benchmark console output)."""
    cells: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
