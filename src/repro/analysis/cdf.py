"""Empirical cumulative distribution functions (Figure 4 style)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


class Cdf:
    """Empirical CDF over a sample set."""

    def __init__(self, samples: Sequence[float]):
        if len(samples) == 0:
            raise ConfigError("CDF needs at least one sample")
        self._sorted = np.sort(np.asarray(samples, dtype=float))

    @property
    def count(self) -> int:
        return int(self._sorted.size)

    def at(self, value: float) -> float:
        """Fraction of samples <= value."""
        return float(np.searchsorted(self._sorted, value, side="right")) / self.count

    def quantile(self, q: float) -> float:
        """Inverse CDF (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile {q} outside [0, 1]")
        return float(np.quantile(self._sorted, q))

    def points(self, grid: Sequence[float]) -> List[Tuple[float, float]]:
        """(value, fraction) pairs on a grid — a plottable CDF series."""
        return [(float(v), self.at(float(v))) for v in grid]

    @property
    def min(self) -> float:
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        return float(self._sorted[-1])
