"""Discrete-event simulation engine (the MQSim substrate)."""

from repro.sim.engine import Event, Simulator

__all__ = ["Event", "Simulator"]
