"""Minimal, fast discrete-event engine.

The SSD model (like MQSim) is a network of components exchanging timed
callbacks. The engine is deliberately small: a monotonic clock, a heap
of ``(time, sequence, callback)`` entries, and a run loop. Sequence
numbers break ties deterministically (FIFO among same-time events), so
simulations are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError


@dataclass(frozen=True)
class Event:
    """Handle to a scheduled event; usable for cancellation."""

    time: float
    sequence: int
    _entry: list = field(repr=False, compare=False)

    @property
    def cancelled(self) -> bool:
        return self._entry[3] is None

    def cancel(self) -> None:
        """Cancel the event (no-op if it already fired)."""
        self._entry[3] = None


class Simulator:
    """Event loop with a microsecond clock."""

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time (us)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled placeholders)."""
        return len(self._heap)

    def at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now - 1e-9:
            raise SchedulingError(
                f"cannot schedule at {time} (now {self._now})"
            )
        sequence = next(self._sequence)
        entry = [max(time, self._now), sequence, None, callback]
        event = Event(time=entry[0], sequence=sequence, _entry=entry)
        heapq.heappush(self._heap, entry)
        return event

    def after(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self.at(self._now + delay, callback)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._heap:
            time, _, __, callback = heapq.heappop(self._heap)
            if callback is None:
                continue  # cancelled
            self._now = time
            self._fired += 1
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` bounds the number of callbacks (guard
        against runaway models).

        The loop pops each live entry exactly once: cancelled entries
        are pruned at the heap top, the horizon check reads the top
        in place, and the fired event comes from a single ``heappop``
        (the old ``_next_pending_time()`` + ``step()`` pairing popped
        the top twice per event).
        """
        fired = 0
        heap = self._heap
        while heap:
            if max_events is not None and fired >= max_events:
                raise SchedulingError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            while heap and heap[0][3] is None:
                heapq.heappop(heap)
            if not heap:
                break
            if until is not None and heap[0][0] > until:
                self._now = until
                return
            time, _, __, callback = heapq.heappop(heap)
            self._now = time
            self._fired += 1
            callback()
            fired += 1
        if until is not None:
            self._now = max(self._now, until)
