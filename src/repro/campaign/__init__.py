"""Campaign service: sharded result store + mixed-pool orchestrator.

This package scales the evaluation harness from "a grid in one
process" to "a campaign of millions of cells sharded across processes
and threads with crash-resume". Three layers:

* :mod:`repro.campaign.store` — :class:`ShardedResultStore`, the
  chunked append-only result store;
* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, the declarative
  (schemes x PECs x workloads) campaign description, JSON
  round-trippable and :meth:`GridRunner.plan`-compatible; plus
  :class:`MixedCampaignSpec` and :func:`campaign_spec_from_dict`,
  which dispatch on a ``family`` key so one campaign file carries
  grid cells (``"cell"``), lifetime curves (``"lifetime"``, a
  :class:`~repro.lifetime.spec.LifetimeSpec`), or both (``"mixed"``);
* :mod:`repro.campaign.orchestrator` — :class:`CampaignOrchestrator`,
  which fans pending cells out over a mixed process+thread executor
  pool and streams each finished cell into the store the moment it
  completes;
* :mod:`repro.campaign.supervisor` — :class:`CellSupervisor`, the
  fault-tolerance layer under the orchestrator: per-cell wall-clock
  timeouts, retry with seeded exponential backoff, pool rebuild when
  a worker dies, graceful engine degradation, and poison-cell
  quarantine (:mod:`repro.campaign.quarantine`, one JSONL record per
  given-up cell next to the store).

``python -m repro campaign run|status|compact`` drives all of it from
the shell; ``campaign run --cell-timeout/--max-retries/--on-poison``
expose the supervision knobs and ``--fault-plan`` arms deterministic
chaos (:mod:`repro.faults`).

Multi-writer safety: the store takes a shared ``flock`` for appends
and an exclusive one for compaction/gc, and bumps a generation marker
on every rewrite — N orchestrator processes can share one store root
without losing records (see :mod:`repro.campaign.store`).

Store layout
============

One JSON file per cell (:class:`~repro.harness.cache.ResultCache`)
collapses past a few thousand cells — directory scans, inode pressure,
one ``os.replace`` per cell. The sharded store instead appends records
to a bounded number of JSONL segment files, sharded by fingerprint
prefix::

    <root>/
        store.json              manifest: {"version", "prefix_len",
                                           "segment_max_bytes"}
        2f/                     shard = first prefix_len hex digits
            seg-000000.jsonl      of the cell fingerprint
            seg-000001.jsonl
        88/
            seg-000000.jsonl

Each line of a segment is one self-contained record::

    {"version": CACHE_VERSION, "key": "<fingerprint>", "ts": <epoch>,
     "meta": {...}, "report": {...}}

Non-cell results (lifetime curves) additionally carry a top-level
``"family"`` key naming the result family; cell records omit it, so
every record written before families existed still reads back
byte-identically as a cell.

Append-only semantics: a ``put`` appends one line (a single
``O_APPEND`` write, atomic on POSIX) to the shard's highest-numbered
segment, rolling to a fresh segment once the active one exceeds
``segment_max_bytes``. Within a shard, the *last* record for a key
wins, so overwrites never rewrite history and a torn final line (a
crash mid-append) is skipped on load without losing earlier records.

Compaction (``gc``/``compact``, surfaced as ``python -m repro campaign
compact`` and honouring the same knobs as ``cache gc``) rewrites a
shard's live records — the newest healthy record per surviving key —
into one fresh segment *numbered after* every existing segment, then
unlinks the old ones; a crash between the two steps leaves duplicate
records whose last-wins resolution is unchanged, so compaction is
crash-safe without a directory-wide lock.

Records carry :data:`~repro.harness.cache.CACHE_VERSION`; entries
written under an older version read as misses (and are dropped at
compaction), exactly like the one-file-per-cell cache.
"""

from repro.campaign.orchestrator import (
    CampaignOrchestrator,
    CampaignProgress,
    CampaignResult,
    CampaignStats,
    cell_engine_kind,
    run_campaign,
)
from repro.campaign.quarantine import Quarantine
from repro.campaign.spec import (
    CAMPAIGN_FAMILIES,
    CAMPAIGN_SPEC_VERSION,
    CampaignSpec,
    MixedCampaignSpec,
    campaign_spec_from_dict,
    load_campaign_file,
)
from repro.campaign.store import (
    CompactionStats,
    ShardedResultStore,
    StoreStats,
)
from repro.campaign.supervisor import (
    CellOutcome,
    CellSupervisor,
    RetryPolicy,
)

__all__ = [
    "CAMPAIGN_FAMILIES",
    "CAMPAIGN_SPEC_VERSION",
    "CampaignOrchestrator",
    "CampaignProgress",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStats",
    "CellOutcome",
    "CellSupervisor",
    "CompactionStats",
    "MixedCampaignSpec",
    "Quarantine",
    "RetryPolicy",
    "ShardedResultStore",
    "StoreStats",
    "campaign_spec_from_dict",
    "cell_engine_kind",
    "load_campaign_file",
    "run_campaign",
]
