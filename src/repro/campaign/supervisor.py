"""Cell supervision: timeouts, retry with backoff, quarantine.

:class:`CellSupervisor` sits between the orchestrator and the
supervised workers of :mod:`repro.harness.executors`. The pool
executors give up when a worker dies; the supervisor treats every
failure mode as an *event* with a recovery policy:

* a cell raising → retried with exponential backoff and deterministic
  jitter (seeded through :func:`repro.rng.derive`, so two runs of a
  flaky campaign schedule identical retries);
* a cell exceeding the wall-clock timeout → its process worker is
  SIGKILLed (thread workers are abandoned), a replacement worker is
  spawned, the cell is retried;
* a worker dying outright (``os._exit``, OOM-kill, segfault) → the
  pool is rebuilt and the in-flight cell retried;
* a cell exhausting its budget on the kernel engine → optionally
  degraded to one object-engine attempt before giving up;
* a cell exhausting everything → returned as ``quarantined`` so the
  campaign records it and *finishes* instead of aborting.

The orchestrator feeds persist failures back with :meth:`requeue`
(a put that crashed mid-append is a cell failure too), and a shutdown
event stops admission while in-flight cells drain.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError, InjectedFault
from repro.faults import FaultPlan
from repro.faults.plan import KILL_WORKER_EXIT
from repro.harness.executors import (
    ProcessWorker,
    ThreadWorker,
    WorkerEvent,
)
from repro.harness.runner import execute_job
from repro.rng import derive
from repro.telemetry import get_default_registry, scoped_registry
from repro.telemetry.instruments import campaign_metrics, fault_metrics


def _run_cell_task(task: Tuple[int, int, str, Any, FaultPlan]):
    """Worker-side job execution with fault evaluation.

    Module-level so process workers can pickle it; the fault plan's
    cell predicates are pure functions of ``(cell, attempt, engine)``,
    so a forked worker needs no shared state to evaluate them.

    Process workers run the job under a fresh telemetry registry and
    return its snapshot as a fourth tuple element, so metrics recorded
    inside the child (replay counters, latency histograms) reach the
    coordinator; thread workers share the parent registry and return
    ``None`` there.
    """
    index, attempt, worker_kind, job, plan = task
    if plan:
        delay, kill = plan.cell_fault(index, attempt, job.engine)
        if delay > 0:
            time.sleep(delay)
        if kill:
            if worker_kind == "process":
                import os

                os._exit(KILL_WORKER_EXIT)  # a real, unreportable death
            raise InjectedFault(
                f"injected kill_worker at cell {index} attempt {attempt}",
                kind="kill_worker",
            )
    begin = time.perf_counter()
    if worker_kind == "process":
        with scoped_registry() as registry:
            report = execute_job(job)
        snapshot = registry.snapshot()
    else:
        report = execute_job(job)
        snapshot = None
    return index, report, time.perf_counter() - begin, snapshot


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    Attempt ``n`` (1-based) failing waits
    ``min(cap, base * 2**(n-1))`` scaled by a jitter factor in
    ``[0.5, 1.5)`` derived from ``(seed, fingerprint, n)`` — spread
    enough to de-thunder retries, reproducible enough to replay.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff durations must be >= 0")

    def backoff_s(self, fingerprint: str, attempt: int) -> float:
        base = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        jitter = 0.5 + (
            derive(self.seed, "backoff", fingerprint, attempt) % 1000
        ) / 1000.0
        return base * jitter


@dataclass(frozen=True)
class CellOutcome:
    """One resolved cell, however it resolved.

    ``kind`` is ``"done"`` (report attached), ``"quarantined"`` (the
    cell exhausted its budget; ``reason``/``error`` say why) or
    ``"interrupted"`` (shutdown before the cell could run).
    """

    index: int
    job: Any
    kind: str
    report: Any = None
    wall_s: float = 0.0
    attempts: int = 0
    degraded: bool = False
    reason: str = ""
    error: str = ""


class _Cell:
    __slots__ = ("job", "pool", "attempts", "degraded")

    def __init__(self, job: Any, pool: str):
        self.job = job
        self.pool = pool
        self.attempts = 0
        self.degraded = False


class CellSupervisor:
    """Supervise cell execution across killable worker pools.

    Usage: ``submit`` every cell, then drain ``next_outcome()`` until
    it returns ``None``. Thread-safety: ``submit``/``next_outcome``/
    ``requeue`` are called from the orchestrator's thread only; the
    shared event queue is the sole cross-thread channel.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        cell_timeout_s: Optional[float] = None,
        process_workers: int = 1,
        thread_workers: int = 1,
        fault_plan: Optional[FaultPlan] = None,
        engine_fallback: bool = True,
        shutdown: Optional[Any] = None,
    ):
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ConfigError("cell_timeout_s must be positive")
        self.policy = policy or RetryPolicy()
        self.cell_timeout_s = cell_timeout_s
        self.plan = fault_plan or FaultPlan()
        self.engine_fallback = engine_fallback
        self.shutdown = shutdown
        self.events: "queue.Queue[WorkerEvent]" = queue.Queue()
        self._limits = {"process": process_workers, "thread": thread_workers}
        self._cells: Dict[int, _Cell] = {}
        self._pending: Dict[str, Deque[int]] = {
            "process": deque(), "thread": deque(),
        }
        self._retry_heap: List[Tuple[float, int, int]] = []
        self._inflight: Dict[int, Tuple[int, str, Optional[float]]] = {}
        self._workers: Dict[str, Any] = {}
        self._idle: Dict[str, List[Any]] = {"process": [], "thread": []}
        self._ready: Deque[CellOutcome] = deque()
        self._task_ids = itertools.count()
        self._worker_seq = itertools.count()
        self._outstanding = 0
        self.stats = {
            "retried": 0, "timeouts": 0, "quarantined": 0,
            "pool_rebuilds": 0, "degraded": 0, "interrupted": 0,
        }

    # --- public API ---------------------------------------------------------

    def submit(self, index: int, job: Any, pool: str) -> None:
        """Enqueue one job (grid cell or lifetime curve) on the
        ``process`` or ``thread`` pool."""
        if pool not in self._pending:
            raise ConfigError(f"unknown pool {pool!r}")
        self._cells[index] = _Cell(job, pool)
        self._pending[pool].append(index)
        self._outstanding += 1

    def requeue(self, index: int, reason: str, error: str = "") -> None:
        """Feed back a persist-stage failure as a cell failure.

        The orchestrator calls this when ``store.put`` raised an
        :class:`InjectedFault` *after* the cell itself succeeded — the
        result is not durable, so the cell runs again.
        """
        self._outstanding += 1
        self._handle_failure(index, reason, error)

    def pending_count(self, pool: str) -> int:
        return len(self._pending[pool]) + sum(
            1
            for _, _, idx in self._retry_heap
            if self._cells[idx].pool == pool
        )

    def inflight_count(self, pool: str) -> int:
        return sum(
            1
            for _, name, _ in self._inflight.values()
            if name in self._workers and self._workers[name].kind == pool
        )

    def worker_count(self, pool: str) -> int:
        return sum(
            1 for w in self._workers.values() if w.kind == pool
        )

    def next_outcome(self) -> Optional[CellOutcome]:
        """Block until one cell resolves; ``None`` when all have."""
        while True:
            if self._ready:
                self._outstanding -= 1
                return self._ready.popleft()
            if self._outstanding == 0:
                return None
            if self._shutting_down():
                self._interrupt_pending()
                if self._ready:
                    continue
                if not self._inflight:
                    # Nothing running, nothing schedulable: the retry
                    # heap's survivors are interrupted too.
                    continue
            else:
                self._dispatch()
            try:
                event = self.events.get(timeout=self._wait_s())
            except queue.Empty:
                self._expire_timeouts()
                continue
            self._handle_event(event)

    def close(self) -> None:
        """Tear every worker down (clean sentinel, bounded join)."""
        for worker in list(self._workers.values()):
            worker.close()
        self._workers.clear()
        self._idle = {"process": [], "thread": []}

    # --- scheduling ---------------------------------------------------------

    def _shutting_down(self) -> bool:
        return self.shutdown is not None and self.shutdown.is_set()

    def _now(self) -> float:
        return time.monotonic()

    def _wait_s(self) -> float:
        horizon = self._now() + 0.5
        for _, _, deadline in self._inflight.values():
            if deadline is not None:
                horizon = min(horizon, deadline)
        if self._retry_heap:
            horizon = min(horizon, self._retry_heap[0][0])
        return max(0.01, horizon - self._now())

    def _dispatch(self) -> None:
        now = self._now()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, index = heapq.heappop(self._retry_heap)
            self._pending[self._cells[index].pool].append(index)
        for pool in ("process", "thread"):
            while self._pending[pool]:
                worker = self._checkout_worker(pool)
                if worker is None:
                    break
                index = self._pending[pool].popleft()
                self._start_attempt(index, worker)

    def _checkout_worker(self, pool: str):
        idle = self._idle[pool]
        while idle:
            worker = idle.pop()
            if worker.alive:
                return worker
            self._replace_worker(worker, spawn=False)
        if self.worker_count(pool) < self._limits[pool]:
            return self._spawn_worker(pool)
        return None

    def _spawn_worker(self, pool: str):
        name = f"{pool}-worker-{next(self._worker_seq)}"
        cls = ProcessWorker if pool == "process" else ThreadWorker
        worker = cls(name, _run_cell_task, self.events)
        self._workers[name] = worker
        return worker

    def _replace_worker(self, worker, spawn: bool = True) -> None:
        """Drop a dead/abandoned worker; optionally spawn its successor."""
        if self._workers.pop(worker.name, None) is None:
            return
        self.stats["pool_rebuilds"] += 1
        campaign_metrics().pool_rebuilds.labels(pool=worker.kind).inc()
        if spawn:
            self._idle[worker.kind].append(self._spawn_worker(worker.kind))

    def _start_attempt(self, index: int, worker) -> None:
        cell = self._cells[index]
        cell.attempts += 1
        if self.plan:
            # Cell faults are recorded here, in the parent — a worker
            # that os._exit()s cannot report its own injection.
            delay, kill = self.plan.cell_fault(
                index, cell.attempts, cell.job.engine
            )
            metrics = fault_metrics()
            if delay > 0:
                metrics.injected.labels(kind="slow_cell").inc()
            if kill:
                metrics.injected.labels(kind="kill_worker").inc()
        task_id = next(self._task_ids)
        task = (index, cell.attempts, worker.kind, cell.job, self.plan)
        try:
            worker.submit(task_id, task)
        except OSError:
            # Died while idle; its queued "died" event will be stale.
            cell.attempts -= 1
            self._replace_worker(worker)
            self._pending[cell.pool].append(index)
            return
        deadline = (
            self._now() + self.cell_timeout_s
            if self.cell_timeout_s is not None
            else None
        )
        self._inflight[task_id] = (index, worker.name, deadline)

    def _expire_timeouts(self) -> None:
        now = self._now()
        expired = [
            (task_id, index, name)
            for task_id, (index, name, deadline) in self._inflight.items()
            if deadline is not None and deadline <= now
        ]
        for task_id, index, name in expired:
            del self._inflight[task_id]
            self.stats["timeouts"] += 1
            campaign_metrics().timeouts.inc()
            worker = self._workers.get(name)
            if worker is not None:
                worker.kill()
                self._replace_worker(worker)
            self._handle_failure(
                index,
                "timeout",
                f"cell {index} exceeded {self.cell_timeout_s:.3f}s",
            )

    def _interrupt_pending(self) -> None:
        drained: List[int] = []
        for pool in ("process", "thread"):
            drained.extend(self._pending[pool])
            self._pending[pool].clear()
        if not self._inflight:
            drained.extend(index for _, _, index in self._retry_heap)
            self._retry_heap.clear()
        for index in drained:
            cell = self._cells[index]
            self.stats["interrupted"] += 1
            self._ready.append(
                CellOutcome(
                    index=index,
                    job=cell.job,
                    kind="interrupted",
                    attempts=cell.attempts,
                    degraded=cell.degraded,
                    reason="shutdown",
                )
            )

    # --- event handling -----------------------------------------------------

    def _handle_event(self, event: WorkerEvent) -> None:
        if event.kind == "died":
            worker = self._workers.get(event.worker)
            if worker is None:
                return  # we killed it deliberately; already handled
            self._idle[worker.kind] = [
                w for w in self._idle[worker.kind] if w.name != worker.name
            ]
            self._replace_worker(worker)
            entry = self._inflight.pop(event.task_id, None) if (
                event.task_id >= 0
            ) else None
            if entry is not None:
                index = entry[0]
                self._handle_failure(
                    index,
                    "worker_death",
                    f"worker {event.worker} died "
                    f"(exit code {event.payload})",
                )
            return
        entry = self._inflight.pop(event.task_id, None)
        if entry is None:
            return  # late report from an abandoned thread worker
        index = entry[0]
        worker = self._workers.get(event.worker)
        if worker is not None and worker.alive:
            self._idle[worker.kind].append(worker)
        if event.kind == "result":
            _, report, wall_s = event.payload[:3]
            snapshot = event.payload[3] if len(event.payload) > 3 else None
            if snapshot:
                # Process workers ship their telemetry home with the
                # result; merge before the outcome becomes visible.
                get_default_registry().merge_snapshot(snapshot)
            cell = self._cells[index]
            self._ready.append(
                CellOutcome(
                    index=index,
                    job=cell.job,
                    kind="done",
                    report=report,
                    wall_s=wall_s,
                    attempts=cell.attempts,
                    degraded=cell.degraded,
                )
            )
            return
        exc_type, message, _trace = event.payload
        self._handle_failure(index, "error", f"{exc_type}: {message}")

    def _handle_failure(self, index: int, reason: str, error: str) -> None:
        cell = self._cells[index]
        budget = self.policy.max_retries + 1
        if cell.attempts < budget:
            self.stats["retried"] += 1
            campaign_metrics().retries.labels(reason=reason).inc()
            delay = self.policy.backoff_s(
                cell.job.fingerprint, max(1, cell.attempts)
            )
            heapq.heappush(
                self._retry_heap, (self._now() + delay, index, index)
            )
            return
        if (
            self.engine_fallback
            and not cell.degraded
            and cell.pool == "thread"
            and cell.job.engine != "object"
            and getattr(cell.job, "family", "cell") == "cell"
        ):
            # Graceful degradation: exactly one object-engine attempt
            # on the process pool before giving the cell up (attempts
            # is already at budget, so the next failure quarantines).
            # The cell fingerprint excludes the engine, so the store
            # key is unchanged; lifetime jobs are excluded because
            # their fingerprints pin the resolved engine — swapping it
            # would silently answer a different question.
            cell.job = replace(cell.job, engine="object")
            cell.pool = "process"
            cell.degraded = True
            self.stats["degraded"] += 1
            metrics = campaign_metrics()
            metrics.engine_fallbacks.inc()
            metrics.retries.labels(reason=reason).inc()
            self.stats["retried"] += 1
            heapq.heappush(
                self._retry_heap,
                (self._now() + self.policy.backoff_base_s, index, index),
            )
            return
        self.stats["quarantined"] += 1
        campaign_metrics().quarantined.inc()
        self._ready.append(
            CellOutcome(
                index=index,
                job=cell.job,
                kind="quarantined",
                attempts=cell.attempts,
                degraded=cell.degraded,
                reason=reason,
                error=error,
            )
        )
