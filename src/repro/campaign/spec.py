"""Declarative campaign descriptions: ``CampaignSpec``.

A :class:`CampaignSpec` is the frozen description of one full
(schemes x PEC setpoints x workloads) evaluation campaign — the
campaign-shaped sibling of the per-cell
:class:`~repro.experiments.spec.ExperimentSpec`, reusing the same
registries, seed derivation, and cache fingerprints:

* ``spec.jobs()`` plans cells through the exact
  :func:`~repro.harness.runner.plan_jobs` path ``GridRunner.plan``
  uses, so a campaign and an ad-hoc grid of the same shape share every
  cache/store entry;
* ``spec.experiments()`` views the same campaign as a list of
  :class:`ExperimentSpec` objects (each resolving to the identical
  :class:`CellJob`), for code that speaks the per-cell API;
* ``to_dict``/``from_dict`` round-trip through JSON, and
  :func:`load_campaign_file` reads the ``campaign.json`` files the CLI
  takes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.config import SsdSpec
from repro.errors import ConfigError
from repro.experiments.registry import SCHEMES, WORKLOADS
from repro.experiments.spec import (
    ExperimentSpec,
    _ssd_from_dict,
    _ssd_to_dict,
)
from repro.harness.cells import PAPER_PEC_POINTS, PAPER_SCHEMES
from repro.harness.runner import CellJob, plan_jobs
from repro.kernels import ENGINES

#: Bump when the campaign-file layout changes incompatibly.
CAMPAIGN_SPEC_VERSION = 1

#: The ``family`` values a campaign file may declare.
CAMPAIGN_FAMILIES = ("cell", "lifetime", "mixed")

_DEFAULT_SEED = 0xAE20


@dataclass(frozen=True)
class CampaignSpec:
    """Frozen description of one (schemes x PECs x workloads) campaign."""

    schemes: Tuple[str, ...] = PAPER_SCHEMES
    pec_points: Tuple[int, ...] = PAPER_PEC_POINTS
    workloads: Tuple[str, ...] = ("ali.A", "hm", "usr")
    requests: int = 1200
    seed: int = _DEFAULT_SEED
    erase_suspension: bool = True
    engine: str = "auto"
    ssd: Optional[SsdSpec] = field(default=None)

    #: Family discriminator (grid-cell replay campaigns).
    family = "cell"

    def __post_init__(self) -> None:
        for name in ("schemes", "pec_points", "workloads"):
            value = getattr(self, name)
            if isinstance(value, (list, tuple)):
                object.__setattr__(self, name, tuple(value))
            else:
                raise ConfigError(f"{name} must be a list, got {value!r}")
            if not getattr(self, name):
                raise ConfigError(f"campaign needs at least one of {name}")
        if any(not isinstance(s, str) for s in self.schemes):
            raise ConfigError("schemes must be registry keys (strings)")
        if any(not isinstance(w, str) for w in self.workloads):
            raise ConfigError("workloads must be registry refs (strings)")
        if any(
            not isinstance(p, int) or isinstance(p, bool) or p < 0
            for p in self.pec_points
        ):
            raise ConfigError("pec_points must be non-negative integers")
        if self.requests <= 0:
            raise ConfigError("requests must be positive")
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; choose from "
                f"{', '.join(ENGINES)}"
            )

    # --- derived ------------------------------------------------------------

    @property
    def size(self) -> int:
        """How many cells the campaign comprises."""
        return len(self.schemes) * len(self.pec_points) * len(self.workloads)

    def validate(self) -> "CampaignSpec":
        """Check every scheme and workload against the registries."""
        for scheme in self.schemes:
            SCHEMES.get(scheme)
        for workload in self.workloads:
            WORKLOADS.resolve(workload)
        return self

    def jobs(self) -> List[CellJob]:
        """The campaign's cell jobs, ``GridRunner.plan``-identical.

        Same planner, same canonical pec -> workload -> scheme order,
        same per-(pec, workload) seed derivation — so fingerprints (and
        therefore store/cache entries) are shared with grid runs.
        """
        self.validate()
        return plan_jobs(
            schemes=self.schemes,
            pec_points=self.pec_points,
            workloads=self.workloads,
            requests=self.requests,
            spec=self.ssd,
            erase_suspension=self.erase_suspension,
            seed=self.seed,
            engine=self.engine,
        )

    def experiments(self) -> List[ExperimentSpec]:
        """The same campaign as per-cell :class:`ExperimentSpec` objects.

        Each resolves to the identical :class:`CellJob` the planner
        emits (pinned by tests), keeping the two declarative surfaces
        interchangeable.
        """
        return [
            ExperimentSpec(
                scheme=scheme,
                pec=pec,
                workload=workload,
                requests=self.requests,
                seed=self.seed,
                erase_suspension=self.erase_suspension,
                ssd=self.ssd,
                engine=self.engine,
            )
            for pec in self.pec_points
            for workload in self.workloads
            for scheme in self.schemes
        ]

    def fingerprints(self) -> List[str]:
        """Cache keys of every cell, in job order."""
        return [job.fingerprint for job in self.jobs()]

    # --- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; ``from_dict`` inverts it losslessly."""
        return {
            "version": CAMPAIGN_SPEC_VERSION,
            "family": "cell",
            "schemes": list(self.schemes),
            "pec_points": list(self.pec_points),
            "workloads": list(self.workloads),
            "requests": self.requests,
            "seed": self.seed,
            "erase_suspension": self.erase_suspension,
            "engine": self.engine,
            "ssd": None if self.ssd is None else _ssd_to_dict(self.ssd),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output or hand-written JSON."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"campaign spec must be a JSON object, "
                f"got {type(data).__name__}"
            )
        version = data.get("version", CAMPAIGN_SPEC_VERSION)
        if version != CAMPAIGN_SPEC_VERSION:
            raise ConfigError(
                f"unsupported campaign spec version {version!r} "
                f"(this library reads version {CAMPAIGN_SPEC_VERSION})"
            )
        family = data.get("family", "cell")
        if family != "cell":
            raise ConfigError(
                f"family {family!r} is not a cell campaign spec"
            )
        known = {
            "version", "family", "schemes", "pec_points", "workloads",
            "requests", "seed", "erase_suspension", "engine", "ssd",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown campaign spec fields {unknown}; "
                f"known: {', '.join(sorted(known))}"
            )
        ssd = data.get("ssd")
        return cls(
            schemes=tuple(data.get("schemes", PAPER_SCHEMES)),
            pec_points=tuple(data.get("pec_points", PAPER_PEC_POINTS)),
            workloads=tuple(data.get("workloads", ("ali.A", "hm", "usr"))),
            requests=data.get("requests", 1200),
            seed=data.get("seed", _DEFAULT_SEED),
            erase_suspension=data.get("erase_suspension", True),
            engine=data.get("engine", "auto"),
            ssd=None if ssd is None else _ssd_from_dict(ssd),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse one campaign spec from a JSON string."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"invalid campaign JSON: {exc}") from exc
        return cls.from_dict(data)


@dataclass(frozen=True)
class MixedCampaignSpec:
    """A campaign whose members span both families.

    ``members`` is an ordered tuple of :class:`CampaignSpec` and
    :class:`~repro.lifetime.spec.LifetimeSpec` objects; ``jobs()``
    concatenates the members' jobs in order, so one orchestrator run
    executes lifetime curves and replay cells under the same
    supervision, retry/quarantine, fault-injection, and telemetry.
    Nested mixed members are rejected — one level of grouping keeps
    job offsets trivially computable (``member_ranges``).
    """

    members: Tuple[Any, ...] = ()

    #: Family discriminator (heterogeneous campaigns).
    family = "mixed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(self.members))
        if not self.members:
            raise ConfigError("mixed campaign needs at least one member")
        for member in self.members:
            member_family = getattr(member, "family", None)
            if member_family not in ("cell", "lifetime"):
                raise ConfigError(
                    f"mixed campaign members must be cell or lifetime "
                    f"specs, got {type(member).__name__} "
                    f"(family {member_family!r})"
                )

    # --- derived ------------------------------------------------------------

    @property
    def seed(self) -> int:
        """The first member's seed (used for retry-backoff derivation)."""
        return self.members[0].seed

    @property
    def size(self) -> int:
        return sum(member.size for member in self.members)

    def validate(self) -> "MixedCampaignSpec":
        for member in self.members:
            member.validate()
        return self

    def jobs(self) -> List[Any]:
        """Every member's jobs, concatenated in member order."""
        jobs: List[Any] = []
        for member in self.members:
            jobs.extend(member.jobs())
        return jobs

    def member_ranges(self) -> List[Tuple[Any, int, int]]:
        """``(member, start, stop)`` slices into the :meth:`jobs` list."""
        ranges: List[Tuple[Any, int, int]] = []
        offset = 0
        for member in self.members:
            ranges.append((member, offset, offset + member.size))
            offset += member.size
        return ranges

    def fingerprints(self) -> List[str]:
        return [job.fingerprint for job in self.jobs()]

    # --- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CAMPAIGN_SPEC_VERSION,
            "family": "mixed",
            "members": [member.to_dict() for member in self.members],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MixedCampaignSpec":
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"campaign spec must be a JSON object, "
                f"got {type(data).__name__}"
            )
        version = data.get("version", CAMPAIGN_SPEC_VERSION)
        if version != CAMPAIGN_SPEC_VERSION:
            raise ConfigError(
                f"unsupported campaign spec version {version!r} "
                f"(this library reads version {CAMPAIGN_SPEC_VERSION})"
            )
        known = {"version", "family", "members"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown campaign spec fields {unknown}; "
                f"known: {', '.join(sorted(known))}"
            )
        members = data.get("members")
        if not isinstance(members, (list, tuple)):
            raise ConfigError("mixed campaign needs a members list")
        parsed = []
        for member in members:
            if (
                isinstance(member, Mapping)
                and member.get("family") == "mixed"
            ):
                raise ConfigError(
                    "mixed campaigns cannot nest mixed members"
                )
            parsed.append(campaign_spec_from_dict(member))
        return cls(members=tuple(parsed))


def campaign_spec_from_dict(
    data: Mapping[str, Any],
) -> Union[CampaignSpec, MixedCampaignSpec, Any]:
    """Parse any campaign-family spec dict by its ``family`` key.

    ``cell`` (the default when the key is absent, for backward
    compatibility with pre-family campaign files) builds a
    :class:`CampaignSpec`, ``lifetime`` a
    :class:`~repro.lifetime.spec.LifetimeSpec`, ``mixed`` a
    :class:`MixedCampaignSpec`; anything else is a
    :class:`ConfigError` listing the valid families.
    """
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"campaign spec must be a JSON object, got {type(data).__name__}"
        )
    family = data.get("family", "cell")
    if family == "cell":
        return CampaignSpec.from_dict(data)
    if family == "lifetime":
        from repro.lifetime.spec import LifetimeSpec

        return LifetimeSpec.from_dict(data)
    if family == "mixed":
        return MixedCampaignSpec.from_dict(data)
    raise ConfigError(
        f"unknown campaign family {family!r}; "
        f"valid families: {', '.join(CAMPAIGN_FAMILIES)}"
    )


def load_campaign_file(
    path: Union[str, Path],
) -> Union[CampaignSpec, MixedCampaignSpec, Any]:
    """Load a campaign spec (any family) from a JSON file.

    Accepts the bare spec object or ``{"campaign": {...}}``; the
    ``family`` key selects the spec type (``cell`` when absent).
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read campaign file {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(
            f"invalid JSON in campaign file {path}: {exc}"
        ) from exc
    if isinstance(data, Mapping) and "campaign" in data:
        data = data["campaign"]
    return campaign_spec_from_dict(data)
