"""Poison-cell quarantine: the store-adjacent record of given-up work.

A cell that fails every retry attempt is *quarantined* rather than
aborting the campaign: one JSON line per poison cell appends to
``<store_root>/quarantine.jsonl`` (atomic ``O_APPEND``, same
durability idiom as the store's segments), so operators can inspect
what was skipped, why, and with which job parameters — and a later
run can decide to retry it. Stores without a filesystem root (a
plain dict in tests) fall back to memory-only records.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

QUARANTINE_FILE = "quarantine.jsonl"


class Quarantine:
    """Append-only log of cells that exhausted their retry budget."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.path: Optional[Path] = (
            Path(root) / QUARANTINE_FILE if root is not None else None
        )
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        if self.path is not None and self.path.exists():
            self._records = self._load()

    def _load(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        assert self.path is not None
        try:
            blob = self.path.read_bytes()
        except OSError:
            return records
        for line in blob.splitlines():
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn final line — same tolerance as the store
            if isinstance(data, dict) and isinstance(data.get("key"), str):
                records.append(data)
        return records

    def record(
        self,
        key: str,
        index: int,
        attempts: int,
        reason: str,
        error: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Quarantine one poison cell; returns the written record."""
        entry = {
            "key": key,
            "index": index,
            "attempts": attempts,
            "reason": reason,
            "error": error,
            "meta": meta or {},
            "ts": time.time(),
        }
        line = json.dumps(entry, separators=(",", ":")).encode() + b"\n"
        with self._lock:
            self._records.append(entry)
            if self.path is not None:
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
                )
                try:
                    os.write(fd, line)
                finally:
                    os.close(fd)
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self._records]

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return any(entry["key"] == key for entry in self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory"
        return f"Quarantine({where!r}, {len(self)} entries)"
