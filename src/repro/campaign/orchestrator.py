"""Campaign orchestrator: mixed process+thread fan-out with resume.

:class:`CampaignOrchestrator` executes a :class:`CampaignSpec` against
a result store:

1. **Plan** — the spec's cells become ``GridRunner.plan``-identical
   :class:`CellJob` objects (shared fingerprints, shared store
   entries).
2. **Resume** — every cell whose fingerprint the store can retrieve is
   loaded, not re-executed; a campaign killed at any point restarts
   from the store alone.
3. **Route** — pending cells split across a mixed executor pool by
   engine: kernel-engine cells go to :class:`ThreadExecutor` workers
   (the replay kernels do their heavy lifting in NumPy, which releases
   the GIL, and threads skip the process pickle tax), object-engine
   cells go to :class:`ProcessExecutor` workers (pure-Python event
   loops hold the GIL, so only processes parallelize them).
4. **Supervise** — cells run under a
   :class:`~repro.campaign.supervisor.CellSupervisor`: wall-clock
   timeouts, retry with seeded backoff, pool rebuild when a worker
   dies, quarantine for poison cells — a flaky cell never aborts the
   campaign (``on_poison="fail"`` opts back into aborting).
5. **Stream** — each finished report is appended to the store the
   moment it arrives, so an interruption loses at most the in-flight
   cells; a put that raises :class:`~repro.errors.InjectedFault`
   (chaos testing) re-queues its cell instead of crashing.
6. **Report** — a progress callback receives cells done / total,
   throughput, and a projected finish throughout the run.

Determinism: cells are pure functions of their jobs and the grid is
assembled in job order, so an orchestrated (parallel, resumed,
mixed-pool, even retried) campaign is bit-identical to a fresh
:class:`SerialExecutor` run of the same spec — pinned by tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.campaign.quarantine import Quarantine
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ShardedResultStore
from repro.campaign.supervisor import CellSupervisor, RetryPolicy
from repro.errors import ConfigError, InjectedFault, PoisonCellError
from repro.faults import FaultPlan
from repro.harness.grid import EvaluationGrid
from repro.harness.runner import grid_from_jobs
from repro.harness.store import ResultStore
from repro.telemetry.instruments import campaign_metrics


def cell_engine_kind(job: Any) -> str:
    """Which engine a job will execute on: kernel or object.

    For grid cells this mirrors the decision inside
    ``run_workload_cell`` without building an SSD: ``build_ssd`` always
    constructs one of the two exact FTL types the cell kernel supports,
    and freshly built drives never carry retired blocks, so every cell
    that does not force ``engine="object"`` replays on the kernel path.
    Lifetime jobs resolve through
    :attr:`~repro.lifetime.spec.LifetimeJob.resolved_engine` (the
    scheme may not provide a batch kernel at all).
    """
    if getattr(job, "family", "cell") == "lifetime":
        return job.resolved_engine
    return "object" if job.engine == "object" else "kernel"


@dataclass(frozen=True)
class CampaignProgress:
    """One progress snapshot, handed to the ``progress`` callback."""

    total: int
    executed: int
    resumed: int
    elapsed_s: float

    @property
    def done(self) -> int:
        return self.executed + self.resumed

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def cells_per_s(self) -> Optional[float]:
        """Execution throughput (resumed cells load instantly and are
        excluded — they would inflate the rate the ETA projects with)."""
        if self.executed == 0 or self.elapsed_s <= 0:
            return None
        return self.executed / self.elapsed_s

    @property
    def eta_s(self) -> Optional[float]:
        """Projected seconds to finish, None until a rate exists."""
        rate = self.cells_per_s
        if rate is None or not rate:
            return None
        return self.remaining / rate

    def format(self) -> str:
        """One status line: done/total, %, rate, ETA, provenance."""
        parts = [
            f"{self.done}/{self.total} cells ({self.fraction:.1%})",
        ]
        rate = self.cells_per_s
        if rate is not None:
            parts.append(f"{rate:.2f} cells/s")
        eta = self.eta_s
        if eta is not None and self.remaining:
            parts.append(f"ETA {_format_duration(eta)}")
        parts.append(f"executed {self.executed}, resumed {self.resumed}")
        return " · ".join(parts)


def _format_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


@dataclass(frozen=True)
class CampaignStats:
    """Where the campaign's cells came from, and how long it took.

    The supervision counters (``retried`` .. ``interrupted``) stay
    zero on a healthy run.
    """

    total: int
    executed: int
    resumed: int
    thread_cells: int
    process_cells: int
    wall_s: float
    retried: int = 0
    timeouts: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    degraded: int = 0
    interrupted: int = 0


@dataclass(frozen=True)
class CampaignResult:
    """Everything one orchestrated campaign produced.

    ``reports[i]`` is ``None`` for a quarantined or interrupted cell;
    the grid holds the *grid cells* that finished (lifetime jobs do
    not live on a (scheme, pec, workload) grid), and ``comparisons``
    the assembled :class:`~repro.lifetime.comparison.SchemeComparison`
    of every lifetime member whose curves all completed.
    ``quarantined`` carries the quarantine records written this run.
    """

    spec: Any
    jobs: Tuple[Any, ...]
    reports: Tuple[Optional[Any], ...]
    grid: EvaluationGrid
    stats: CampaignStats
    quarantined: Tuple[Dict[str, Any], ...] = ()
    comparisons: Tuple[Any, ...] = ()

    @property
    def complete(self) -> bool:
        return all(report is not None for report in self.reports)

    def family_counts(self) -> Dict[str, Dict[str, int]]:
        """``{family: {"total": n, "done": m}}`` across the job list."""
        counts: Dict[str, Dict[str, int]] = {}
        for job, report in zip(self.jobs, self.reports):
            family = getattr(job, "family", "cell")
            entry = counts.setdefault(family, {"total": 0, "done": 0})
            entry["total"] += 1
            if report is not None:
                entry["done"] += 1
        return counts


_ProgressFn = Callable[[CampaignProgress], None]
_CellFn = Callable[[int, Any, Any], None]


class CampaignOrchestrator:
    """Runs one campaign spec against a store on a mixed executor pool."""

    def __init__(
        self,
        spec: Union[CampaignSpec, Any],
        store: Union[ResultStore, str, Path],
        process_workers: int = 1,
        thread_workers: int = 1,
        progress: Optional[_ProgressFn] = None,
        progress_interval_s: float = 1.0,
        on_cell: Optional[_CellFn] = None,
        cell_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        on_poison: str = "skip",
        fault_plan: Optional[FaultPlan] = None,
        engine_fallback: bool = True,
        shutdown: Optional[Any] = None,
    ):
        """``store`` is a :class:`ResultStore` or a path (opened as a
        :class:`ShardedResultStore`). ``progress`` is called with a
        :class:`CampaignProgress` at start, at most every
        ``progress_interval_s`` seconds while cells stream in, and at
        the end. ``on_cell(index, job, report)`` fires after each
        *executed* cell is persisted — an exception from it aborts the
        run (which is exactly how the interrupted-resume tests and the
        CI kill step simulate a crash; everything already persisted
        resumes).

        Supervision: ``cell_timeout_s`` bounds each attempt's wall
        clock; a failing cell is retried up to ``max_retries`` times
        with seeded exponential backoff, then (``engine_fallback``)
        kernel-engine cells get one object-engine attempt, then the
        cell is quarantined — skipped with a record
        (``on_poison="skip"``) or fatal
        (``on_poison="fail"`` → :class:`PoisonCellError`).
        ``fault_plan`` arms deterministic chaos (worker kills, slow
        cells; put faults must be armed on the store itself).
        ``shutdown`` is a ``threading.Event``-like object: once set,
        no new cells are admitted and in-flight ones drain.
        """
        if process_workers < 1 or thread_workers < 1:
            raise ConfigError("campaign worker counts must be >= 1")
        if on_poison not in ("skip", "fail"):
            raise ConfigError(
                f"on_poison must be 'skip' or 'fail', got {on_poison!r}"
            )
        self.spec = spec
        self.store: ResultStore = (
            ShardedResultStore(store)
            if isinstance(store, (str, Path)) else store
        )
        self.process_workers = process_workers
        self.thread_workers = thread_workers
        self.progress = progress
        self.progress_interval_s = progress_interval_s
        self.on_cell = on_cell
        self.cell_timeout_s = cell_timeout_s
        self.max_retries = max_retries
        self.on_poison = on_poison
        self.fault_plan = fault_plan or FaultPlan()
        self.engine_fallback = engine_fallback
        self.shutdown = shutdown
        self.quarantine = Quarantine(getattr(self.store, "root", None))

    # --- planning helpers ---------------------------------------------------

    def plan(self) -> List[Any]:
        """The campaign's jobs (``GridRunner.plan``-identical for grid
        cells; lifetime members emit :class:`LifetimeJob` orders)."""
        return self.spec.jobs()

    def status(self) -> CampaignProgress:
        """Resume status of the store, without executing anything."""
        jobs = self.plan()
        done = sum(1 for job in jobs if job.fingerprint in self.store)
        return CampaignProgress(
            total=len(jobs), executed=0, resumed=done, elapsed_s=0.0
        )

    def family_status(self) -> Dict[str, Dict[str, int]]:
        """Per-family resume counts (``campaign status --json``)."""
        counts: Dict[str, Dict[str, int]] = {}
        for job in self.plan():
            family = getattr(job, "family", "cell")
            entry = counts.setdefault(family, {"total": 0, "done": 0})
            entry["total"] += 1
            if job.fingerprint in self.store:
                entry["done"] += 1
        return counts

    def _member_ranges(self) -> List[Tuple[Any, int, int]]:
        """``(member, start, stop)`` job slices; single-family specs
        are their own sole member."""
        ranges = getattr(self.spec, "member_ranges", None)
        if ranges is not None:
            return ranges()
        return [(self.spec, 0, self.spec.size)]

    # --- execution ----------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute the campaign; resume, fan out, stream, assemble."""
        start = time.monotonic()
        jobs = self.plan()
        reports: List[Optional[Any]] = [None] * len(jobs)

        # Resume pass: everything the store can retrieve is loaded.
        pending: List[int] = []
        for index, job in enumerate(jobs):
            cached = self.store.get(job.fingerprint)
            if cached is not None:
                reports[index] = cached
            else:
                pending.append(index)
        resumed = len(jobs) - len(pending)

        # Route by engine: kernel cells to threads, object cells to
        # processes (see cell_engine_kind for why).
        thread_indices = [
            i for i in pending if cell_engine_kind(jobs[i]) == "kernel"
        ]
        process_indices = [
            i for i in pending if cell_engine_kind(jobs[i]) == "object"
        ]

        metrics = campaign_metrics()
        metrics.planned.set(len(jobs))
        # Pre-create the outcome series at zero so a scrape racing the
        # first completed cell still sees every family.
        for outcome in ("executed", "resumed", "superseded"):
            metrics.cells.labels(outcome=outcome).inc(0)
        for reason in ("error", "timeout", "worker_death", "persist_fault"):
            metrics.retries.labels(reason=reason).inc(0)
        metrics.timeouts.inc(0)
        metrics.quarantined.inc(0)
        metrics.engine_fallbacks.inc(0)
        for pool in ("thread", "process"):
            metrics.pool_rebuilds.labels(pool=pool).inc(0)
        if resumed:
            metrics.cells.labels(outcome="resumed").inc(resumed)
        pool_of = {index: "thread" for index in thread_indices}
        pool_of.update({index: "process" for index in process_indices})
        pool_pending = {
            "thread": len(thread_indices),
            "process": len(process_indices),
        }
        pool_executed = {"thread": 0, "process": 0}
        pool_workers = {
            "thread": self.thread_workers,
            "process": self.process_workers,
        }
        for pool, workers in pool_workers.items():
            metrics.pool_workers.labels(pool=pool).set(workers)

        def update_pool_gauges() -> None:
            for pool, left in pool_pending.items():
                metrics.pool_pending.labels(pool=pool).set(left)
                metrics.pool_inflight.labels(pool=pool).set(
                    min(pool_workers[pool], left)
                )

        update_pool_gauges()
        executed = 0
        last_emit = [0.0]

        def emit(force: bool = False) -> None:
            now = time.monotonic()
            snapshot = CampaignProgress(
                total=len(jobs),
                executed=executed,
                resumed=resumed,
                elapsed_s=now - start,
            )
            # Telemetry gauges track every snapshot, including the
            # final one — the callback stays throttled below.
            metrics.progress_fraction.set(snapshot.fraction)
            eta = snapshot.eta_s
            if eta is not None:
                metrics.eta_seconds.set(eta)
            elif snapshot.remaining == 0:
                metrics.eta_seconds.set(0.0)
            if self.progress is None:
                return
            if not force and now - last_emit[0] < self.progress_interval_s:
                return
            last_emit[0] = now
            self.progress(snapshot)

        emit(force=True)
        supervisor = CellSupervisor(
            policy=RetryPolicy(
                max_retries=self.max_retries, seed=self.spec.seed
            ),
            cell_timeout_s=self.cell_timeout_s,
            process_workers=self.process_workers,
            thread_workers=self.thread_workers,
            fault_plan=self.fault_plan,
            engine_fallback=self.engine_fallback,
            shutdown=self.shutdown,
        )
        for index in thread_indices:
            supervisor.submit(index, jobs[index], "thread")
        for index in process_indices:
            supervisor.submit(index, jobs[index], "process")
        quarantined_records: List[Dict[str, Any]] = []
        try:
            while True:
                outcome = supervisor.next_outcome()
                if outcome is None:
                    break
                index = outcome.index
                job = outcome.job
                if outcome.kind == "done":
                    report = outcome.report
                    meta = job.store_meta()
                    superseding = job.fingerprint in self.store
                    try:
                        self.store.put(job.fingerprint, report, meta=meta)
                    except InjectedFault as fault:
                        # A chaos fault around the append: the result
                        # may not be durable, so the cell goes around
                        # again instead of taking the campaign down.
                        supervisor.requeue(
                            index, "persist_fault", str(fault)
                        )
                        continue
                    reports[index] = report
                    executed += 1
                    pool_executed[pool_of[index]] += 1
                    metrics.cell_wall.observe(outcome.wall_s)
                    metrics.cells.labels(outcome="executed").inc()
                    if superseding:
                        metrics.cells.labels(outcome="superseded").inc()
                    pool_pending[pool_of[index]] -= 1
                    update_pool_gauges()
                    emit()
                    if self.on_cell is not None:
                        self.on_cell(index, job, report)
                elif outcome.kind == "quarantined":
                    record = self.quarantine.record(
                        key=job.fingerprint,
                        index=index,
                        attempts=outcome.attempts,
                        reason=outcome.reason,
                        error=outcome.error,
                        meta={
                            **job.store_meta(),
                            "engine": job.engine,
                            "degraded": outcome.degraded,
                        },
                    )
                    quarantined_records.append(record)
                    pool_pending[pool_of[index]] -= 1
                    update_pool_gauges()
                    emit()
                    if self.on_poison == "fail":
                        raise PoisonCellError(
                            f"cell {index} ({job.describe()}) "
                            f"quarantined after "
                            f"{outcome.attempts} attempts: "
                            f"{outcome.reason}: {outcome.error}",
                            index=index,
                            fingerprint=job.fingerprint,
                        )
                else:  # interrupted by shutdown
                    pool_pending[pool_of[index]] -= 1
                    update_pool_gauges()
        finally:
            supervisor.close()
        emit(force=True)

        finished = [
            (job, report)
            for job, report in zip(jobs, reports)
            if report is not None
            and getattr(job, "family", "cell") == "cell"
        ]
        grid = grid_from_jobs(
            [job for job, _ in finished],
            [report for _, report in finished],
        )
        # Lifetime members whose curves all completed assemble into
        # SchemeComparisons, one per member, in member order.
        comparisons = []
        for member, begin, end in self._member_ranges():
            if getattr(member, "family", "cell") != "lifetime":
                continue
            curves = reports[begin:end]
            if all(curve is not None for curve in curves):
                comparisons.append(member.comparison(curves))
        sup = supervisor.stats
        return CampaignResult(
            spec=self.spec,
            jobs=tuple(jobs),
            reports=tuple(reports),
            grid=grid,
            stats=CampaignStats(
                total=len(jobs),
                executed=executed,
                resumed=resumed,
                thread_cells=pool_executed["thread"],
                process_cells=pool_executed["process"],
                wall_s=time.monotonic() - start,
                retried=sup["retried"],
                timeouts=sup["timeouts"],
                quarantined=sup["quarantined"],
                pool_rebuilds=sup["pool_rebuilds"],
                degraded=sup["degraded"],
                interrupted=sup["interrupted"],
            ),
            quarantined=tuple(quarantined_records),
            comparisons=tuple(comparisons),
        )


def run_campaign(
    spec: Union[CampaignSpec, Any],
    store: Union[ResultStore, str, Path],
    process_workers: int = 1,
    thread_workers: int = 1,
    progress: Optional[_ProgressFn] = None,
    progress_interval_s: float = 1.0,
    on_cell: Optional[_CellFn] = None,
    cell_timeout_s: Optional[float] = None,
    max_retries: int = 2,
    on_poison: str = "skip",
    fault_plan: Optional[FaultPlan] = None,
    engine_fallback: bool = True,
    shutdown: Optional[Any] = None,
) -> CampaignResult:
    """One-call façade over :class:`CampaignOrchestrator`."""
    return CampaignOrchestrator(
        spec,
        store,
        process_workers=process_workers,
        thread_workers=thread_workers,
        progress=progress,
        progress_interval_s=progress_interval_s,
        on_cell=on_cell,
        cell_timeout_s=cell_timeout_s,
        max_retries=max_retries,
        on_poison=on_poison,
        fault_plan=fault_plan,
        engine_fallback=engine_fallback,
        shutdown=shutdown,
    ).run()
