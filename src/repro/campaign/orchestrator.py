"""Campaign orchestrator: mixed process+thread fan-out with resume.

:class:`CampaignOrchestrator` executes a :class:`CampaignSpec` against
a result store:

1. **Plan** — the spec's cells become ``GridRunner.plan``-identical
   :class:`CellJob` objects (shared fingerprints, shared store
   entries).
2. **Resume** — every cell whose fingerprint the store can retrieve is
   loaded, not re-executed; a campaign killed at any point restarts
   from the store alone.
3. **Route** — pending cells split across a mixed executor pool by
   engine: kernel-engine cells go to :class:`ThreadExecutor` workers
   (the replay kernels do their heavy lifting in NumPy, which releases
   the GIL, and threads skip the process pickle tax), object-engine
   cells go to :class:`ProcessExecutor` workers (pure-Python event
   loops hold the GIL, so only processes parallelize them).
4. **Stream** — both pools drain concurrently; each finished report is
   appended to the store the moment it arrives, so an interruption
   loses at most the in-flight cells.
5. **Report** — a progress callback receives cells done / total,
   throughput, and a projected finish throughout the run.

Determinism: cells are pure functions of their jobs and the grid is
assembled in job order, so an orchestrated (parallel, resumed,
mixed-pool) campaign is bit-identical to a fresh
:class:`SerialExecutor` run of the same spec — pinned by tests.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ShardedResultStore
from repro.errors import ConfigError
from repro.harness.executors import ProcessExecutor, ThreadExecutor
from repro.harness.grid import EvaluationGrid
from repro.harness.runner import CellJob, execute_cell, grid_from_jobs
from repro.harness.store import ResultStore
from repro.ssd.metrics import PerfReport
from repro.telemetry.instruments import campaign_metrics


def _timed_execute_cell(job: CellJob) -> Tuple[float, PerfReport]:
    """``execute_cell`` timed inside the worker — module-level so it
    pickles into :class:`ProcessExecutor` children; the wall time rides
    back with the report and is observed in the coordinating process
    (child registries are invisible to the parent)."""
    begin = time.perf_counter()
    report = execute_cell(job)
    return time.perf_counter() - begin, report


def cell_engine_kind(job: CellJob) -> str:
    """Which replay engine the cell will execute on: kernel or object.

    Mirrors the decision inside ``run_workload_cell`` without building
    an SSD: ``build_ssd`` always constructs one of the two exact FTL
    types the cell kernel supports, and freshly built drives never
    carry retired blocks, so every cell that does not force
    ``engine="object"`` replays on the kernel path.
    """
    return "object" if job.engine == "object" else "kernel"


@dataclass(frozen=True)
class CampaignProgress:
    """One progress snapshot, handed to the ``progress`` callback."""

    total: int
    executed: int
    resumed: int
    elapsed_s: float

    @property
    def done(self) -> int:
        return self.executed + self.resumed

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def cells_per_s(self) -> Optional[float]:
        """Execution throughput (resumed cells load instantly and are
        excluded — they would inflate the rate the ETA projects with)."""
        if self.executed == 0 or self.elapsed_s <= 0:
            return None
        return self.executed / self.elapsed_s

    @property
    def eta_s(self) -> Optional[float]:
        """Projected seconds to finish, None until a rate exists."""
        rate = self.cells_per_s
        if rate is None or not rate:
            return None
        return self.remaining / rate

    def format(self) -> str:
        """One status line: done/total, %, rate, ETA, provenance."""
        parts = [
            f"{self.done}/{self.total} cells ({self.fraction:.1%})",
        ]
        rate = self.cells_per_s
        if rate is not None:
            parts.append(f"{rate:.2f} cells/s")
        eta = self.eta_s
        if eta is not None and self.remaining:
            parts.append(f"ETA {_format_duration(eta)}")
        parts.append(f"executed {self.executed}, resumed {self.resumed}")
        return " · ".join(parts)


def _format_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


@dataclass(frozen=True)
class CampaignStats:
    """Where the campaign's cells came from, and how long it took."""

    total: int
    executed: int
    resumed: int
    thread_cells: int
    process_cells: int
    wall_s: float


@dataclass(frozen=True)
class CampaignResult:
    """Everything one orchestrated campaign produced."""

    spec: CampaignSpec
    jobs: Tuple[CellJob, ...]
    reports: Tuple[PerfReport, ...]
    grid: EvaluationGrid
    stats: CampaignStats


_ProgressFn = Callable[[CampaignProgress], None]
_CellFn = Callable[[int, CellJob, PerfReport], None]


class CampaignOrchestrator:
    """Runs one campaign spec against a store on a mixed executor pool."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Union[ResultStore, str, Path],
        process_workers: int = 1,
        thread_workers: int = 1,
        progress: Optional[_ProgressFn] = None,
        progress_interval_s: float = 1.0,
        on_cell: Optional[_CellFn] = None,
    ):
        """``store`` is a :class:`ResultStore` or a path (opened as a
        :class:`ShardedResultStore`). ``progress`` is called with a
        :class:`CampaignProgress` at start, at most every
        ``progress_interval_s`` seconds while cells stream in, and at
        the end. ``on_cell(index, job, report)`` fires after each
        *executed* cell is persisted — an exception from it aborts the
        run (which is exactly how the interrupted-resume tests and the
        CI kill step simulate a crash; everything already persisted
        resumes).
        """
        if process_workers < 1 or thread_workers < 1:
            raise ConfigError("campaign worker counts must be >= 1")
        self.spec = spec
        self.store: ResultStore = (
            ShardedResultStore(store)
            if isinstance(store, (str, Path)) else store
        )
        self.process_workers = process_workers
        self.thread_workers = thread_workers
        self.progress = progress
        self.progress_interval_s = progress_interval_s
        self.on_cell = on_cell

    # --- planning helpers ---------------------------------------------------

    def plan(self) -> List[CellJob]:
        """The campaign's jobs (``GridRunner.plan``-identical)."""
        return self.spec.jobs()

    def status(self) -> CampaignProgress:
        """Resume status of the store, without executing anything."""
        jobs = self.plan()
        done = sum(1 for job in jobs if job.fingerprint in self.store)
        return CampaignProgress(
            total=len(jobs), executed=0, resumed=done, elapsed_s=0.0
        )

    # --- execution ----------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute the campaign; resume, fan out, stream, assemble."""
        start = time.monotonic()
        jobs = self.plan()
        reports: List[Optional[PerfReport]] = [None] * len(jobs)

        # Resume pass: everything the store can retrieve is loaded.
        pending: List[int] = []
        for index, job in enumerate(jobs):
            cached = self.store.get(job.fingerprint)
            if cached is not None:
                reports[index] = cached
            else:
                pending.append(index)
        resumed = len(jobs) - len(pending)

        # Route by engine: kernel cells to threads, object cells to
        # processes (see cell_engine_kind for why).
        thread_indices = [
            i for i in pending if cell_engine_kind(jobs[i]) == "kernel"
        ]
        process_indices = [
            i for i in pending if cell_engine_kind(jobs[i]) == "object"
        ]

        metrics = campaign_metrics()
        metrics.planned.set(len(jobs))
        # Pre-create the outcome series at zero so a scrape racing the
        # first completed cell still sees every family.
        for outcome in ("executed", "resumed", "superseded"):
            metrics.cells.labels(outcome=outcome).inc(0)
        if resumed:
            metrics.cells.labels(outcome="resumed").inc(resumed)
        pool_of = {index: "thread" for index in thread_indices}
        pool_of.update({index: "process" for index in process_indices})
        pool_pending = {
            "thread": len(thread_indices),
            "process": len(process_indices),
        }
        pool_workers = {
            "thread": self.thread_workers,
            "process": self.process_workers,
        }
        for pool, workers in pool_workers.items():
            metrics.pool_workers.labels(pool=pool).set(workers)

        def update_pool_gauges() -> None:
            for pool, left in pool_pending.items():
                metrics.pool_pending.labels(pool=pool).set(left)
                metrics.pool_inflight.labels(pool=pool).set(
                    min(pool_workers[pool], left)
                )

        update_pool_gauges()
        executed = 0
        last_emit = [0.0]

        def emit(force: bool = False) -> None:
            now = time.monotonic()
            snapshot = CampaignProgress(
                total=len(jobs),
                executed=executed,
                resumed=resumed,
                elapsed_s=now - start,
            )
            # Telemetry gauges track every snapshot, including the
            # final one — the callback stays throttled below.
            metrics.progress_fraction.set(snapshot.fraction)
            eta = snapshot.eta_s
            if eta is not None:
                metrics.eta_seconds.set(eta)
            elif snapshot.remaining == 0:
                metrics.eta_seconds.set(0.0)
            if self.progress is None:
                return
            if not force and now - last_emit[0] < self.progress_interval_s:
                return
            last_emit[0] = now
            self.progress(snapshot)

        emit(force=True)
        results: "queue.Queue[Tuple[str, int, object]]" = queue.Queue()
        drains = [
            threading.Thread(
                target=self._drain,
                args=(ThreadExecutor(self.thread_workers),
                      jobs, thread_indices, results),
                name="campaign-thread-drain",
                daemon=True,
            ),
            threading.Thread(
                target=self._drain,
                args=(ProcessExecutor(self.process_workers),
                      jobs, process_indices, results),
                name="campaign-process-drain",
                daemon=True,
            ),
        ]
        for drain in drains:
            drain.start()
        try:
            for _ in range(len(pending)):
                kind, index, payload = results.get()
                if kind == "error":
                    raise payload  # a worker died; propagate its reason
                job = jobs[index]
                wall_s, report = payload
                assert isinstance(report, PerfReport)
                meta = {
                    "scheme": job.scheme,
                    "pec": job.pec,
                    "workload": job.workload,
                    "requests": job.requests,
                    "seed": job.seed,
                }
                if job.scheme_params:
                    meta["scheme_params"] = dict(job.scheme_params)
                superseding = job.fingerprint in self.store
                self.store.put(job.fingerprint, report, meta=meta)
                reports[index] = report
                executed += 1
                metrics.cell_wall.observe(wall_s)
                metrics.cells.labels(outcome="executed").inc()
                if superseding:
                    metrics.cells.labels(outcome="superseded").inc()
                pool_pending[pool_of[index]] -= 1
                update_pool_gauges()
                emit()
                if self.on_cell is not None:
                    self.on_cell(index, job, report)
        finally:
            # On clean completion the drains are already finished; on
            # abort they are daemons working toward results nobody will
            # persist — join briefly, then let process exit reap them.
            for drain in drains:
                drain.join(timeout=0.1)
        emit(force=True)

        final = [report for report in reports]
        assert all(report is not None for report in final)
        grid = grid_from_jobs(jobs, final)  # type: ignore[arg-type]
        return CampaignResult(
            spec=self.spec,
            jobs=tuple(jobs),
            reports=tuple(final),  # type: ignore[arg-type]
            grid=grid,
            stats=CampaignStats(
                total=len(jobs),
                executed=executed,
                resumed=resumed,
                thread_cells=len(thread_indices),
                process_cells=len(process_indices),
                wall_s=time.monotonic() - start,
            ),
        )

    @staticmethod
    def _drain(
        executor,
        jobs: Sequence[CellJob],
        indices: Sequence[int],
        results: "queue.Queue[Tuple[str, int, object]]",
    ) -> None:
        """Stream one executor partition's results into the queue."""
        if not indices:
            return
        try:
            stream = executor.imap(
                _timed_execute_cell, [jobs[i] for i in indices]
            )
            for index, report in zip(indices, stream):
                results.put(("ok", index, report))
        except BaseException as exc:  # forwarded, re-raised by run()
            results.put(("error", -1, exc))


def run_campaign(
    spec: CampaignSpec,
    store: Union[ResultStore, str, Path],
    process_workers: int = 1,
    thread_workers: int = 1,
    progress: Optional[_ProgressFn] = None,
    progress_interval_s: float = 1.0,
    on_cell: Optional[_CellFn] = None,
) -> CampaignResult:
    """One-call façade over :class:`CampaignOrchestrator`."""
    return CampaignOrchestrator(
        spec,
        store,
        process_workers=process_workers,
        thread_workers=thread_workers,
        progress=progress,
        progress_interval_s=progress_interval_s,
        on_cell=on_cell,
    ).run()
