"""Chunked, append-only, fingerprint-sharded result store.

:class:`ShardedResultStore` implements the
:class:`~repro.harness.store.ResultStore` contract at campaign scale:
records append to JSONL segment files sharded by fingerprint prefix
(layout documented in :mod:`repro.campaign`), so a million-cell
campaign touches a few hundred files instead of a million, and every
``put`` is one atomic ``O_APPEND`` write instead of a tmp-file dance.

Durability model: the last record per key wins within a shard;
overwrites append rather than rewrite; a torn final line (crash
mid-append) is skipped on load; compaction writes the merged segment
*before* unlinking the old ones, so every intermediate crash state
still reads correctly. Stale-:data:`~repro.harness.cache.CACHE_VERSION`
records read as misses, exactly like the one-file-per-cell cache.

Integrity: every record written by this library version carries a
CRC32 (``"crc"``) over a canonical serialization of its key + report.
Records whose checksum no longer matches — bit rot, a partial
overwrite that still parses as JSON — read as misses, are counted in
:class:`StoreStats` and the ``repro_store_bad_entries_total``
telemetry series, and are dropped at compaction. Checksum-less records
from older stores stay readable unverified.

Telemetry: puts, get hits/misses, superseded overwrites, unusable
records, compactions, and live byte counts stream to the process
metrics registry (:mod:`repro.telemetry.instruments`); all counting
happens at put/get/compact boundaries, never per line in a loop that
matters.

Concurrency: every public method is thread-safe behind one store-wide
lock (the orchestrator persists from its main thread, but `put` from
ThreadExecutor workers is supported). Multi-*process* writers are
first-class: appends take a *shared* advisory ``flock`` on the
per-store lock file (concurrent appenders never serialize against
each other; POSIX ``O_APPEND`` keeps each line atomic), while
compaction and gc rewrites take it *exclusive* — so a rewrite can
never unlink a segment out from under an in-flight append. Every
rewrite bumps the store *generation* marker (``store.gen``); handles
that observe a new generation drop their cached shard indexes and
rescan instead of appending to unlinked segments or crashing on
``FileNotFoundError``. N orchestrators (or ``campaign run`` racing
``campaign compact``) can therefore share one store without losing
records.

Fault injection: a :class:`~repro.faults.FaultInjector` can be armed
on the store (``fault_injector=``); its hooks fire at the put and
compaction boundaries documented in :mod:`repro.faults`, behind a
one-branch no-op default.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigError
from repro.faults import FaultInjector, NO_FAULTS
from repro.harness.cache import CACHE_VERSION, CacheEntry, GcResult
from repro.harness.results import (
    FAMILY_CELL,
    result_family,
    result_from_json_dict,
    result_to_json_dict,
)
from repro.telemetry.instruments import store_metrics


def record_checksum(key: str, report_dict: Dict[str, Any]) -> int:
    """CRC32 over a canonical serialization of one record's payload.

    Canonical = sorted keys, no whitespace — ``json.dumps`` of a
    just-parsed record reproduces the bytes hashed at write time (JSON
    floats round-trip through Python's shortest-repr formatting), so
    the checksum verifies on load without retaining the original line.
    """
    payload = json.dumps(
        [key, report_dict], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(payload.encode("utf-8"))

#: Bump when the on-disk layout (manifest, sharding, segment naming)
#: changes incompatibly — distinct from CACHE_VERSION, which versions
#: the *records* and flows through unchanged.
STORE_LAYOUT_VERSION = 1

_MANIFEST = "store.json"
_LOCKFILE = "store.lock"
_GENERATION = "store.gen"
_DEFAULT_PREFIX_LEN = 2
_DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024


class _Record(NamedTuple):
    """Index entry for the latest record of one key."""

    path: Path
    offset: int
    length: int
    ts: float
    meta: Dict[str, Any]
    stale: bool     # readable, but written under another CACHE_VERSION
    corrupt: bool   # readable JSON, but missing or failing its report
    family: str = FAMILY_CELL  # result family (absent on legacy records)


@dataclass
class _Shard:
    """In-memory index of one shard directory."""

    records: Dict[str, _Record] = field(default_factory=dict)
    segments: List[Path] = field(default_factory=list)
    active_size: int = 0
    corrupt_lines: int = 0    # unparsable or keyless lines
    superseded: int = 0       # records overwritten by a later append
    checksum_failed: int = 0  # records whose CRC32 did not verify
    data_bytes: int = 0


@dataclass(frozen=True)
class StoreStats:
    """One snapshot of the store's physical and logical shape."""

    shards: int
    segments: int
    keys: int            # retrievable entries (healthy, current-version)
    stale: int           # latest-record-per-key entries at an old version
    corrupt: int         # latest-record-per-key entries missing a report
    corrupt_lines: int   # unparsable lines (torn appends, foreign bytes)
    superseded: int      # records shadowed by a later append
    checksum_failed: int  # records seen with a CRC32 mismatch
    data_bytes: int
    #: Retrievable entries per result family, as sorted (family, count)
    #: pairs — mixed campaigns report cell and lifetime progress
    #: separately (``campaign status --json``).
    families: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class CompactionStats:
    """Outcome of one :meth:`ShardedResultStore.compact` pass."""

    shards_rewritten: int
    segments_before: int
    segments_after: int
    records_dropped: int   # superseded + stale + corrupt (+ torn lines)
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)


class ShardedResultStore:
    """Fingerprint-sharded, append-only store of finished cell reports.

    Satisfies :class:`~repro.harness.store.ResultStore`, so it drops
    into :class:`~repro.harness.runner.GridRunner` (``cache=store``)
    as well as the campaign orchestrator.
    """

    def __init__(
        self,
        root: str | Path,
        prefix_len: Optional[int] = None,
        segment_max_bytes: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        """Open (or create) the store rooted at ``root``.

        ``prefix_len`` (shard = first N hex digits of the fingerprint)
        and ``segment_max_bytes`` (roll the active segment past this
        size) apply when *creating* a store; an existing store's
        manifest wins, and an explicit ``prefix_len`` conflicting with
        it is an error — honouring it would scatter keys across the
        wrong shards. ``fault_injector`` arms deterministic faults at
        the put/compaction boundaries (chaos testing only).
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._shards: Dict[str, _Shard] = {}
        self._faults = fault_injector or NO_FAULTS
        self._lock_fd: Optional[int] = None
        self._flock_depth = 0
        self._generation = self._read_generation_file()
        manifest = self._read_manifest()
        if manifest is None:
            self.prefix_len = (
                _DEFAULT_PREFIX_LEN if prefix_len is None else prefix_len
            )
            self.segment_max_bytes = (
                _DEFAULT_SEGMENT_MAX_BYTES
                if segment_max_bytes is None else segment_max_bytes
            )
            if not 1 <= self.prefix_len <= 8:
                raise ConfigError(
                    f"prefix_len must be in 1..8, got {self.prefix_len}"
                )
            if self.segment_max_bytes < 1:
                raise ConfigError("segment_max_bytes must be positive")
            self._write_manifest()
        else:
            if (
                prefix_len is not None
                and prefix_len != manifest["prefix_len"]
            ):
                raise ConfigError(
                    f"store {self.root} was created with prefix_len="
                    f"{manifest['prefix_len']}; cannot reopen with "
                    f"prefix_len={prefix_len}"
                )
            self.prefix_len = int(manifest["prefix_len"])
            self.segment_max_bytes = int(
                segment_max_bytes
                if segment_max_bytes is not None
                else manifest["segment_max_bytes"]
            )

    # --- manifest -----------------------------------------------------------

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        path = self.root / _MANIFEST
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return None
        except ValueError as exc:
            raise ConfigError(
                f"corrupt store manifest {path}: {exc}"
            ) from exc
        if data.get("layout") != STORE_LAYOUT_VERSION:
            raise ConfigError(
                f"store {self.root} uses layout {data.get('layout')!r}; "
                f"this library reads layout {STORE_LAYOUT_VERSION}"
            )
        return data

    def _write_manifest(self) -> None:
        path = self.root / _MANIFEST
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {
                    "layout": STORE_LAYOUT_VERSION,
                    "prefix_len": self.prefix_len,
                    "segment_max_bytes": self.segment_max_bytes,
                }
            ),
            encoding="utf-8",
        )
        os.replace(tmp, path)

    def set_fault_injector(self, injector: FaultInjector) -> None:
        """Arm (or disarm, with :data:`~repro.faults.NO_FAULTS`) the
        store's fault hooks after construction."""
        self._faults = injector

    # --- cross-process safety -----------------------------------------------
    #
    # Protocol: appends hold the per-store lock file in *shared* mode
    # (concurrent appenders proceed in parallel; O_APPEND keeps each
    # line atomic), rewrites (compact/gc) hold it *exclusive* and
    # rescan from disk first, so an append either completes before the
    # rewrite reads segments (merged) or starts after it finishes
    # (observes the bumped generation, rescans, appends to the live
    # segment). Either way no record is lost.

    @contextlib.contextmanager
    def _flock(self, exclusive: bool) -> Iterator[None]:
        """Hold the store lock file; callers already hold ``_lock``.

        Re-entrant within the process (an inner acquisition would
        otherwise *convert* the outer lock's mode on the shared fd).
        """
        if fcntl is None or self._flock_depth > 0:
            self._flock_depth += 1
            try:
                yield
            finally:
                self._flock_depth -= 1
            return
        if self._lock_fd is None:
            self._lock_fd = os.open(
                self.root / _LOCKFILE, os.O_RDWR | os.O_CREAT, 0o644
            )
        mode = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        try:
            fcntl.flock(self._lock_fd, mode | fcntl.LOCK_NB)
        except OSError:
            # Contended: another process holds a conflicting mode.
            metrics = store_metrics("sharded")
            metrics.lock_waits(
                "exclusive" if exclusive else "shared"
            ).inc()
            begin = time.perf_counter()
            fcntl.flock(self._lock_fd, mode)
            metrics.lock_wait_seconds.observe(
                time.perf_counter() - begin
            )
        self._flock_depth = 1
        try:
            yield
        finally:
            self._flock_depth = 0
            fcntl.flock(self._lock_fd, fcntl.LOCK_UN)

    def _read_generation_file(self) -> int:
        try:
            text = (self.root / _GENERATION).read_text(encoding="utf-8")
            return int(text.strip() or 0)
        except (OSError, ValueError):
            return 0

    def _bump_generation(self) -> None:
        """Advance the generation marker; caller holds the exclusive
        lock, so read-increment-write cannot race another bump."""
        self._generation = self._read_generation_file() + 1
        tmp = self.root / f"{_GENERATION}.tmp.{os.getpid()}"
        tmp.write_text(str(self._generation), encoding="utf-8")
        os.replace(tmp, self.root / _GENERATION)

    def _sync_generation(self) -> None:
        """Drop cached shard indexes if another process compacted."""
        generation = self._read_generation_file()
        if generation != self._generation:
            self._generation = generation
            if self._shards:
                self._shards.clear()
                store_metrics("sharded").generation_rescans.inc()

    def _rescan_shard(self, prefix: str) -> _Shard:
        """Force one shard's index to reload from disk."""
        if self._shards.pop(prefix, None) is not None:
            store_metrics("sharded").generation_rescans.inc()
        return self._shard(prefix)

    # --- sharding -----------------------------------------------------------

    def shard_of(self, key: str) -> str:
        """The shard directory name holding ``key``."""
        prefix = key[: self.prefix_len].lower()
        if len(prefix) < self.prefix_len or any(
            c not in "0123456789abcdef" for c in prefix
        ):
            raise ConfigError(
                f"key {key!r} is not a hex fingerprint; cannot shard it"
            )
        return prefix

    def _shard_dir(self, prefix: str) -> Path:
        return self.root / prefix

    def _segment_number(self, path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    def _shard_prefixes(self) -> List[str]:
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and len(entry.name) == self.prefix_len
        )

    # --- index construction -------------------------------------------------

    def _shard(self, prefix: str) -> _Shard:
        """The shard's in-memory index, loading it on first touch."""
        shard = self._shards.get(prefix)
        if shard is not None:
            return shard
        shard = _Shard()
        directory = self._shard_dir(prefix)
        segments = sorted(
            (
                path
                for path in directory.glob("seg-*.jsonl")
                if self._segment_number(path) >= 0
            ),
            key=self._segment_number,
        ) if directory.is_dir() else []
        shard.segments = segments
        for path in segments:
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            shard.data_bytes += len(blob)
            offset = 0
            while offset < len(blob):
                end = blob.find(b"\n", offset)
                if end < 0:
                    # Torn final line — a crash mid-append. Skipped on
                    # load, reclaimed at compaction; the next append
                    # starts a fresh segment so it cannot concatenate
                    # onto the torn bytes.
                    shard.corrupt_lines += 1
                    store_metrics("sharded").bad_entry("torn").inc()
                    break
                self._index_line(
                    shard, path, blob[offset:end], offset, end + 1 - offset
                )
                offset = end + 1
        if segments:
            try:
                shard.active_size = segments[-1].stat().st_size
            except OSError:
                # Segment vanished mid-scan (concurrent compaction);
                # the next append rolls a fresh segment.
                shard.active_size = 0
        self._shards[prefix] = shard
        return shard

    def _index_line(
        self, shard: _Shard, path: Path, line: bytes, offset: int, length: int
    ) -> None:
        try:
            data = json.loads(line)
        except ValueError:
            shard.corrupt_lines += 1
            store_metrics("sharded").bad_entry("torn").inc()
            return
        if not isinstance(data, dict) or not isinstance(
            data.get("key"), str
        ):
            shard.corrupt_lines += 1
            store_metrics("sharded").bad_entry("torn").inc()
            return
        key = data["key"]
        if key in shard.records:
            shard.superseded += 1
        meta = data.get("meta")
        stale = data.get("version") != CACHE_VERSION
        corrupt = "report" not in data
        if corrupt and not stale:
            store_metrics("sharded").bad_entry("corrupt").inc()
        elif stale:
            store_metrics("sharded").bad_entry("stale").inc()
        crc = data.get("crc")
        if not corrupt and crc is not None:
            if crc != record_checksum(key, data["report"]):
                # Bit rot, or a partial overwrite that still parses as
                # JSON — unusable, and distinct from a missing report.
                corrupt = True
                shard.checksum_failed += 1
                store_metrics("sharded").bad_entry("checksum").inc()
        shard.records[key] = _Record(
            path=path,
            offset=offset,
            length=length,
            ts=float(data.get("ts") or 0.0),
            meta=dict(meta) if isinstance(meta, dict) else {},
            stale=stale,
            corrupt=corrupt,
            family=str(data.get("family", FAMILY_CELL)),
        )

    def _record(self, key: str) -> Optional[_Record]:
        return self._shard(self.shard_of(key)).records.get(key)

    def _read_record(self, record: _Record) -> Optional[Dict[str, Any]]:
        try:
            with record.path.open("rb") as handle:
                handle.seek(record.offset)
                return json.loads(handle.read(record.length))
        except (OSError, ValueError):
            return None

    # --- ResultStore contract -----------------------------------------------

    def __contains__(self, key: str) -> bool:
        """Membership matches retrievability, as the contract demands."""
        with self._lock:
            self._sync_generation()
            record = self._record(key)
            return (
                record is not None
                and not record.stale
                and not record.corrupt
            )

    def get(self, key: str) -> Optional[Any]:
        """Load the newest record for ``key``; None on any miss.

        Deserialization dispatches on the record's ``family`` field
        (absent on legacy records, which read as grid cells), so one
        store holds grid-cell reports and lifetime curves side by side.
        """
        metrics = store_metrics("sharded")
        with self._lock:
            self._sync_generation()
            record = self._record(key)
            if record is None or record.stale or record.corrupt:
                metrics.get_outcome(hit=False).inc()
                return None
            data = self._read_record(record)
            if data is None or data.get("key") != key:
                # The indexed segment was replaced under us by another
                # process's compaction (generation not yet observed, or
                # offsets shifted). Reload this shard from disk once.
                record = self._rescan_shard(
                    self.shard_of(key)
                ).records.get(key)
                if record is None or record.stale or record.corrupt:
                    metrics.get_outcome(hit=False).inc()
                    return None
                data = self._read_record(record)
        if (
            data is None
            or data.get("key") != key
            or data.get("version") != CACHE_VERSION
        ):
            metrics.get_outcome(hit=False).inc()
            return None
        try:
            report = result_from_json_dict(
                data.get("family", FAMILY_CELL), data["report"]
            )
        except (ValueError, KeyError, TypeError, ConfigError):
            metrics.get_outcome(hit=False).inc()
            return None
        metrics.get_outcome(hit=True).inc()
        return report

    def put(
        self,
        key: str,
        report: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one finished result; one atomic ``O_APPEND`` write."""
        now = time.time()
        family = result_family(report)
        report_dict = result_to_json_dict(report)
        record: Dict[str, Any] = {
            "version": CACHE_VERSION,
            "key": key,
            "ts": now,
            "meta": meta or {},
            "report": report_dict,
            "crc": record_checksum(key, report_dict),
        }
        # Legacy cell records have no family field; writing cells the
        # same way keeps record bytes identical across versions (the
        # CRC covers key + report either way).
        if family != FAMILY_CELL:
            record["family"] = family
        line = (
            json.dumps(record, separators=(",", ":")).encode("utf-8")
            + b"\n"
        )
        metrics = store_metrics("sharded")
        with self._lock:
            # Fault hooks (no-op branch by default): a crash-flavoured
            # fault raises InjectedFault before anything is durable; a
            # corruption fault rewrites the line we are about to append.
            ordinal = self._faults.before_put(key)
            payload = self._faults.mutate_line(ordinal, line)
            with self._flock(exclusive=False):
                self._sync_generation()
                prefix = self.shard_of(key)
                shard = self._shard(prefix)
                path = self._active_segment(prefix, shard, len(payload))
                fd = os.open(
                    path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
                )
                try:
                    os.write(fd, payload)
                    # Under multi-process appends our cached size may
                    # lag; the fd's position after an O_APPEND write is
                    # the authoritative end of file.
                    end = os.lseek(fd, 0, os.SEEK_CUR)
                finally:
                    os.close(fd)
                offset = end - len(payload)
                shard.active_size = end
                shard.data_bytes += len(payload)
                metrics.puts.inc()
                metrics.bytes_written.inc(len(payload))
                if payload is not line:
                    # The line on disk is deliberately damaged; rescan
                    # so the index reflects what a fresh load would see.
                    self._shards.pop(prefix, None)
                else:
                    if key in shard.records:
                        shard.superseded += 1
                        metrics.superseded.inc()
                    shard.records[key] = _Record(
                        path=path,
                        offset=offset,
                        length=len(payload),
                        ts=now,
                        meta=dict(meta or {}),
                        stale=False,
                        corrupt=False,
                        family=family,
                    )
            self._faults.after_put(ordinal, key)

    def _active_segment(
        self, prefix: str, shard: _Shard, incoming: int
    ) -> Path:
        """The segment the next append lands in, rolling when full.

        Also rolls when the current tail is torn (no trailing newline),
        so a crash-truncated line never gets foreign bytes appended to
        it.
        """
        if shard.segments:
            tail = shard.segments[-1]
            torn = False
            if shard.active_size:
                try:
                    with tail.open("rb") as handle:
                        handle.seek(shard.active_size - 1)
                        torn = handle.read(1) != b"\n"
                except OSError:
                    torn = True
            if not torn and (
                shard.active_size == 0
                or shard.active_size + incoming <= self.segment_max_bytes
            ):
                return tail
            number = self._segment_number(tail) + 1
        else:
            self._shard_dir(prefix).mkdir(parents=True, exist_ok=True)
            number = 0
        path = self._shard_dir(prefix) / f"seg-{number:06d}.jsonl"
        shard.segments.append(path)
        shard.active_size = 0
        return path

    # --- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        """Retrievable entries only, like ``ResultCache.__len__``."""
        with self._lock:
            return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Every retrievable key (healthy, current-version)."""
        with self._lock:
            self._sync_generation()
            for prefix in self._shard_prefixes():
                for key, record in self._shard(prefix).records.items():
                    if not record.stale and not record.corrupt:
                        yield key

    def entries(self) -> List[CacheEntry]:
        """One :class:`CacheEntry` per key (its newest record), oldest
        first — the same shape ``ResultCache.entries`` returns, so
        ``cache ls``-style tooling and the gc policy code work on
        either backend. ``path`` points at the record's segment file.
        """
        with self._lock:
            self._sync_generation()
            found = [
                CacheEntry(
                    key=key,
                    path=record.path,
                    mtime=record.ts,
                    size=record.length,
                    meta=record.meta,
                    corrupt=record.corrupt,
                    stale=record.stale,
                )
                for prefix in self._shard_prefixes()
                for key, record in self._shard(prefix).records.items()
            ]
        found.sort(key=lambda entry: (entry.mtime, entry.key))
        return found

    def stats(self) -> StoreStats:
        """Physical/logical snapshot for ``campaign status``."""
        with self._lock:
            self._sync_generation()
            prefixes = self._shard_prefixes()
            shards = [self._shard(prefix) for prefix in prefixes]
            data_bytes = sum(shard.data_bytes for shard in shards)
            store_metrics("sharded").data_bytes.set(data_bytes)
            family_counts: Dict[str, int] = {}
            for shard in shards:
                for record in shard.records.values():
                    if not record.stale and not record.corrupt:
                        family_counts[record.family] = (
                            family_counts.get(record.family, 0) + 1
                        )
            return StoreStats(
                shards=len(prefixes),
                segments=sum(len(shard.segments) for shard in shards),
                keys=sum(
                    1
                    for shard in shards
                    for record in shard.records.values()
                    if not record.stale and not record.corrupt
                ),
                stale=sum(
                    1
                    for shard in shards
                    for record in shard.records.values()
                    if record.stale
                ),
                corrupt=sum(
                    1
                    for shard in shards
                    for record in shard.records.values()
                    if record.corrupt and not record.stale
                ),
                corrupt_lines=sum(
                    shard.corrupt_lines for shard in shards
                ),
                superseded=sum(shard.superseded for shard in shards),
                checksum_failed=sum(
                    shard.checksum_failed for shard in shards
                ),
                data_bytes=data_bytes,
                families=tuple(sorted(family_counts.items())),
            )

    # --- garbage collection and compaction ----------------------------------

    def gc(
        self,
        max_entries: Optional[int] = None,
        older_than_s: Optional[float] = None,
        remove_corrupt: bool = True,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> GcResult:
        """Prune entries with ``ResultCache.gc`` semantics.

        Same policy knobs, same :class:`GcResult` — and because the
        store is append-only, every non-dry run *rewrites* the shards
        it touches (dropping superseded records and torn lines along
        the way), so gc doubles as targeted compaction.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigError("max_entries must be >= 0")
        if older_than_s is not None and older_than_s < 0:
            raise ConfigError("older_than_s must be >= 0")
        now = time.time() if now is None else now
        with self._lock, self._flock(exclusive=True):
            # Exclusive: no other process can append or rewrite while
            # we decide what survives. Rescan from disk so appends made
            # by other processes since our last load are in the policy.
            self._generation = self._read_generation_file()
            self._shards.clear()
            doomed: List[CacheEntry] = []
            survivors: List[CacheEntry] = []
            for entry in self.entries():
                if remove_corrupt and (entry.corrupt or entry.stale):
                    doomed.append(entry)
                elif (
                    older_than_s is not None
                    and entry.age_seconds(now) > older_than_s
                ):
                    doomed.append(entry)
                else:
                    survivors.append(entry)
            if max_entries is not None and len(survivors) > max_entries:
                # Healthy entries rank above corrupt/stale survivors in
                # the keep-newest-N pass — the same ranking fix the
                # one-file-per-cell cache applies.
                ranked = sorted(
                    survivors,
                    key=lambda entry: (
                        not (entry.corrupt or entry.stale),
                        entry.mtime,
                        entry.key,
                    ),
                )
                extra = len(survivors) - max_entries
                doomed.extend(ranked[:extra])
                survivors = sorted(
                    ranked[extra:],
                    key=lambda entry: (entry.mtime, entry.key),
                )
            if not dry_run and doomed:
                doomed_keys = {entry.key for entry in doomed}
                for prefix in self._shard_prefixes():
                    shard = self._shard(prefix)
                    if any(key in doomed_keys for key in shard.records):
                        self._rewrite(
                            prefix,
                            keep={
                                key
                                for key in shard.records
                                if key not in doomed_keys
                            },
                        )
            tmp_removed = self._sweep_tmp(now, dry_run)
            if not dry_run and doomed:
                self._bump_generation()
                store_metrics("sharded").gc_removed.inc(len(doomed))
        return GcResult(
            removed=tuple(doomed),
            kept=len(survivors),
            tmp_removed=tmp_removed,
        )

    def compact(self, dry_run: bool = False) -> CompactionStats:
        """Merge every shard to one segment of live records.

        Drops superseded records, torn lines, and corrupt/stale
        entries; keeps the newest healthy record per key. Crash-safe:
        the merged segment is fully written (tmp + rename) and ordered
        after the old ones before any old segment is unlinked.
        """
        rewritten = 0
        with self._lock, self._flock(exclusive=True):
            # Exclusive + rescan, as in gc(): merge what is actually on
            # disk, including other processes' appends.
            self._generation = self._read_generation_file()
            self._shards.clear()
            before = self.stats()
            if not dry_run:
                for prefix in self._shard_prefixes():
                    shard = self._shard(prefix)
                    needs = (
                        len(shard.segments) > 1
                        or shard.superseded
                        or shard.corrupt_lines
                        or any(
                            record.stale or record.corrupt
                            for record in shard.records.values()
                        )
                    )
                    if needs:
                        self._rewrite(
                            prefix,
                            keep={
                                key
                                for key, record in shard.records.items()
                                if not record.stale and not record.corrupt
                            },
                        )
                        rewritten += 1
                self._sweep_tmp(time.time(), dry_run=False)
                if rewritten:
                    self._bump_generation()
            after = self.stats() if not dry_run else before
        dropped = (
            before.superseded
            + before.corrupt_lines
            + before.stale
            + before.corrupt
        )
        if not dry_run:
            metrics = store_metrics("sharded")
            metrics.compactions.inc()
            metrics.reclaimed_bytes.inc(
                max(0, before.data_bytes - after.data_bytes)
            )
        return CompactionStats(
            shards_rewritten=rewritten,
            segments_before=before.segments,
            segments_after=after.segments,
            records_dropped=dropped,
            bytes_before=before.data_bytes,
            bytes_after=after.data_bytes,
        )

    def _rewrite(self, prefix: str, keep: set) -> None:
        """Rewrite one shard to a single fresh segment of ``keep`` keys.

        The new segment is numbered after every existing one, so its
        records win last-wins resolution the moment it is renamed into
        place; old segments are unlinked only afterwards — a crash in
        between leaves benign duplicates, never data loss.
        """
        shard = self._shard(prefix)
        directory = self._shard_dir(prefix)
        old_segments = list(shard.segments)
        number = (
            self._segment_number(old_segments[-1]) + 1 if old_segments else 0
        )
        kept: List[Tuple[str, _Record, bytes]] = []
        for key in keep:
            record = shard.records.get(key)
            if record is None:
                continue
            with record.path.open("rb") as handle:
                handle.seek(record.offset)
                line = handle.read(record.length)
            if line.endswith(b"\n"):
                kept.append((key, record, line))
        kept.sort(key=lambda item: (item[1].ts, item[0]))
        fresh = _Shard()
        if kept:
            path = directory / f"seg-{number:06d}.jsonl"
            tmp = path.with_suffix(f".jsonl.tmp.{os.getpid()}")
            offset = 0
            with tmp.open("wb") as handle:
                for key, record, line in kept:
                    handle.write(line)
                    fresh.records[key] = record._replace(
                        path=path, offset=offset
                    )
                    offset += len(line)
            os.replace(tmp, path)
            fresh.segments = [path]
            fresh.active_size = offset
            fresh.data_bytes = offset
        # Crash window under test: the merged segment is durable and
        # outnumbers the old ones, which still exist. A fault plan may
        # interrupt here; recovery reads benign duplicates, last wins.
        self._faults.on_compact("before-unlink")
        for old in old_segments:
            try:
                old.unlink()
            except FileNotFoundError:
                pass
        self._shards[prefix] = fresh

    def _sweep_tmp(self, now: float, dry_run: bool) -> int:
        """Sweep compaction tmp files orphaned by a crash (>60 s old)."""
        swept = 0
        for path in self.root.glob("*/*.tmp.*"):
            try:
                if now - path.stat().st_mtime > 60.0:
                    if not dry_run:
                        path.unlink()
                    swept += 1
            except OSError:
                pass
        return swept

    def __repr__(self) -> str:
        return (
            f"ShardedResultStore(root={str(self.root)!r}, "
            f"prefix_len={self.prefix_len})"
        )
