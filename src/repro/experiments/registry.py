"""Plugin registries: the one place scheme keys and workload refs resolve.

``SCHEMES`` and ``WORKLOADS`` are the process-wide registries behind
every string key in the library: ``make_scheme``/``build_ssd`` look
scheme keys up here, ``profile_by_abbr`` and the harness resolve
workload abbreviations here, and the ``python -m repro`` CLI derives
its ``--scheme``/``--workload`` vocabularies from them. New schemes and
workloads plug in without editing core files::

    from repro.experiments import SCHEMES, WORKLOADS

    @SCHEMES.register("my_scheme")
    def _build(profile, *, mispredict_rate=0.0, rber_requirement=None):
        return MyScheme(profile)

    WORKLOADS.register("mine", WorkloadProfile("custom", "t", "mine", ...))

Built-in entries self-register when their home module is imported;
each registry lazily imports that module on first lookup (``populate``
below), so ``SCHEMES.create("aero", ...)`` works even when
:mod:`repro.schemes` has not been imported yet. Unknown keys raise
:class:`~repro.errors.ConfigError` listing every valid key.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Any, Dict, Iterator, Sequence, Tuple

from repro.errors import ConfigError

_MISSING = object()


class Registry:
    """Insertion-ordered mapping of string keys to plugin entries.

    ``kind`` names what the registry holds ("scheme", "workload") and
    is used in error messages; ``populate`` lists modules whose import
    registers the built-in entries, imported lazily on first access.
    """

    def __init__(self, kind: str, populate: Sequence[str] = ()):
        self.kind = kind
        self._populate_modules = tuple(populate)
        self._entries: Dict[str, Any] = {}
        self._populated = not self._populate_modules

    # --- population ---------------------------------------------------------

    def _ensure_populated(self) -> None:
        if self._populated:
            return
        # Flip the flag first: the imported module calls register(),
        # which must not recurse back into population. On failure the
        # flag resets so the next lookup re-raises the real import
        # error instead of silently serving an empty registry.
        self._populated = True
        try:
            for module in self._populate_modules:
                importlib.import_module(module)
        except BaseException:
            self._populated = False
            raise

    # --- registration -------------------------------------------------------

    def register(
        self, key: str, entry: Any = _MISSING, *, replace: bool = False
    ) -> Any:
        """Register ``entry`` under ``key``; usable as a decorator.

        ``@registry.register("key")`` registers the decorated object
        and returns it unchanged; ``registry.register("key", obj)``
        registers directly. Re-registering an existing key raises
        :class:`ConfigError` unless ``replace=True``.
        """
        if not key or not isinstance(key, str):
            raise ConfigError(f"{self.kind} key must be a non-empty string")

        def _add(obj: Any) -> Any:
            if not replace and key in self._entries:
                raise ConfigError(
                    f"{self.kind} {key!r} is already registered; "
                    f"pass replace=True to override"
                )
            self._entries[key] = obj
            return obj

        if entry is _MISSING:
            return _add
        return _add(entry)

    def unregister(self, key: str) -> None:
        """Remove ``key`` (no-op if absent) — mainly for tests/plugins."""
        self._entries.pop(key, None)

    # --- lookup -------------------------------------------------------------

    def get(self, key: str) -> Any:
        """Return the entry for ``key``; rich ConfigError when unknown."""
        self._ensure_populated()
        try:
            return self._entries[key]
        except KeyError:
            known = ", ".join(self.keys())
            raise ConfigError(
                f"unknown {self.kind} {key!r}; known: {known}"
            ) from None

    def keys(self) -> Tuple[str, ...]:
        """Registered keys in registration order."""
        self._ensure_populated()
        return tuple(self._entries)

    def __contains__(self, key: str) -> bool:
        self._ensure_populated()
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.kind!r}, keys={list(self._entries)})"


class SchemeRegistry(Registry):
    """Registry of erase-scheme factories.

    Entries are callables ``factory(profile, **params) -> EraseScheme``.
    Every factory must accept (and may ignore) the two cross-cutting
    sensitivity knobs ``mispredict_rate`` and ``rber_requirement``,
    mirroring the historical ``make_scheme`` contract; additional
    keyword params are scheme-specific.
    """

    def create(self, key: str, profile: Any, **params: Any) -> Any:
        """Instantiate the scheme registered under ``key``.

        A params/signature mismatch raises :class:`ConfigError` naming
        the offending params; errors raised *inside* the factory body
        propagate unchanged (they are factory bugs, not bad params).
        """
        factory = self.get(key)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            signature = None  # unsignaturable callable; skip the pre-check
        if signature is not None:
            try:
                signature.bind(profile, **params)
            except TypeError as exc:
                raise ConfigError(
                    f"scheme {key!r} rejected params "
                    f"{sorted(params)}: {exc}"
                ) from exc
        return factory(profile, **params)


class WorkloadRegistry(Registry):
    """Registry of workload profiles keyed by figure abbreviation.

    Entries are either ``WorkloadProfile`` objects or zero-argument
    callables returning one (the decorator form); :meth:`resolve`
    normalizes both to a profile.
    """

    def add(self, profile: Any, *, replace: bool = False) -> Any:
        """Register a profile under its own ``abbr``."""
        return self.register(profile.abbr, profile, replace=replace)

    def resolve(self, key: str) -> Any:
        """Return the profile for ``key``, invoking factory entries."""
        entry = self.get(key)
        if callable(entry):
            entry = entry()
        return entry


#: Process-wide erase-scheme registry (built-ins live in repro.schemes).
SCHEMES = SchemeRegistry("scheme", populate=("repro.schemes",))

#: Process-wide workload registry (built-ins: the 11 Table 3 profiles).
WORKLOADS = WorkloadRegistry(
    "workload", populate=("repro.workloads.profiles",)
)


def scheme_keys() -> Tuple[str, ...]:
    """All registered scheme keys (built-ins plus plugins)."""
    return SCHEMES.keys()


def workload_keys() -> Tuple[str, ...]:
    """All registered workload abbreviations (built-ins plus plugins)."""
    return WORKLOADS.keys()
