"""``python -m repro`` — the command-line face of the experiment API.

Five subcommands cover the paper's evaluation surface:

* ``run``      — execute one experiment (flags or ``--spec-file`` JSON);
* ``grid``     — a (schemes x PECs x workloads) campaign with the
  normalized read-tail table the figures use;
* ``compare``  — the Figure 13 lifetime comparison across schemes
  (flags or a ``--spec`` LifetimeSpec file; ``--store``/``--cache-dir``
  persist curves for crash-resume, sharing cache entries with
  lifetime-family campaigns);
* ``cache``    — inspect (``ls``) and prune (``gc``) the result cache;
* ``campaign`` — orchestrated large campaigns against the sharded
  result store (``run`` with live progress/ETA and crash-resume,
  ``status``, ``compact``);
* ``metrics``  — dump/validate the telemetry registry (``dump`` reads
  the in-process registry, a ``--metrics-port`` endpoint via
  ``--url``, or a ``--metrics-json`` snapshot file).

Everything resolves through the plugin registries, honours
``--workers`` (process fan-out) and ``--cache-dir`` / ``--store``
(persistent result backends, shared with the Python API), and exits 2
on configuration errors with the registry's rich unknown-key messages.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.config import SsdSpec
from repro.errors import ConfigError, ReproError
from repro.experiments.registry import SCHEMES, WORKLOADS
from repro.experiments.runner import run_experiments
from repro.experiments.spec import ExperimentSpec, load_spec_file
from repro.harness.cache import ResultCache
from repro.harness.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.kernels import ENGINES

_SSD_PRESETS = {
    "small": SsdSpec.small_test,
    "bench": SsdSpec.bench,
    "paper": lambda seed=0xAE20: SsdSpec.paper_table2(),
}

_EXECUTORS = {"process": ProcessExecutor, "thread": ThreadExecutor}


def _make_executor(workers: int, kind: str = "process"):
    if workers <= 1:
        return SerialExecutor()
    return _EXECUTORS[kind](workers)


def _parse_age(text: str) -> float:
    """Parse ``90``, ``90s``, ``15m``, ``2h``, or ``7d`` into seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    text = text.strip().lower()
    suffix = text[-1:] if text[-1:] in units else ""
    number = text[: len(text) - len(suffix)] if suffix else text
    try:
        value = float(number)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r}; use e.g. 90, 90s, 15m, 2h, or 7d"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("age must be >= 0")
    return value * units.get(suffix, 1.0)


def _format_age(seconds: float) -> str:
    for unit, span in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= span:
            return f"{seconds / span:.1f}{unit}"
    return f"{seconds:.0f}s"


def _parse_param(text: str) -> tuple:
    """Parse a ``--param key=value`` pair; values decode as JSON."""
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"invalid param {text!r}; expected key=value"
        )
    try:
        return key, json.loads(value)
    except ValueError:
        return key, value  # bare strings stay strings


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> List[int]:
    try:
        return [int(item) for item in _csv(text)]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid integer list {text!r}"
        ) from None


def _add_execution_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="workers for cell fan-out (default: serial)",
    )
    parser.add_argument(
        "--executor", choices=sorted(_EXECUTORS), default="process",
        help="worker kind when --workers > 1 (default: process)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persist finished cells here and reuse them on re-run",
    )
    parser.add_argument(
        "--store", default=None,
        help="sharded campaign store directory to persist/reuse cells "
             "instead of --cache-dir (interoperates with `campaign "
             "run --store`)",
    )


def _runner_from_args(args: argparse.Namespace):
    """A pre-configured GridRunner when ``--store`` selects the
    sharded backend; None leaves run_experiments on --cache-dir."""
    if args.store is None:
        return None
    if args.cache_dir is not None:
        raise ConfigError("pass either --store or --cache-dir, not both")
    from repro.campaign import ShardedResultStore
    from repro.harness.runner import GridRunner

    return GridRunner(
        executor=_make_executor(args.workers, args.executor),
        cache=ShardedResultStore(args.store),
    )


def _spec_from_flags(args: argparse.Namespace) -> ExperimentSpec:
    params: Dict[str, Any] = dict(args.param or [])
    if args.mispredict_rate:
        params.setdefault("mispredict_rate", args.mispredict_rate)
    if args.rber_requirement is not None:
        params.setdefault("rber_requirement", args.rber_requirement)
    ssd = None
    if args.ssd != "default":
        ssd = _SSD_PRESETS[args.ssd](seed=args.seed)
    return ExperimentSpec(
        scheme=args.scheme,
        scheme_params=params,
        pec=args.pec,
        workload=args.workload,
        requests=args.requests,
        seed=args.seed,
        erase_suspension=not args.no_suspension,
        ssd=ssd,
        engine=args.engine,
    ).validate()


# --- run ---------------------------------------------------------------------


#: Experiment-describing `run` flags and their defaults; mutually
#: exclusive with --spec-file (a spec file fully describes the run).
_RUN_FLAG_DEFAULTS = {
    "scheme": "aero",
    "pec": 2500,
    "workload": "ali.A",
    "requests": 1200,
    "seed": 0xAE20,
    "no_suspension": False,
    "mispredict_rate": 0.0,
    "rber_requirement": None,
    "param": None,
    "ssd": "default",
    "engine": "auto",
}


def _cmd_run(args: argparse.Namespace) -> int:
    if args.spec_file:
        overridden = [
            f"--{name.replace('_', '-')}"
            for name, default in _RUN_FLAG_DEFAULTS.items()
            if getattr(args, name) != default
        ]
        if overridden:
            raise ConfigError(
                "--spec-file fully describes the experiment; drop the "
                f"conflicting flags: {', '.join(overridden)}"
            )
        specs = load_spec_file(args.spec_file)
        for spec in specs:
            spec.validate()
    else:
        specs = [_spec_from_flags(args)]
    result = run_experiments(
        specs,
        executor=_make_executor(args.workers, args.executor),
        cache_dir=args.cache_dir,
        runner=_runner_from_args(args),
    )
    if args.json:
        payload = [
            {
                "spec": spec.to_dict(),
                "fingerprint": job.fingerprint,
                "report": report.to_json_dict(),
            }
            for spec, job, report in zip(
                result.specs, result.jobs, result.reports
            )
        ]
        print(json.dumps(payload if len(payload) > 1 else payload[0], indent=2))
        return 0
    rows = []
    for spec, report in zip(result.specs, result.reports):
        rows.append(
            [
                spec.scheme,
                spec.pec,
                spec.workload,
                spec.requests,
                f"{report.reads.mean_us:.0f} us",
                f"{report.reads.percentile(99.0) / 1000:.2f} ms",
                f"{report.iops:,.0f}",
                report.erases,
            ]
        )
    print(
        format_table(
            ["scheme", "PEC", "workload", "requests",
             "read mean", "p99 read", "IOPS", "erases"],
            rows,
            title="Experiment results",
        )
    )
    print(
        f"  cells executed: {result.stats.executed}, "
        f"served from cache: {result.stats.cached}"
    )
    return 0


# --- grid --------------------------------------------------------------------


def _cmd_grid(args: argparse.Namespace) -> int:
    if not args.schemes or not args.pecs or not args.workloads:
        raise ConfigError("grid needs at least one scheme, pec, and workload")
    for scheme in args.schemes:
        SCHEMES.get(scheme)
    for workload in args.workloads:
        WORKLOADS.resolve(workload)
    specs = [
        ExperimentSpec(
            scheme=scheme,
            pec=pec,
            workload=workload,
            requests=args.requests,
            seed=args.seed,
            erase_suspension=not args.no_suspension,
            engine=args.engine,
        )
        for pec in args.pecs
        for workload in args.workloads
        for scheme in args.schemes
    ]
    result = run_experiments(
        specs,
        executor=_make_executor(args.workers, args.executor),
        cache_dir=args.cache_dir,
        runner=_runner_from_args(args),
    )
    grid = result.grid
    baseline = args.schemes[0]
    for pec in args.pecs:
        rows = []
        table = grid.normalized_read_tail(args.percentile, pec, baseline)
        for workload in args.workloads:
            rows.append(
                [workload]
                + [f"{table[workload][scheme]:.3f}" for scheme in args.schemes]
            )
        geomean = grid.geomean_normalized(
            lambda r: r.read_tail(args.percentile), pec, baseline
        )
        rows.append(
            ["geomean"] + [f"{geomean[scheme]:.3f}" for scheme in args.schemes]
        )
        print(
            format_table(
                ["workload"] + list(args.schemes),
                rows,
                title=(
                    f"p{args.percentile:g} read latency at {pec} PEC "
                    "(normalized to first scheme column's baseline)"
                ),
            )
        )
        print()
    print(
        f"  cells executed: {result.stats.executed}, "
        f"served from cache: {result.stats.cached}"
    )
    return 0


# --- compare -----------------------------------------------------------------


def _default_compare_executor(schemes, profile, engine: str) -> str:
    """Pick the fan-out kind that actually parallelizes the sweep.

    Threads only pay off when every worker releases the GIL — i.e. when
    every compared scheme runs on its batch kernel. Any scheme falling
    back to the pure-Python object path serializes a thread pool, so
    those sweeps default to processes.
    """
    if engine == "object":
        return "process"
    if engine == "kernel":
        return "thread"
    from repro.kernels import kernel_for_scheme

    for key in schemes:
        if kernel_for_scheme(SCHEMES.create(key, profile)) is None:
            return "process"
    return "thread"


class _FailingStore:
    """Store wrapper that crashes after N successful puts.

    Behind ``compare --fail-after``, the crash-injection half of the
    CI resume smoke: the inner ``put`` completes *before* the failure,
    so the Nth curve is durable and a rerun resumes past it.
    """

    def __init__(self, inner: Any, fail_after: int):
        if fail_after < 1:
            raise ConfigError("--fail-after must be >= 1")
        self._inner = inner
        self._remaining = fail_after

    def get(self, key: str) -> Any:
        return self._inner.get(key)

    def put(self, key: str, report: Any, meta: Optional[dict] = None) -> None:
        self._inner.put(key, report, meta=meta)
        self._remaining -= 1
        if self._remaining <= 0:
            raise RuntimeError(
                "injected failure after persisting a curve (--fail-after)"
            )


def _compare_spec_from_args(args: argparse.Namespace):
    from repro.lifetime import LifetimeSpec, load_lifetime_file

    if args.spec_file:
        flag_defaults = {
            "profile": "3D-TLC-48L",
            "schemes": ["baseline", "iispe", "dpes", "aero_cons", "aero"],
            "blocks": 48, "step": 50, "seed": 0xAE20, "max_pec": 12000,
            "requirement": None, "mispredict_rate": 0.0, "engine": "auto",
        }
        overridden = [
            f"--{name.replace('_', '-')}"
            for name, default in flag_defaults.items()
            if getattr(args, name) != default
        ]
        if overridden:
            raise ConfigError(
                "--spec fully describes the comparison; drop the "
                f"conflicting flags: {', '.join(overridden)}"
            )
        return load_lifetime_file(args.spec_file).validate()
    if not args.schemes:
        raise ConfigError("compare needs at least one scheme")
    return LifetimeSpec(
        schemes=tuple(args.schemes),
        profile=args.profile,
        block_count=args.blocks,
        step=args.step,
        seed=args.seed,
        max_pec=args.max_pec,
        requirement=args.requirement,
        mispredict_rate=args.mispredict_rate,
        engine=args.engine,
    ).validate()


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.harness.runner import GridRunner
    from repro.nand.chip_types import profile_by_name

    if args.store and args.cache_dir:
        raise ConfigError("pass --store or --cache-dir, not both")
    spec = _compare_spec_from_args(args)
    profile = profile_by_name(spec.profile)
    kind = args.executor or _default_compare_executor(
        spec.schemes, profile, spec.engine
    )
    executor = (
        _EXECUTORS[kind](args.workers) if args.workers > 1 else None
    )
    backend: Optional[Any] = None
    if args.store:
        from repro.campaign import ShardedResultStore

        backend = ShardedResultStore(args.store)
    elif args.cache_dir:
        backend = ResultCache(Path(args.cache_dir))
    if args.fail_after is not None:
        if backend is None:
            raise ConfigError("--fail-after needs --store or --cache-dir")
        backend = _FailingStore(backend, args.fail_after)
    runner = GridRunner(executor=executor, cache=backend)
    comparison = spec.comparison(runner.execute_jobs(spec.jobs()))
    baseline_key = spec.schemes[0]
    base = comparison.curves[baseline_key].lifetime_pec
    rows = []
    for key in spec.schemes:
        curve = comparison.curves[key]
        lifetime = curve.lifetime_pec
        if key == baseline_key or not base:
            delta = "--"
        elif lifetime is None:
            delta = "never crossed"
        else:
            delta = f"{lifetime / base - 1:+.1%}"
        if lifetime is None:
            lifetime = f">{spec.max_pec}"
        rows.append([key, lifetime, delta])
    print(
        format_table(
            ["scheme", "lifetime (PEC)", f"vs {baseline_key}"],
            rows,
            title=f"Lifetime comparison on {profile.name}",
        )
    )
    if backend is not None:
        print(
            f"curves executed: {runner.stats.executed}, "
            f"served from cache: {runner.stats.cached}"
        )
    return 0


# --- campaign ----------------------------------------------------------------


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.campaign import CampaignSpec, load_campaign_file

    if args.spec_file:
        flag_defaults = {
            "schemes": None, "pecs": None, "workloads": None,
            "requests": None, "seed": None, "no_suspension": False,
            "engine": None,
        }
        overridden = [
            f"--{name.replace('_', '-')}"
            for name, default in flag_defaults.items()
            if getattr(args, name) != default
        ]
        if overridden:
            raise ConfigError(
                "--spec-file fully describes the campaign; drop the "
                f"conflicting flags: {', '.join(overridden)}"
            )
        return load_campaign_file(args.spec_file).validate()
    return CampaignSpec(
        schemes=tuple(
            args.schemes
            or ["baseline", "iispe", "dpes", "aero_cons", "aero"]
        ),
        pec_points=tuple(args.pecs or [500, 2500, 4500]),
        workloads=tuple(args.workloads or ["ali.A", "hm", "usr"]),
        requests=args.requests if args.requests is not None else 1200,
        seed=args.seed if args.seed is not None else 0xAE20,
        erase_suspension=not args.no_suspension,
        engine=args.engine or "auto",
    ).validate()


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.campaign import CampaignOrchestrator, ShardedResultStore

    spec = _campaign_spec_from_args(args)

    def show(progress) -> None:
        print(f"[campaign] {progress.format()}", flush=True)

    on_cell = None
    if args.fail_after is not None:
        # Crash injection for resume testing (the CI kill+resume smoke
        # step): abort after N executed cells; everything persisted so
        # far resumes on the next run.
        def on_cell(index, job, report, _seen=[0]):  # noqa: B006
            _seen[0] += 1
            if _seen[0] >= args.fail_after:
                raise RuntimeError(
                    f"injected failure after {args.fail_after} cells"
                )

    fault_plan = None
    store = args.store
    if args.fault_plan:
        from repro.faults import FaultInjector, load_fault_file

        fault_plan = load_fault_file(args.fault_plan)
        # One injector drives both hook sites: the store's put/compact
        # hooks and the supervisor's cell faults share put ordinals.
        store = ShardedResultStore(
            args.store, fault_injector=FaultInjector(fault_plan)
        )

    # Graceful shutdown: the first SIGINT/SIGTERM stops admitting
    # cells and drains in-flight ones; a second signal gives up
    # immediately. Installed only on the main thread's handlers.
    shutdown = threading.Event()
    caught: dict = {}
    previous = {}

    def handle_signal(signum, frame) -> None:
        if shutdown.is_set():
            raise KeyboardInterrupt  # second signal: stop draining
        caught["signum"] = signum
        shutdown.set()
        print(
            f"[campaign] caught {signal.Signals(signum).name}; "
            "draining in-flight cells (signal again to abort)",
            flush=True,
        )

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handle_signal)
        except ValueError:  # not the main thread (tests)
            break

    orchestrator = CampaignOrchestrator(
        spec,
        store,
        process_workers=args.process_workers,
        thread_workers=args.thread_workers,
        progress=None if args.quiet else show,
        progress_interval_s=args.progress_interval,
        on_cell=on_cell,
        cell_timeout_s=args.cell_timeout,
        max_retries=args.max_retries,
        on_poison=args.on_poison,
        fault_plan=fault_plan,
        shutdown=shutdown,
    )
    server = None
    if args.metrics_port is not None:
        from repro.telemetry import MetricsServer

        server = MetricsServer(port=args.metrics_port).start()
        print(f"[metrics] serving on {server.url}", flush=True)
    try:
        result = orchestrator.run()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        # The snapshot lands even when the run aborts (e.g. the
        # --fail-after crash injection) — that is the state a
        # post-mortem wants; the linger window keeps the endpoint
        # scrapable after the last cell for the CI smoke step.
        if args.metrics_json:
            from repro.telemetry import get_default_registry

            Path(args.metrics_json).write_text(
                json.dumps(get_default_registry().snapshot(), indent=2),
                encoding="utf-8",
            )
        if server is not None:
            if args.metrics_linger > 0:
                time.sleep(args.metrics_linger)
            server.close()
    stats = result.stats
    exit_code = 128 + caught["signum"] if caught else 0
    if args.json:
        print(
            json.dumps(
                {
                    "spec": spec.to_dict(),
                    "stats": {
                        "total": stats.total,
                        "executed": stats.executed,
                        "resumed": stats.resumed,
                        "thread_cells": stats.thread_cells,
                        "process_cells": stats.process_cells,
                        "wall_s": stats.wall_s,
                        "retried": stats.retried,
                        "timeouts": stats.timeouts,
                        "quarantined": stats.quarantined,
                        "pool_rebuilds": stats.pool_rebuilds,
                        "degraded": stats.degraded,
                        "interrupted": stats.interrupted,
                    },
                    "quarantined": list(result.quarantined),
                },
                indent=2,
            )
        )
        return exit_code
    print(
        f"campaign complete: {stats.total} cells in {stats.wall_s:.1f}s "
        f"(executed {stats.executed}: {stats.thread_cells} on threads, "
        f"{stats.process_cells} on processes; resumed {stats.resumed} "
        f"from {args.store})"
    )
    if stats.retried or stats.timeouts or stats.pool_rebuilds:
        print(
            f"  supervision: {stats.retried} retries, "
            f"{stats.timeouts} timeouts, {stats.pool_rebuilds} worker "
            f"rebuilds, {stats.degraded} engine fallbacks"
        )
    for record in result.quarantined:
        meta = record.get("meta", {})
        if meta.get("family") == "lifetime":
            label = f"{meta.get('scheme')}@{meta.get('profile')}"
        else:
            label = (
                f"{meta.get('scheme')}/{meta.get('pec')}/"
                f"{meta.get('workload')}"
            )
        print(
            f"  quarantined cell {record['index']} "
            f"({label}): {record['reason']} after "
            f"{record['attempts']} attempts — {record['error']}"
        )
    if stats.interrupted:
        print(
            f"  interrupted: {stats.interrupted} cells not started "
            "(resume with the same command)"
        )
    return exit_code


def _open_store(store_dir: str):
    from repro.campaign import ShardedResultStore

    if not Path(store_dir).is_dir():
        raise ConfigError(f"no such store directory: {store_dir}")
    return ShardedResultStore(store_dir)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignOrchestrator

    store = _open_store(args.store)
    stats = store.stats()
    payload: Dict[str, Any] = {
        "store": {
            "path": args.store,
            "keys": stats.keys,
            "shards": stats.shards,
            "segments": stats.segments,
            "data_bytes": stats.data_bytes,
            "superseded": stats.superseded,
            "stale": stats.stale,
            "corrupt": stats.corrupt,
            "corrupt_lines": stats.corrupt_lines,
            "families": dict(stats.families),
        },
    }
    progress = None
    family_status: Dict[str, Dict[str, int]] = {}
    if args.spec_file:
        from repro.campaign import load_campaign_file

        spec = load_campaign_file(args.spec_file).validate()
        orchestrator = CampaignOrchestrator(spec, store)
        progress = orchestrator.status()
        family_status = orchestrator.family_status()
        payload["campaign"] = {
            "family": spec.family,
            "total": progress.total,
            "done": progress.done,
            "remaining": progress.remaining,
            "families": family_status,
        }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    if progress is not None:
        print(
            f"campaign: {progress.done}/{progress.total} cells done "
            f"({progress.fraction:.1%}), {progress.remaining} pending"
        )
        for family, counts in sorted(family_status.items()):
            print(
                f"  {family}: {counts['done']}/{counts['total']} done"
            )
    print(
        f"store {args.store}: {stats.keys} entries across "
        f"{stats.shards} shards / {stats.segments} segments, "
        f"{stats.data_bytes:,} bytes"
    )
    if stats.families:
        print(
            "  families: "
            + ", ".join(f"{name} x{count}" for name, count in stats.families)
        )
    dead = stats.stale + stats.corrupt + stats.superseded
    if dead or stats.corrupt_lines:
        print(
            f"  reclaimable: {stats.superseded} superseded, "
            f"{stats.stale} stale, {stats.corrupt} corrupt, "
            f"{stats.corrupt_lines} torn lines "
            "(`campaign compact` prunes them)"
        )
    return 0


def _cmd_campaign_compact(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if args.max_entries is not None or args.older_than is not None:
        result = store.gc(
            max_entries=args.max_entries,
            older_than_s=args.older_than,
            remove_corrupt=not args.keep_corrupt,
            dry_run=args.dry_run,
        )
        verb = "would remove" if args.dry_run else "removed"
        print(
            f"store {args.store}: {verb} {result.removed_count} entries "
            f"({result.removed_bytes:,} bytes), kept {result.kept}"
        )
        return 0
    result = store.compact(dry_run=args.dry_run)
    verb = "would merge" if args.dry_run else "merged"
    print(
        f"store {args.store}: {verb} {result.segments_before} segments "
        f"into {result.segments_after} across {result.shards_rewritten} "
        f"rewritten shards; dropped {result.records_dropped} dead "
        f"records, reclaimed {result.bytes_reclaimed:,} bytes"
    )
    return 0


# --- metrics -----------------------------------------------------------------


def _cmd_metrics_dump(args: argparse.Namespace) -> int:
    """Dump (and structurally validate) one telemetry exposition.

    Sources, mutually exclusive: ``--url`` scrapes a live
    ``--metrics-port`` endpoint; ``--from-json`` renders a
    ``--metrics-json`` snapshot file; neither reads the in-process
    default registry. Whatever the source, the text format is run
    through the scrape-side parser, so a malformed exposition (or a
    ``--require``-d family that is absent) exits 2 — the CI smoke
    step's assertion.
    """
    from repro.telemetry import (
        get_default_registry,
        parse_text_format,
        render_text,
    )

    if args.url and args.from_json:
        raise ConfigError("pass either --url or --from-json, not both")
    snapshot = None
    if args.url:
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(
                args.url, timeout=args.timeout
            ) as response:
                text = response.read().decode("utf-8")
        except (OSError, urllib.error.URLError) as exc:
            raise ConfigError(
                f"cannot scrape {args.url}: {exc}"
            ) from exc
    else:
        if args.from_json:
            try:
                snapshot = json.loads(
                    Path(args.from_json).read_text(encoding="utf-8")
                )
            except (OSError, ValueError) as exc:
                raise ConfigError(
                    f"cannot read snapshot {args.from_json}: {exc}"
                ) from exc
        else:
            snapshot = get_default_registry().snapshot()
        text = render_text(snapshot)
    families = parse_text_format(text)
    missing = [
        name for name in (args.require or []) if name not in families
    ]
    if missing:
        raise ConfigError(
            f"required metric families missing: {', '.join(missing)}"
        )
    if args.format == "json":
        if snapshot is None:
            raise ConfigError(
                "--format json needs a snapshot source; scrape "
                "<url>/metrics.json directly or use --from-json"
            )
        print(json.dumps(snapshot, indent=2))
    else:
        print(text, end="")
    return 0


# --- cache -------------------------------------------------------------------


def _open_cache(cache_dir: str) -> ResultCache:
    """Open an existing cache for inspection without creating it."""
    if not Path(cache_dir).is_dir():
        raise ConfigError(f"no such cache directory: {cache_dir}")
    return ResultCache(cache_dir)


def _cmd_cache_ls(args: argparse.Namespace) -> int:
    cache = _open_cache(args.cache_dir)
    entries = cache.entries()
    now = time.time()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "key": entry.key,
                        "age_seconds": entry.age_seconds(now),
                        "size_bytes": entry.size,
                        "meta": entry.meta,
                        "corrupt": entry.corrupt,
                        "stale": entry.stale,
                    }
                    for entry in entries
                ],
                indent=2,
            )
        )
        return 0
    if not entries:
        print(f"cache {args.cache_dir}: empty")
        return 0
    rows = [
        [
            entry.key[:12],
            _format_age(entry.age_seconds(now)),
            f"{entry.size:,} B",
            entry.summary(),
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["key", "age", "size", "experiment"],
            rows,
            title=f"Result cache {args.cache_dir}",
        )
    )
    corrupt = sum(1 for entry in entries if entry.corrupt or entry.stale)
    healthy = len(entries) - corrupt
    total = sum(entry.size for entry in entries)
    print(f"  {healthy} entries, {total:,} bytes", end="")
    if corrupt:
        print(f" ({corrupt} corrupt/stale — `cache gc` prunes them)")
    else:
        print()
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    cache = _open_cache(args.cache_dir)
    result = cache.gc(
        max_entries=args.max_entries,
        older_than_s=args.older_than,
        remove_corrupt=not args.keep_corrupt,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"cache {args.cache_dir}: {verb} {result.removed_count} entries "
        f"({result.removed_bytes:,} bytes), kept {result.kept}"
    )
    if result.tmp_removed:
        tmp_verb = "would sweep" if args.dry_run else "swept"
        print(f"  {tmp_verb} {result.tmp_removed} orphaned tmp files")
    for entry in result.removed:
        reason = (
            "corrupt" if entry.corrupt
            else "stale" if entry.stale
            else "pruned"
        )
        print(f"  - {entry.key[:12]}  [{reason}] {entry.summary()}")
    return 0


# --- parser ------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one experiment from flags or a JSON spec file"
    )
    run.add_argument("--scheme", default="aero",
                     help="erase scheme key (see the scheme registry)")
    run.add_argument("--pec", type=int, default=2500,
                     help="P/E-cycle wear setpoint (default: 2500)")
    run.add_argument("--workload", default="ali.A",
                     help="workload abbreviation (Table 3)")
    run.add_argument("--requests", type=int, default=1200,
                     help="trace requests to replay (default: 1200)")
    run.add_argument("--seed", type=int, default=0xAE20,
                     help="campaign seed (default: 0xAE20)")
    run.add_argument("--no-suspension", action="store_true",
                     help="disable erase suspension in the scheduler")
    run.add_argument("--mispredict-rate", type=float, default=0.0,
                     help="forced AERO misprediction rate (Figure 16)")
    run.add_argument("--rber-requirement", type=int, default=None,
                     help="ECC requirement in bits/KiB (Figure 17)")
    run.add_argument("--param", action="append", type=_parse_param,
                     metavar="KEY=VALUE",
                     help="extra scheme param (repeatable; JSON values)")
    run.add_argument("--ssd", choices=["default", "small", "bench", "paper"],
                     default="default",
                     help="SSD preset (default: deterministic small SSD)")
    run.add_argument("--engine", choices=list(ENGINES), default="auto",
                     help="grid-cell engine: vectorized replay kernel "
                          "when the scheme provides one (auto), or force "
                          "one path; results are identical either way")
    run.add_argument("--spec-file", default=None,
                     help="JSON file with one spec or a list of specs")
    run.add_argument("--json", action="store_true",
                     help="emit spec + report as JSON")
    _add_execution_args(run)
    run.set_defaults(func=_cmd_run)

    grid = sub.add_parser(
        "grid", help="run a (schemes x PECs x workloads) campaign"
    )
    grid.add_argument("--schemes", type=_csv,
                      default=["baseline", "iispe", "dpes", "aero_cons", "aero"],
                      help="comma-separated scheme keys (first = baseline)")
    grid.add_argument("--pecs", type=_csv_ints, default=[500, 2500, 4500],
                      help="comma-separated PEC setpoints")
    grid.add_argument("--workloads", type=_csv, default=["ali.A", "hm", "usr"],
                      help="comma-separated workload abbreviations")
    grid.add_argument("--requests", type=int, default=1200)
    grid.add_argument("--seed", type=int, default=0xAE20)
    grid.add_argument("--no-suspension", action="store_true")
    grid.add_argument("--percentile", type=float, default=99.0,
                      help="read-tail percentile to tabulate (default: 99)")
    grid.add_argument("--engine", choices=list(ENGINES), default="auto",
                      help="grid-cell engine (see `run --engine`)")
    _add_execution_args(grid)
    grid.set_defaults(func=_cmd_grid)

    compare = sub.add_parser(
        "compare", help="lifetime comparison across schemes (Figure 13)"
    )
    compare.add_argument("--profile", default="3D-TLC-48L",
                         help="chip profile name (default: 3D-TLC-48L)")
    compare.add_argument("--schemes", type=_csv,
                         default=["baseline", "iispe", "dpes",
                                  "aero_cons", "aero"],
                         help="comma-separated scheme keys (first = baseline)")
    compare.add_argument("--blocks", type=int, default=48,
                         help="blocks per scheme set (default: 48)")
    compare.add_argument("--step", type=int, default=50,
                         help="P/E cycles per simulated erase (default: 50)")
    compare.add_argument("--seed", type=int, default=0xAE20)
    compare.add_argument("--max-pec", type=int, default=12000)
    compare.add_argument("--requirement", type=int, default=None,
                         help="ECC requirement in bits/KiB (Figure 17)")
    compare.add_argument("--mispredict-rate", type=float, default=0.0,
                         help="forced AERO misprediction rate (Figure 16)")
    compare.add_argument("--workers", type=int, default=1,
                         help="workers, one scheme each (default: serial)")
    compare.add_argument("--executor", choices=sorted(_EXECUTORS),
                         default=None,
                         help="worker kind when --workers > 1 (default: "
                              "thread when every scheme runs on its batch "
                              "kernel — kernels release the GIL, so threads "
                              "avoid the process pickle tax — else process)")
    compare.add_argument("--engine", choices=list(ENGINES),
                         default="auto",
                         help="lifetime engine: vectorized batch kernel "
                              "when the scheme provides one (auto), or "
                              "force one path")
    compare.add_argument("--spec", "--spec-file", dest="spec_file",
                         default=None, metavar="PATH",
                         help="JSON LifetimeSpec file; fully describes the "
                              "comparison, so the sweep flags above "
                              "conflict with it")
    compare.add_argument("--store", default=None, metavar="DIR",
                         help="sharded result store for finished curves "
                              "(crash-resume; shareable with campaign run)")
    compare.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="one-file-per-curve result cache "
                              "(alternative to --store)")
    compare.add_argument("--fail-after", type=int, default=None,
                         metavar="N",
                         help="crash injection: abort after N curves "
                              "persisted (resume smoke testing; needs "
                              "--store or --cache-dir)")
    compare.set_defaults(func=_cmd_compare)

    bench = sub.add_parser(
        "bench", help="time the hot campaigns, write the perf artifact"
    )
    from repro.harness.bench import add_bench_arguments, run_from_args

    add_bench_arguments(bench)
    bench.set_defaults(func=run_from_args)

    campaign = sub.add_parser(
        "campaign",
        help="orchestrated campaigns on the sharded result store",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_run = campaign_sub.add_parser(
        "run",
        help="run a campaign on the mixed process+thread pool with "
             "live progress and crash-resume",
    )
    campaign_run.add_argument("--store", required=True,
                              help="sharded result store directory "
                                   "(created if missing)")
    campaign_run.add_argument("--spec-file", default=None,
                              help="JSON campaign spec (bare object or "
                                   "{\"campaign\": {...}})")
    campaign_run.add_argument("--schemes", type=_csv, default=None,
                              help="comma-separated scheme keys")
    campaign_run.add_argument("--pecs", type=_csv_ints, default=None,
                              help="comma-separated PEC setpoints")
    campaign_run.add_argument("--workloads", type=_csv, default=None,
                              help="comma-separated workload abbreviations")
    campaign_run.add_argument("--requests", type=int, default=None)
    campaign_run.add_argument("--seed", type=int, default=None)
    campaign_run.add_argument("--no-suspension", action="store_true")
    campaign_run.add_argument("--engine", choices=list(ENGINES),
                              default=None,
                              help="grid-cell engine (see `run --engine`); "
                                   "object-engine cells route to process "
                                   "workers, kernel cells to threads")
    campaign_run.add_argument("--process-workers", type=int, default=1,
                              help="process-pool workers for object-engine "
                                   "cells (default: 1)")
    campaign_run.add_argument("--thread-workers", type=int, default=1,
                              help="thread-pool workers for kernel-engine "
                                   "cells (default: 1)")
    campaign_run.add_argument("--progress-interval", type=float,
                              default=1.0,
                              help="seconds between progress lines "
                                   "(default: 1.0)")
    campaign_run.add_argument("--quiet", action="store_true",
                              help="suppress progress lines")
    campaign_run.add_argument("--fail-after", type=int, default=None,
                              help="abort after N executed cells "
                                   "(crash-injection for resume testing)")
    campaign_run.add_argument("--cell-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="kill and retry any cell attempt "
                                   "running longer than this")
    campaign_run.add_argument("--max-retries", type=int, default=2,
                              help="retry attempts per failing cell "
                                   "before quarantine (default: 2)")
    campaign_run.add_argument("--on-poison", choices=["skip", "fail"],
                              default="skip",
                              help="quarantined cell handling: record "
                                   "and continue (skip, default) or "
                                   "abort the campaign (fail)")
    campaign_run.add_argument("--fault-plan", default=None, metavar="PATH",
                              help="JSON fault plan to arm on the store "
                                   "and workers (deterministic chaos "
                                   "testing; see repro.faults)")
    campaign_run.add_argument("--json", action="store_true",
                              help="emit spec + run stats as JSON")
    campaign_run.add_argument("--metrics-port", type=int, default=None,
                              metavar="PORT",
                              help="serve /metrics (Prometheus text) and "
                                   "/metrics.json on this port for the "
                                   "duration of the run; 0 = ephemeral")
    campaign_run.add_argument("--metrics-json", default=None,
                              metavar="PATH",
                              help="write a JSON metrics snapshot here "
                                   "when the run ends (even on a crash)")
    campaign_run.add_argument("--metrics-linger", type=float, default=0.0,
                              metavar="SECONDS",
                              help="keep the --metrics-port endpoint up "
                                   "this long after the run (scrape "
                                   "window for CI)")
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_status = campaign_sub.add_parser(
        "status", help="report store contents and campaign completion"
    )
    campaign_status.add_argument("--store", required=True)
    campaign_status.add_argument("--json", action="store_true",
                                 help="machine-readable status: store "
                                      "stats (incl. per-family entry "
                                      "counts) plus per-family campaign "
                                      "progress when --spec-file is given")
    campaign_status.add_argument("--spec-file", default=None,
                                 help="campaign spec to report done/total "
                                      "against")
    campaign_status.set_defaults(func=_cmd_campaign_status)

    campaign_compact = campaign_sub.add_parser(
        "compact",
        help="merge segments and drop dead records (gc knobs supported)",
    )
    campaign_compact.add_argument("--store", required=True)
    campaign_compact.add_argument("--max-entries", type=int, default=None,
                                  help="keep only the newest N healthy "
                                       "entries")
    campaign_compact.add_argument("--older-than", type=_parse_age,
                                  default=None, metavar="AGE",
                                  help="drop entries older than AGE "
                                       "(e.g. 12h, 7d)")
    campaign_compact.add_argument("--keep-corrupt", action="store_true",
                                  help="do not prune corrupt/stale entries")
    campaign_compact.add_argument("--dry-run", action="store_true",
                                  help="report without rewriting")
    campaign_compact.set_defaults(func=_cmd_campaign_compact)

    metrics = sub.add_parser(
        "metrics", help="dump and validate telemetry expositions"
    )
    metrics_sub = metrics.add_subparsers(
        dest="metrics_command", required=True
    )
    metrics_dump = metrics_sub.add_parser(
        "dump",
        help="print one exposition (validated) from the in-process "
             "registry, a live /metrics endpoint, or a snapshot file",
    )
    metrics_dump.add_argument("--url", default=None,
                              help="scrape this /metrics endpoint "
                                   "(from `campaign run --metrics-port`)")
    metrics_dump.add_argument("--from-json", default=None, metavar="PATH",
                              help="render a --metrics-json snapshot file")
    metrics_dump.add_argument("--format", choices=["text", "json"],
                              default="text",
                              help="output format (default: text)")
    metrics_dump.add_argument("--require", action="append", default=None,
                              metavar="NAME",
                              help="fail unless this metric family is "
                                   "present (repeatable)")
    metrics_dump.add_argument("--timeout", type=float, default=5.0,
                              help="scrape timeout in seconds "
                                   "(default: 5)")
    metrics_dump.set_defaults(func=_cmd_metrics_dump)

    cache = sub.add_parser("cache", help="inspect or prune the result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    cache_ls = cache_sub.add_parser("ls", help="list cache entries")
    cache_ls.add_argument("--cache-dir", required=True)
    cache_ls.add_argument("--json", action="store_true")
    cache_ls.set_defaults(func=_cmd_cache_ls)

    cache_gc = cache_sub.add_parser("gc", help="prune cache entries")
    cache_gc.add_argument("--cache-dir", required=True)
    cache_gc.add_argument("--max-entries", type=int, default=None,
                          help="keep only the newest N healthy entries")
    cache_gc.add_argument("--older-than", type=_parse_age, default=None,
                          metavar="AGE",
                          help="drop entries older than AGE (e.g. 12h, 7d)")
    cache_gc.add_argument("--keep-corrupt", action="store_true",
                          help="do not prune corrupt/stale entries")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed, delete nothing")
    cache_gc.set_defaults(func=_cmd_cache_gc)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
