"""Declarative experiment API: registries, specs, builder, runner, CLI.

The one way to describe and run an evaluation experiment:

* :data:`SCHEMES` / :data:`WORKLOADS` — plugin registries every string
  key in the library resolves through (``@SCHEMES.register("key")``
  adds a scheme without touching core files);
* :class:`ExperimentSpec` — frozen, JSON-round-trippable description
  of one (scheme, PEC, workload) cell, the canonical cache-fingerprint
  input;
* :class:`Experiment` — fluent builder
  (``Experiment.aero().at_pec(2500).workload("ali.A").run()``);
* :func:`run_experiments` — execute specs through the cached,
  optionally parallel :class:`~repro.harness.runner.GridRunner`;
* ``python -m repro`` (:mod:`repro.experiments.cli`) — the same
  surface from the shell (``run``, ``grid``, ``compare``,
  ``cache ls|gc``).

Only the registries import eagerly here; the spec/runner/CLI layers
load on first attribute access, which keeps this package importable
from the low-level modules (``repro.schemes``,
``repro.workloads.profiles``) that register their built-ins with it.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.experiments.registry import (
    Registry,
    SchemeRegistry,
    SCHEMES,
    WorkloadRegistry,
    WORKLOADS,
    scheme_keys,
    workload_keys,
)

_LAZY = {
    "ExperimentSpec": "repro.experiments.spec",
    "Experiment": "repro.experiments.spec",
    "SPEC_VERSION": "repro.experiments.spec",
    "load_spec_file": "repro.experiments.spec",
    "ExperimentRun": "repro.experiments.runner",
    "run_experiment": "repro.experiments.runner",
    "run_experiments": "repro.experiments.runner",
    "main": "repro.experiments.cli",
}

__all__ = [
    "Experiment",
    "ExperimentRun",
    "ExperimentSpec",
    "Registry",
    "SCHEMES",
    "SPEC_VERSION",
    "SchemeRegistry",
    "WORKLOADS",
    "WorkloadRegistry",
    "load_spec_file",
    "main",
    "run_experiment",
    "run_experiments",
    "scheme_keys",
    "workload_keys",
]


def __getattr__(name: str) -> Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.experiments' has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list:
    return sorted(set(__all__) | set(globals()))
