"""Execute declarative experiment specs through the grid runner.

``run_experiments`` is the bridge between the declarative surface
(:class:`~repro.experiments.spec.ExperimentSpec`) and the execution
machinery (:class:`~repro.harness.runner.GridRunner`): each spec
resolves to a :class:`~repro.harness.runner.CellJob`, the jobs flow
through the runner's cache-then-executor path, and the results come
back both as a flat report list (aligned with the input specs) and as
an :class:`~repro.harness.grid.EvaluationGrid` for figure-shaped
projections. Because spec resolution reproduces ``GridRunner.plan``'s
seed derivation and fingerprints, a cell cached by a grid campaign is
served to a CLI/spec-file run of the same cell, and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.experiments.spec import ExperimentSpec
from repro.harness.grid import EvaluationGrid
from repro.harness.runner import CellJob, GridRunner, RunStats, grid_from_jobs
from repro.ssd.metrics import PerfReport


@dataclass(frozen=True)
class ExperimentRun:
    """Results of one batch of experiment specs.

    ``reports[i]`` is the report of ``specs[i]``; ``grid`` holds the
    same reports keyed by (scheme, pec, workload); ``stats`` says how
    many cells executed vs were served from cache.
    """

    specs: Tuple[ExperimentSpec, ...]
    jobs: Tuple[CellJob, ...]
    reports: Tuple[PerfReport, ...]
    grid: EvaluationGrid
    stats: RunStats

    def __len__(self) -> int:
        return len(self.specs)


def run_experiments(
    specs: Sequence[ExperimentSpec],
    executor: Optional[object] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    runner: Optional[GridRunner] = None,
) -> ExperimentRun:
    """Run experiment specs; cached cells load, the rest execute.

    Pass ``executor`` (e.g. ``ProcessExecutor(4)``) to fan cells out
    across processes and ``cache_dir`` to persist/reuse finished
    cells — or hand in a pre-configured ``runner`` directly.
    """
    specs = tuple(specs)
    if not specs:
        raise ConfigError("run_experiments needs at least one spec")
    if runner is None:
        runner = GridRunner(executor=executor, cache_dir=cache_dir)
    jobs = tuple(spec.resolve() for spec in specs)
    reports = tuple(runner.execute_jobs(jobs))
    grid = grid_from_jobs(jobs, reports)
    return ExperimentRun(
        specs=specs,
        jobs=jobs,
        reports=reports,
        grid=grid,
        stats=runner.stats,
    )


def run_experiment(
    spec: ExperimentSpec,
    executor: Optional[object] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> PerfReport:
    """Run a single spec and return its report (one-call convenience)."""
    return run_experiments(
        [spec], executor=executor, cache_dir=cache_dir
    ).reports[0]
