"""Declarative experiment descriptions: ``ExperimentSpec`` and builder.

An :class:`ExperimentSpec` is the canonical, frozen description of one
evaluation cell — scheme key plus scheme params, the SSD under test,
the PEC wear setpoint, a workload reference, the request count, and
the campaign seed. It is the one currency every consumer trades in:

* ``spec.resolve()`` yields a ready-to-run
  :class:`~repro.harness.runner.CellJob` whose seed derivation and
  fingerprint are *identical* to what :class:`GridRunner` plans for
  the same campaign, so CLI runs, spec files, and grid campaigns all
  share one result cache;
* ``spec.to_dict()`` / ``ExperimentSpec.from_dict`` round-trip through
  JSON without losing fingerprint identity — the dict is the canonical
  cache-fingerprint input and the on-disk spec-file format;
* :class:`Experiment` is the fluent builder over it::

      report = (Experiment.aero()
                .at_pec(2500)
                .workload("ali.A")
                .requests(5000)
                .run())

Scheme keys and workload refs resolve through the plugin registries,
so specs describe third-party schemes/workloads with no core changes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.config import GcSpec, SchedulerSpec, SsdSpec
from repro.errors import ConfigError
from repro.experiments.registry import SCHEMES, WORKLOADS
from repro.harness.runner import CellJob
from repro.kernels import ENGINES
from repro.nand.chip_types import profile_by_name
from repro.nand.geometry import NandGeometry
from repro.rng import derive

#: Bump when the spec dict layout changes incompatibly.
SPEC_VERSION = 1

_DEFAULT_SEED = 0xAE20


def _canonical_param(key: str, value: Any) -> Any:
    """Normalize a scheme-param value to its JSON-stable canonical form.

    The spec's fingerprint hashes the params' ``repr``, and specs must
    survive a JSON round-trip without changing fingerprint — so values
    are restricted to what JSON represents exactly. Tuples are
    canonicalized to lists (what they come back as); anything JSON
    cannot carry (sets, objects) is rejected up front rather than
    silently missing its own cache entry after a save/load cycle.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_param(key, item) for item in value]
    if isinstance(value, Mapping):
        return {
            str(k): _canonical_param(key, v) for k, v in sorted(value.items())
        }
    raise ConfigError(
        f"scheme param {key!r} has non-JSON-serializable value "
        f"{value!r} ({type(value).__name__}); use null/bool/number/"
        "string/list/object values"
    )


def _ssd_to_dict(spec: SsdSpec) -> Dict[str, Any]:
    """JSON-safe dict of an :class:`SsdSpec` (built-in chip profiles only)."""
    try:
        builtin = profile_by_name(spec.profile.name)
    except ConfigError:
        raise ConfigError(
            f"chip profile {spec.profile.name!r} is not a built-in profile; "
            "custom profiles cannot be serialized to a spec dict"
        ) from None
    if builtin != spec.profile:
        raise ConfigError(
            f"chip profile {spec.profile.name!r} shadows a built-in "
            "profile with different values; custom profiles cannot be "
            "serialized to a spec dict"
        )
    return {
        "geometry": asdict(spec.geometry),
        "profile": spec.profile.name,
        "overprovisioning": spec.overprovisioning,
        "channel_mb_per_s": spec.channel_mb_per_s,
        "controller_overhead_us": spec.controller_overhead_us,
        "scheduler": asdict(spec.scheduler),
        "gc": asdict(spec.gc),
        "seed": spec.seed,
    }


def _ssd_from_dict(data: Mapping[str, Any]) -> SsdSpec:
    """Rebuild an :class:`SsdSpec` from :func:`_ssd_to_dict` output."""
    try:
        return SsdSpec(
            geometry=NandGeometry(**data["geometry"]),
            profile=profile_by_name(data["profile"]),
            overprovisioning=data["overprovisioning"],
            channel_mb_per_s=data["channel_mb_per_s"],
            controller_overhead_us=data["controller_overhead_us"],
            scheduler=SchedulerSpec(**data["scheduler"]),
            gc=GcSpec(**data["gc"]),
            seed=data["seed"],
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed ssd spec dict: {exc}") from exc


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one (scheme, PEC, workload) experiment.

    ``ssd=None`` means "the deterministic small test SSD seeded from
    the derived cell seed" — exactly what :class:`GridRunner` builds
    when no spec is passed, keeping fingerprints aligned.
    ``scheme_params`` is stored as sorted ``(key, value)`` pairs with
    values canonicalized to their JSON shape (tuples become lists), so
    the repr/fingerprint survives a save/load cycle; pass a plain
    dict, it is normalized. Specs with only scalar param values are
    hashable; container-valued params (lists/dicts) are not.
    """

    scheme: str = "aero"
    pec: int = 2500
    workload: str = "ali.A"
    requests: int = 1200
    seed: int = _DEFAULT_SEED
    ssd: Optional[SsdSpec] = None
    erase_suspension: bool = True
    scheme_params: Tuple[Tuple[str, Any], ...] = ()
    #: Grid-cell execution engine; never part of the fingerprint because
    #: kernel and object replays are report-identical (pinned by tests).
    engine: str = "auto"

    def __post_init__(self) -> None:
        params = self.scheme_params
        if isinstance(params, Mapping):
            params = params.items()
        # A null param means "use the scheme's default" — drop it so a
        # spec file spelling {"rber_requirement": null} fingerprints
        # identically to the parameterless experiment it describes.
        object.__setattr__(
            self,
            "scheme_params",
            tuple(
                sorted(
                    (str(key), _canonical_param(key, value))
                    for key, value in params
                    if value is not None
                )
            ),
        )
        if self.requests <= 0:
            raise ConfigError("requests must be positive")
        if self.pec < 0:
            raise ConfigError("pec setpoint must be >= 0")
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; choose from "
                f"{', '.join(ENGINES)}"
            )

    # --- derived ------------------------------------------------------------

    @property
    def params(self) -> Dict[str, Any]:
        """The scheme params as a plain dict."""
        return dict(self.scheme_params)

    @property
    def cell_seed(self) -> int:
        """Per-cell seed, derived exactly like ``GridRunner.plan``."""
        return derive(self.seed, "grid", self.pec, self.workload)

    def resolved_ssd(self) -> SsdSpec:
        """The SSD actually built: explicit spec or the default small one."""
        if self.ssd is not None:
            return self.ssd
        return SsdSpec.small_test(seed=self.cell_seed)

    # --- resolution ---------------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check scheme and workload against the registries; return self."""
        SCHEMES.get(self.scheme)
        WORKLOADS.resolve(self.workload)
        return self

    def resolve(self) -> CellJob:
        """Yield the ready-to-run cell job this spec describes.

        The job's seed, SSD, and fingerprint match what
        ``GridRunner.plan`` produces for an equivalent campaign, so
        results cached by either path serve the other.
        """
        self.validate()
        return CellJob(
            scheme=self.scheme,
            pec=self.pec,
            workload=self.workload,
            spec=self.resolved_ssd(),
            requests=self.requests,
            erase_suspension=self.erase_suspension,
            seed=self.cell_seed,
            scheme_params=self.scheme_params,
            engine=self.engine,
        )

    @property
    def fingerprint(self) -> str:
        """The cache key of this experiment's result."""
        return self.resolve().fingerprint

    def run(self, executor: Any = None, cache_dir: Any = None):
        """Run this one experiment; returns its PerfReport."""
        from repro.experiments.runner import run_experiments

        return run_experiments(
            [self], executor=executor, cache_dir=cache_dir
        ).reports[0]

    # --- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; ``from_dict`` inverts it fingerprint-stably."""
        return {
            "version": SPEC_VERSION,
            "scheme": self.scheme,
            "scheme_params": self.params,
            "pec": self.pec,
            "workload": self.workload,
            "requests": self.requests,
            "seed": self.seed,
            "erase_suspension": self.erase_suspension,
            "ssd": None if self.ssd is None else _ssd_to_dict(self.ssd),
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON).

        Every field except ``scheme`` is optional and falls back to the
        dataclass default, so minimal spec files stay minimal.
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"experiment spec must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigError(
                f"unsupported experiment spec version {version!r} "
                f"(this library reads version {SPEC_VERSION})"
            )
        known = {
            "version", "scheme", "scheme_params", "pec", "workload",
            "requests", "seed", "erase_suspension", "ssd", "engine",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown experiment spec fields {unknown}; "
                f"known: {', '.join(sorted(known))}"
            )
        ssd = data.get("ssd")
        return cls(
            scheme=data.get("scheme", "aero"),
            scheme_params=data.get("scheme_params", {}) or {},
            pec=data.get("pec", 2500),
            workload=data.get("workload", "ali.A"),
            requests=data.get("requests", 1200),
            seed=data.get("seed", _DEFAULT_SEED),
            erase_suspension=data.get("erase_suspension", True),
            ssd=None if ssd is None else _ssd_from_dict(ssd),
            engine=data.get("engine", "auto"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse one spec from a JSON string."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"invalid spec JSON: {exc}") from exc
        return cls.from_dict(data)


def load_spec_file(path: Union[str, Path]) -> List[ExperimentSpec]:
    """Load one spec or a list of specs from a JSON file.

    Accepts a single spec object, a JSON array of them, or
    ``{"experiments": [...]}``.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read spec file {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(f"invalid JSON in spec file {path}: {exc}") from exc
    if isinstance(data, Mapping) and "experiments" in data:
        data = data["experiments"]
    if isinstance(data, Mapping):
        data = [data]
    if not isinstance(data, list) or not data:
        raise ConfigError(
            f"spec file {path} must hold a spec object or a non-empty list"
        )
    return [ExperimentSpec.from_dict(item) for item in data]


class _ExperimentMeta(type):
    """Exposes every registered scheme key as a builder entry point.

    ``Experiment.aero(...)``, ``Experiment.baseline()``, and any plugin
    key registered with :data:`SCHEMES` — resolved dynamically so new
    schemes get builder sugar for free.
    """

    def __getattr__(cls, name: str):
        if not name.startswith("_") and name in SCHEMES:
            def _start(**scheme_params: Any):
                return cls.scheme(name, **scheme_params)

            _start.__name__ = name
            _start.__doc__ = f"Start an experiment using the {name!r} scheme."
            return _start
        raise AttributeError(
            f"type 'Experiment' has no attribute {name!r} "
            f"(registered schemes: {', '.join(SCHEMES.keys())})"
        )


@dataclass(frozen=True)
class Experiment(metaclass=_ExperimentMeta):
    """Small fluent builder over :class:`ExperimentSpec`.

    Every step returns a new immutable builder; ``spec()`` yields the
    finished :class:`ExperimentSpec` and ``run()`` executes it. The
    builder is sugar only — ``Experiment.aero().at_pec(2500).spec()``
    equals ``ExperimentSpec(scheme="aero", pec=2500)`` exactly.
    """

    _spec: ExperimentSpec = ExperimentSpec()

    @classmethod
    def scheme(cls, key: str, **scheme_params: Any) -> "Experiment":
        """Start a builder for scheme ``key`` (validated immediately)."""
        SCHEMES.get(key)
        return cls(ExperimentSpec(scheme=key, scheme_params=scheme_params))

    @classmethod
    def from_spec(cls, spec: ExperimentSpec) -> "Experiment":
        """Wrap an existing spec for further tweaking."""
        return cls(spec)

    def _evolve(self, **changes: Any) -> "Experiment":
        return Experiment(replace(self._spec, **changes))

    def at_pec(self, pec: int) -> "Experiment":
        """Set the P/E-cycle wear setpoint."""
        return self._evolve(pec=pec)

    def workload(self, ref: str) -> "Experiment":
        """Set the workload by registry abbreviation (validated)."""
        WORKLOADS.resolve(ref)
        return self._evolve(workload=ref)

    def requests(self, count: int) -> "Experiment":
        """Set how many trace requests to replay."""
        return self._evolve(requests=count)

    def seed(self, seed: int) -> "Experiment":
        """Set the campaign seed."""
        return self._evolve(seed=seed)

    def ssd(self, spec: SsdSpec) -> "Experiment":
        """Pin an explicit SSD configuration."""
        return self._evolve(ssd=spec)

    def suspension(self, enabled: bool = True) -> "Experiment":
        """Enable/disable erase suspension in the scheduler."""
        return self._evolve(erase_suspension=enabled)

    def engine(self, engine: str) -> "Experiment":
        """Select the cell engine (``auto``/``object``/``kernel``)."""
        return self._evolve(engine=engine)

    def params(self, **scheme_params: Any) -> "Experiment":
        """Merge extra scheme params into the spec."""
        merged = {**self._spec.params, **scheme_params}
        return self._evolve(scheme_params=merged)

    def spec(self) -> ExperimentSpec:
        """The finished, validated experiment spec."""
        return self._spec.validate()

    def run(self, executor: Any = None, cache_dir: Any = None):
        """Build the spec and run it; returns its PerfReport."""
        return self.spec().run(executor=executor, cache_dir=cache_dir)
