"""SEF: Shallow Erasure Flags.

One bit per block tracking whether shallow erasure is still worthwhile.
Bits start at 0, which the paper's encoding translates to TRUE so that
fresh blocks (zero P/E cycles, easiest to erase) always get the shallow
probe; once remainder erasure can no longer shorten the first loop the
flag flips, and future erases of that block start directly with the
full-length ``EP(1)``, avoiding the useless ``VR(0)`` (Figure 12,
step 5).

Storage overhead matches the paper's analysis: 1 bit per ~10 MB block,
i.e. ~12.5 KB for a 1 TB SSD.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class ShallowEraseFlags:
    """Bitmap of per-block shallow-erasure flags."""

    def __init__(self, block_count: int):
        if block_count <= 0:
            raise ConfigError("SEF needs at least one block")
        # Raw bit 0 == shallow erasure enabled (paper's encoding).
        self._raw = np.zeros(block_count, dtype=bool)

    def __len__(self) -> int:
        return self._raw.size

    def shallow_enabled(self, block_index: int) -> bool:
        """Whether block ``block_index`` should get the shallow probe."""
        return not bool(self._raw[block_index])

    def disable_shallow(self, block_index: int) -> None:
        """Mark shallow erasure useless for this block (raw bit -> 1)."""
        self._raw[block_index] = True

    def enable_shallow(self, block_index: int) -> None:
        """Re-enable shallow erasure (e.g. after block re-purposing)."""
        self._raw[block_index] = False

    def reset(self) -> None:
        """Fresh-drive state: every block gets shallow erasure."""
        self._raw[:] = False

    @property
    def enabled_count(self) -> int:
        """Blocks still using shallow erasure."""
        return int((~self._raw).sum())

    @property
    def disabled_count(self) -> int:
        """Blocks whose first loop runs at full length."""
        return int(self._raw.sum())

    @property
    def storage_bytes(self) -> int:
        """DRAM footprint (1 bit per block, rounded up)."""
        return (self._raw.size + 7) // 8
