"""Erase-timing Parameter Table (EPT): Table 1 of the paper.

The EPT stores ``mtEP(i)`` — the erase-pulse latency (in 0.5 ms pulse
quanta) to use for loop ``EP(i)`` — indexed by the fail-bit range that
``F(i-1)`` fell into. Row 1 doubles as the *remainder erasure* row:
after the shallow-erasure probe, ``F(0)`` selects the remainder latency
``tRE``.

Two tables exist per chip:

* the **conservative** table (Table 1's ``t1`` column), which always
  applies enough pulses to erase the block completely, and
* the **aggressive** table (``t2``), which additionally spends the
  ECC-capability margin: it under-erases by up to two pulse quanta
  whenever the Figure 10b reliability analysis shows the resulting
  extra bit errors still fit under the RBER requirement.

Both the published values and builders are provided. The builders
reproduce the paper's methodology: the conservative table is the
worst-case ``remaining pulses`` observed per fail-bit range in an
m-ISPE characterization campaign; the aggressive table subtracts the
largest pulse skip whose projected MRBER stays within the requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.nand.chip_types import ChipProfile
from repro.nand.rber import RberModel

#: Pulse quanta consumed by the shallow-erasure probe (tSE = 1 ms).
SHALLOW_PULSES = 2

#: Bytes per EPT entry in the paper's overhead analysis (32-bit values).
ENTRY_BYTES = 4


@dataclass(frozen=True)
class EraseTimingTable:
    """Immutable EPT: ``rows[loop]`` maps fail-bit range -> pulse quanta.

    Range indices follow :meth:`ChipProfile.failbit_range_index`:
    index 0 is ``F <= gamma``, index k is ``(k-1)*delta < F <= k*delta``,
    and fail-bit counts above ``FHIGH`` (index ``f_high_deltas + 1``)
    always map to the default full-length pulse.
    """

    profile_name: str
    rows: Tuple[Tuple[int, ...], ...]
    default_pulses: int
    aggressive: bool = False

    def __post_init__(self) -> None:
        if not self.rows:
            raise ConfigError("EPT must have at least one row")
        width = len(self.rows[0])
        for row in self.rows:
            if len(row) != width:
                raise ConfigError("EPT rows must have equal width")
            for pulses in row:
                if not 0 <= pulses <= self.default_pulses:
                    raise ConfigError(
                        f"EPT entry {pulses} outside [0, {self.default_pulses}]"
                    )

    @property
    def loops(self) -> int:
        """Number of rows (maximum ISPE loops covered)."""
        return len(self.rows)

    @property
    def ranges(self) -> int:
        """Number of fail-bit ranges per row."""
        return len(self.rows[0])

    @property
    def entry_count(self) -> int:
        """Total entries (paper: T x L = 35 on the tested chips)."""
        return self.loops * self.ranges

    @property
    def storage_bytes(self) -> int:
        """DRAM footprint of the table (paper: 140 bytes)."""
        return self.entry_count * ENTRY_BYTES

    def row(self, loop: int) -> Tuple[int, ...]:
        """Row for predicting ``EP(loop)`` (1-indexed)."""
        if not 1 <= loop <= self.loops:
            raise ConfigError(f"EPT has no row for loop {loop}")
        return self.rows[loop - 1]

    def lookup_pulses(self, profile: ChipProfile, loop: int, fail_bits: int) -> int:
        """Pulse quanta for ``EP(loop)`` given ``F(loop-1) = fail_bits``."""
        row = self.row(min(loop, self.loops))
        range_index = profile.failbit_range_index(fail_bits)
        if range_index >= len(row):
            return self.default_pulses
        return row[range_index]

    def to_milliseconds(self, profile: ChipProfile) -> List[List[float]]:
        """Render the table in milliseconds (for reports / Table 1)."""
        quantum_ms = profile.pulse_quantum_us / 1000.0
        return [[pulses * quantum_ms for pulses in row] for row in self.rows]


# --- published Table 1 -----------------------------------------------------------


def published_conservative_table(profile: ChipProfile) -> EraseTimingTable:
    """Table 1's ``t1`` column for the paper's 3D TLC chips.

    Row 1 caps at ``pulses_per_loop - SHALLOW_PULSES`` because it is the
    remainder-erasure row (shallow probe already spent 2 quanta and the
    first loop never exceeds the default ``tEP`` in total).
    """
    per_loop = profile.pulses_per_loop
    remainder_cap = per_loop - SHALLOW_PULSES
    width = profile.f_high_deltas + 1
    first = tuple(min(k + 1, remainder_cap) for k in range(width))
    other = tuple(min(k + 1, per_loop) for k in range(width))
    rows = (first,) + (other,) * (profile.max_loops - 1)
    return EraseTimingTable(
        profile_name=profile.name,
        rows=rows,
        default_pulses=per_loop,
        aggressive=False,
    )


def published_aggressive_table(profile: ChipProfile) -> EraseTimingTable:
    """Table 1's ``t2`` column: conservative minus the safe pulse skip.

    The skip schedule on the paper's chips: two quanta (1 ms) for loops
    1-3, one quantum for loop 4, none for loop 5 (conditions C1/C2 of
    Section 5.4).
    """
    conservative = published_conservative_table(profile)
    skip_by_loop = _published_skip_schedule(profile.max_loops)
    rows = tuple(
        tuple(max(0, pulses - skip_by_loop[index]) for pulses in row)
        for index, row in enumerate(conservative.rows)
    )
    return EraseTimingTable(
        profile_name=profile.name,
        rows=rows,
        default_pulses=conservative.default_pulses,
        aggressive=True,
    )


def _published_skip_schedule(max_loops: int) -> List[int]:
    schedule = []
    for loop in range(1, max_loops + 1):
        if loop <= 3:
            schedule.append(2)
        elif loop == 4:
            schedule.append(1)
        else:
            schedule.append(0)
    return schedule


# --- builders (characterization-driven methodology) ---------------------------------


@dataclass(frozen=True)
class FelpSample:
    """One characterization observation: F before a loop vs pulses needed.

    ``loop`` is the EP step about to run (1-indexed; 1 also covers the
    shallow-remainder case), ``fail_bits`` the verify-read count before
    it, and ``remaining_pulses`` the ground-truth pulses the block still
    needed (measured by m-ISPE).
    """

    loop: int
    fail_bits: int
    remaining_pulses: int


def build_conservative_table(
    profile: ChipProfile,
    samples: Iterable[FelpSample],
) -> EraseTimingTable:
    """Derive the conservative EPT from characterization samples.

    Each (row, range) entry is the worst-case remaining-pulse count
    observed, so the table is conservative *by construction* on the
    characterized population; unobserved cells fall back to the
    published conservative prediction for their range.
    """
    per_loop = profile.pulses_per_loop
    width = profile.f_high_deltas + 1
    worst: Dict[Tuple[int, int], int] = {}
    for sample in samples:
        if sample.loop < 1 or sample.remaining_pulses < 0:
            raise ConfigError("invalid FELP sample")
        range_index = profile.failbit_range_index(sample.fail_bits)
        if range_index >= width:
            continue
        row = min(sample.loop, profile.max_loops)
        key = (row, range_index)
        worst[key] = max(worst.get(key, 0), sample.remaining_pulses)
    fallback = published_conservative_table(profile)
    rows: List[Tuple[int, ...]] = []
    for loop in range(1, profile.max_loops + 1):
        cap = per_loop - SHALLOW_PULSES if loop == 1 else per_loop
        row = []
        for range_index in range(width):
            observed = worst.get((loop, range_index))
            if observed is None:
                observed = fallback.row(loop)[range_index]
            row.append(min(max(observed, 1), cap))
        # Enforce monotonicity in the fail-bit range: more fail bits can
        # never need fewer pulses (physical regularity; also protects
        # against sparse sampling).
        for index in range(1, width):
            row[index] = max(row[index], row[index - 1])
        rows.append(tuple(row))
    return EraseTimingTable(
        profile_name=profile.name,
        rows=tuple(rows),
        default_pulses=per_loop,
        aggressive=False,
    )


def build_aggressive_table(
    profile: ChipProfile,
    conservative: EraseTimingTable,
    rber_model: RberModel | None = None,
    requirement_bits_per_kib: int | None = None,
    max_skip: int = 2,
) -> EraseTimingTable:
    """Apply the ECC-capability-margin analysis (Section 5.4).

    For each loop row, find the largest pulse skip ``s`` such that a
    block of typical wear for that loop count, left under-erased by
    ``s`` quanta, still meets the RBER requirement — the Figure 10b
    analysis. With the default requirement (63 bits/KiB) this
    reproduces Table 1's ``t2`` schedule (2/2/2/1/0); with the weaker
    requirements of Figure 17 the skips shrink.
    """
    rber = rber_model or RberModel(profile)
    requirement = (
        requirement_bits_per_kib
        if requirement_bits_per_kib is not None
        else profile.ecc.requirement_bits_per_kib
    )
    rows: List[Tuple[int, ...]] = []
    for loop in range(1, conservative.loops + 1):
        skip = _safe_skip(profile, rber, loop, requirement, max_skip)
        rows.append(
            tuple(max(0, pulses - skip) for pulses in conservative.row(loop))
        )
    return EraseTimingTable(
        profile_name=profile.name,
        rows=tuple(rows),
        default_pulses=conservative.default_pulses,
        aggressive=True,
    )


def _safe_skip(
    profile: ChipProfile,
    rber: RberModel,
    loop: int,
    requirement: float,
    max_skip: int,
) -> int:
    """Largest safe under-erase skip (pulse quanta) for loop ``loop``.

    Safety is judged at the *worst relevant* wear: the upper edge of the
    loop-count band (the oldest block still needing ``loop`` loops),
    capped at the age where a completely-erased block reaches the
    requirement anyway — under-erasing a block that old is moot because
    it is about to be retired regardless.
    """
    age = _evaluation_age(profile, rber, loop, requirement)
    complete = rber.wear_rber(age) + rber.retention_rber(age)
    best = 0
    for skip in range(1, max_skip + 1):
        residual = _expected_residual_fail_bits(profile, skip)
        projected = complete + rber.under_erase_penalty(residual, loop)
        if projected <= requirement:
            best = skip
        else:
            break
    return best


def _evaluation_age(
    profile: ChipProfile, rber: RberModel, loops: int, requirement: float
) -> float:
    """Worst-relevant wear age for the loop-``loops`` margin check."""
    work = profile.erase_work
    # Upper edge of the band: the mean block needs `loops` full loops.
    target = profile.pulses_per_loop * loops
    if target <= work.base_mean:
        band_upper = 0.05
    else:
        band_upper = (
            (target - work.base_mean) / work.rate_mean
        ) ** (1.0 / work.pec_exponent)
    return max(0.05, min(band_upper, _crossing_age(rber, requirement)))


def _crossing_age(rber: RberModel, requirement: float) -> float:
    """Age at which a completely erased block reaches ``requirement``."""
    low, high = 0.0, 16.0
    if rber.wear_rber(high) + rber.retention_rber(high) < requirement:
        return high
    for _ in range(60):
        mid = 0.5 * (low + high)
        if rber.wear_rber(mid) + rber.retention_rber(mid) < requirement:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def _expected_residual_fail_bits(profile: ChipProfile, skip: int) -> int:
    """Expected fail-bit count left by under-erasing ``skip`` quanta.

    Mirrors the verify-read model: a block needing one more pulse shows
    ~gamma fail bits; ``s`` more pulses show ``gamma + (s - 1.25)*delta``
    on average (the -0.25*delta being the mean of the distribution's
    offset term).
    """
    if skip <= 0:
        return 0
    if skip == 1:
        return profile.gamma
    return int(profile.gamma + (skip - 1.25) * profile.delta)


def format_table(profile: ChipProfile, table: EraseTimingTable) -> str:
    """ASCII rendering of an EPT in milliseconds (Table 1 layout)."""
    edges = profile.failbit_range_edges()
    headers = ["<=gamma"] + [f"<={k}d" for k in range(1, len(edges))]
    quantum_ms = profile.pulse_quantum_us / 1000.0
    lines = [
        f"EPT ({table.profile_name}, "
        f"{'aggressive' if table.aggressive else 'conservative'}), ms:"
    ]
    lines.append("NISPE | " + " | ".join(f"{h:>7}" for h in headers))
    for loop in range(1, table.loops + 1):
        cells = " | ".join(
            f"{pulses * quantum_ms:7.1f}" for pulses in table.row(loop)
        )
        lines.append(f"{loop:5d} | {cells}")
    return "\n".join(lines)
