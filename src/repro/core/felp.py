"""FELP: Fail-bit-count-based Erase Latency Prediction.

The predictor is the decision layer between verify-read feedback and
the next erase-pulse command: given ``F(i-1)``, it chooses the latency
for ``EP(i)`` from the Erase-timing Parameter Table, falling back to
the default full-length pulse when the count is above ``FHIGH``
(no reduction possible, Figure 6a) and flagging aggressive predictions
so the scheme knows an under-erased verify result is intentional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.ept import EraseTimingTable
from repro.errors import ConfigError
from repro.nand.chip_types import ChipProfile


@dataclass(frozen=True)
class PulsePrediction:
    """Outcome of one FELP lookup."""

    #: Loop the prediction is for (EP index, 1-based).
    loop: int
    #: Fail-bit count the prediction was based on.
    fail_bits: int
    #: Fail-bit range index (profile.failbit_range_index).
    range_index: int
    #: Pulse quanta to apply.
    pulses: int
    #: True when the pulse count is below the default (a real reduction).
    reduced: bool
    #: True when the aggressive (ECC-margin) table produced the value.
    aggressive: bool

    @property
    def skipped_entirely(self) -> bool:
        """True when the loop can be skipped outright (t2 = 0)."""
        return self.pulses == 0


class FelpPredictor:
    """EPT-backed erase-latency prediction (conservative + aggressive)."""

    def __init__(
        self,
        profile: ChipProfile,
        conservative: EraseTimingTable,
        aggressive: Optional[EraseTimingTable] = None,
    ):
        if conservative.aggressive:
            raise ConfigError("conservative table flagged aggressive")
        if aggressive is not None and not aggressive.aggressive:
            raise ConfigError("aggressive table not flagged aggressive")
        self.profile = profile
        self.conservative = conservative
        self.aggressive = aggressive

    @property
    def f_pass(self) -> int:
        return self.profile.f_pass

    @property
    def f_high(self) -> int:
        return self.profile.f_high

    def can_reduce(self, fail_bits: int) -> bool:
        """Whether any tEP reduction is possible (FPASS < F <= FHIGH)."""
        return self.f_pass < fail_bits <= self.f_high

    def predict(
        self,
        loop: int,
        fail_bits: int,
        use_margin: bool = False,
    ) -> PulsePrediction:
        """Predict the pulse count for ``EP(loop)`` from ``F(loop-1)``.

        Above ``FHIGH`` the default full pulse is used (no reduction
        room); between ``FPASS`` and ``FHIGH`` the EPT supplies the
        near-optimal latency. ``use_margin`` selects the aggressive
        table when one is available.
        """
        default = self.conservative.default_pulses
        range_index = self.profile.failbit_range_index(fail_bits)
        if fail_bits > self.f_high:
            return PulsePrediction(
                loop=loop,
                fail_bits=fail_bits,
                range_index=range_index,
                pulses=default,
                reduced=False,
                aggressive=False,
            )
        if use_margin and self.aggressive is not None:
            pulses = self.aggressive.lookup_pulses(
                self.profile, loop, fail_bits
            )
            conservative_pulses = self.conservative.lookup_pulses(
                self.profile, loop, fail_bits
            )
            # An aggressive entry equal to the conservative one is not
            # an intentional under-erase (e.g. Table 1 row 5: t2 == t1).
            aggressive = pulses != conservative_pulses
        else:
            pulses = self.conservative.lookup_pulses(
                self.profile, loop, fail_bits
            )
            aggressive = False
        return PulsePrediction(
            loop=loop,
            fail_bits=fail_bits,
            range_index=range_index,
            pulses=pulses,
            reduced=pulses < default,
            aggressive=aggressive,
        )

    def acceptance_threshold(self) -> int:
        """Max residual fail bits an aggressive erase may leave behind.

        The aggressive table under-erases by at most two pulse quanta,
        so the residual count should not exceed ~``gamma + 1.6 delta``;
        anything above signals a misprediction the scheme must repair.
        """
        return int(self.profile.gamma + 1.6 * self.profile.delta)
