"""AERO: the paper's primary contribution.

* :mod:`repro.core.ept` - the Erase-timing Parameter Table (Table 1),
  both the published values and a builder that derives the table from a
  characterization campaign plus the ECC-capability margin analysis.
* :mod:`repro.core.felp` - Fail-bit-count-based Erase Latency
  Prediction: mapping a verify-read's fail-bit count to the next
  erase-pulse latency.
* :mod:`repro.core.sef` - Shallow Erasure Flags bitmap.
* :mod:`repro.core.aero` - the AERO erase scheme (conservative and
  aggressive modes, shallow erasure, misprediction handling).
"""

from repro.core.ept import (
    EraseTimingTable,
    build_aggressive_table,
    build_conservative_table,
    published_aggressive_table,
    published_conservative_table,
)
from repro.core.felp import FelpPredictor, PulsePrediction
from repro.core.sef import ShallowEraseFlags
from repro.core.aero import AeroEraseScheme, SHALLOW_PULSES_DEFAULT

__all__ = [
    "AeroEraseScheme",
    "EraseTimingTable",
    "FelpPredictor",
    "PulsePrediction",
    "SHALLOW_PULSES_DEFAULT",
    "ShallowEraseFlags",
    "build_aggressive_table",
    "build_conservative_table",
    "published_aggressive_table",
    "published_conservative_table",
]
