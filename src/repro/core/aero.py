"""AERO: Adaptive ERase Operation (the paper's Section 4/6 mechanism).

AERO keeps the ISPE voltage ladder but adjusts each erase-pulse step's
latency to be just long enough:

* **FELP** - after every verify-read, the fail-bit count selects the
  next pulse latency from the Erase-timing Parameter Table.
* **Shallow erasure** - the first loop starts with a short probe pulse
  (tSE = 1 ms) whose verify-read supplies the fail-bit count needed to
  right-size the *remainder erasure*, so even single-loop erases are
  optimized. A per-block flag (SEF) skips the probe once it stops
  paying off.
* **ECC-margin (aggressive mode)** - when the reliability analysis
  allows, AERO under-erases by up to two pulse quanta and accepts the
  residual fail bits, trading a bounded number of extra raw bit errors
  (still within ECC reach) for less erase stress.
* **Misprediction handling** - a verify-read that still fails after a
  reduced pulse triggers 0.5 ms repair pulses at the same voltage
  (escalating the ladder only if the loop's full budget is exhausted),
  exactly the recovery the paper costs at +0.5 ms per event.

``AEROcons`` is this scheme with ``aggressive=False`` (no margin use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.ept import (
    SHALLOW_PULSES,
    published_aggressive_table,
    published_conservative_table,
)
from repro.core.felp import FelpPredictor, PulsePrediction
from repro.erase.scheme import EraseOperationResult, EraseScheme
from repro.errors import ConfigError
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import EraseState
from repro.nand.geometry import BlockAddress

#: Default shallow-erasure probe length in pulse quanta (tSE = 1 ms,
#: the paper's choice in Section 5.3).
SHALLOW_PULSES_DEFAULT = SHALLOW_PULSES


@dataclass
class AeroStats:
    """Cumulative counters across erases (reported by benchmarks)."""

    erases: int = 0
    shallow_probes: int = 0
    shallow_useful: int = 0
    aggressive_accepts: int = 0
    mispredictions: int = 0
    injected_mispredictions: int = 0
    pulses_applied: int = 0
    pulses_saved_vs_baseline: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class AeroEraseScheme(EraseScheme):
    """The AERO erase scheme (conservative or aggressive)."""

    def __init__(
        self,
        profile: ChipProfile,
        predictor: Optional[FelpPredictor] = None,
        aggressive: bool = True,
        shallow_pulses: int = SHALLOW_PULSES_DEFAULT,
        mispredict_rate: float = 0.0,
    ):
        super().__init__(profile)
        if not 0 <= mispredict_rate <= 1:
            raise ConfigError("mispredict_rate must be in [0, 1]")
        if not 1 <= shallow_pulses < profile.pulses_per_loop:
            raise ConfigError(
                "shallow probe must be shorter than a full erase pulse"
            )
        if predictor is None:
            predictor = FelpPredictor(
                profile,
                conservative=published_conservative_table(profile),
                aggressive=published_aggressive_table(profile) if aggressive else None,
            )
        if aggressive and predictor.aggressive is None:
            raise ConfigError("aggressive mode needs an aggressive EPT")
        self.predictor = predictor
        self.aggressive = aggressive
        self.shallow_pulses = shallow_pulses
        self.mispredict_rate = mispredict_rate
        self.name = "aero" if aggressive else "aero_cons"
        self.stats = AeroStats()
        #: Built-in SEF stand-in for standalone (non-FTL) use; AEROFTL
        #: supplies its own bitmap via the ``use_shallow`` argument.
        self._shallow_flags: Dict[BlockAddress, bool] = {}
        self._use_shallow_override: Optional[bool] = None

    # --- public API -----------------------------------------------------------

    def erase(
        self,
        block: Block,
        rng: np.random.Generator,
        cycles: int = 1,
        use_shallow: Optional[bool] = None,
    ) -> EraseOperationResult:
        """Erase ``block``; ``use_shallow`` overrides the internal SEF."""
        self._use_shallow_override = use_shallow
        try:
            return super().erase(block, rng, cycles=cycles)
        finally:
            self._use_shallow_override = None

    def batch_kernel(self):
        from repro.kernels.erase import AeroBatchKernel

        return AeroBatchKernel.from_scheme(self)

    def shallow_enabled(self, block: Block) -> bool:
        """Whether the internal SEF would use shallow erasure on ``block``."""
        return self._shallow_flags.get(block.address, True)

    def reset_stats(self) -> None:
        self.stats = AeroStats()

    # --- scheme body ------------------------------------------------------------

    def _run(
        self,
        block: Block,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> None:
        per_loop = self.profile.pulses_per_loop
        self.stats.erases += 1
        use_shallow = self._use_shallow_override
        if use_shallow is None:
            use_shallow = self.shallow_enabled(block)

        fail_bits: Optional[int] = None
        if use_shallow:
            fail_bits = self._first_loop_shallow(block, state, result, rng)
        else:
            self._pulse(state, result, 1, per_loop)
            fail_bits = self._verify(state, result, rng)
            if state.passes(fail_bits):
                result.completed = True
        if result.completed or result.accepted_under_erase:
            self._finish_stats(result)
            return

        for loop in range(2, self.profile.max_loops + 1):
            prediction = self.predictor.predict(
                loop, fail_bits, use_margin=self.aggressive
            )
            if prediction.skipped_entirely and prediction.aggressive:
                self._accept_under_erase(result, fail_bits, nispe=loop)
                break
            pulses = self._maybe_inject_misprediction(prediction, rng)
            self._pulse(state, result, loop, pulses)
            fail_bits = self._verify(state, result, rng)
            if self._settle_loop(state, result, rng, prediction, fail_bits):
                break
            fail_bits = result.fail_bit_trace[-1]
        self._finish_stats(result)

    # --- first loop with shallow erasure -------------------------------------------

    def _first_loop_shallow(
        self,
        block: Block,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> int:
        """EP(0) probe + remainder erasure; returns the last fail-bit count."""
        per_loop = self.profile.pulses_per_loop
        result.used_shallow_erase = True
        self.stats.shallow_probes += 1
        self._pulse(state, result, 1, self.shallow_pulses)
        fail_bits = self._verify(state, result, rng)
        if state.passes(fail_bits):
            # Probe alone finished the job (very fresh block).
            result.completed = True
            self._record_shallow_outcome(block, result, useful=True)
            return fail_bits
        prediction = self.predictor.predict(
            1, fail_bits, use_margin=self.aggressive
        )
        if prediction.skipped_entirely and prediction.aggressive:
            self._accept_under_erase(result, fail_bits, nispe=1)
            self._record_shallow_outcome(block, result, useful=True)
            return fail_bits
        remainder_cap = per_loop - self.shallow_pulses
        pulses = min(prediction.pulses, remainder_cap)
        pulses = self._maybe_inject_misprediction(prediction, rng, cap=pulses)
        useful = (self.shallow_pulses + pulses) < per_loop
        self._pulse(state, result, 1, pulses)
        fail_bits = self._verify(state, result, rng)
        self._settle_loop(state, result, rng, prediction, fail_bits)
        self._record_shallow_outcome(block, result, useful=useful)
        return result.fail_bit_trace[-1]

    def _record_shallow_outcome(
        self, block: Block, result: EraseOperationResult, useful: bool
    ) -> None:
        result.shallow_erase_useful = useful
        if useful:
            self.stats.shallow_useful += 1
        self._shallow_flags[block.address] = useful

    # --- loop settlement ------------------------------------------------------------

    def _settle_loop(
        self,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
        prediction: PulsePrediction,
        fail_bits: int,
    ) -> bool:
        """Resolve one loop's verify-read; returns True when the op is done.

        Handles the three outcomes: pass, intentional under-erase
        acceptance (aggressive mode), and misprediction repair with
        0.5 ms pulses at the same ladder voltage.
        """
        per_loop = self.profile.pulses_per_loop
        if state.passes(fail_bits):
            result.completed = True
            return True
        threshold = self.predictor.acceptance_threshold()
        # Aggressive acceptance is only meaningful while the loop still
        # has pulse budget left: a small fail-bit count *at the loop
        # cap* means the block needs the next (higher-voltage) loop,
        # not that it is two pulses from done — accepting there would
        # leave cells the current voltage cannot finish.
        if (
            prediction.aggressive
            and fail_bits <= threshold
            and state.pulses_in_loop < per_loop
        ):
            self._accept_under_erase(result, fail_bits, nispe=state.loop)
            return True
        if not prediction.reduced:
            return False  # Natural ISPE failure; ladder escalates.
        # Misprediction: the reduced pulse was not enough. Repair with
        # single pulse quanta at the same VERASE while the loop budget
        # allows (paper Section 6, "Misprediction Handling").
        result.mispredictions += 1
        self.stats.mispredictions += 1
        while state.pulses_in_loop < per_loop:
            self._pulse(state, result, state.loop, 1)
            fail_bits = self._verify(state, result, rng)
            if state.passes(fail_bits):
                result.completed = True
                return True
            if (
                prediction.aggressive
                and fail_bits <= threshold
                and state.pulses_in_loop < per_loop
            ):
                self._accept_under_erase(result, fail_bits, nispe=state.loop)
                return True
        return False  # Loop budget exhausted; ladder escalates.

    def _accept_under_erase(
        self, result: EraseOperationResult, fail_bits: int, nispe: int
    ) -> None:
        result.accepted_under_erase = True
        result.residual_fail_bits = fail_bits
        result.residual_nispe = nispe
        self.stats.aggressive_accepts += 1

    # --- misprediction injection (Figure 16 sensitivity hook) -------------------------

    def _maybe_inject_misprediction(
        self,
        prediction: PulsePrediction,
        rng: np.random.Generator,
        cap: Optional[int] = None,
    ) -> int:
        """Optionally under-predict by one quantum (sensitivity study)."""
        pulses = prediction.pulses if cap is None else cap
        if (
            self.mispredict_rate > 0.0
            and prediction.reduced
            and pulses > 0
            and rng.random() < self.mispredict_rate
        ):
            self.stats.injected_mispredictions += 1
            return pulses - 1
        return pulses

    def _finish_stats(self, result: EraseOperationResult) -> None:
        per_loop = self.profile.pulses_per_loop
        loops = max(1, result.loops, result.residual_nispe)
        result.loops = loops
        self.stats.pulses_applied += result.total_pulses
        self.stats.pulses_saved_vs_baseline += max(
            0, per_loop * loops - result.total_pulses
        )
