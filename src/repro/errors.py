"""Exception hierarchy for the AERO reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch a single base class. Sub-hierarchies mirror
the package layout (NAND device, FTL, simulator, workloads, configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


# --- NAND device ------------------------------------------------------------


class NandError(ReproError):
    """Base class for NAND device model errors."""


class AddressError(NandError):
    """A physical address is outside the device geometry."""


class CommandError(NandError):
    """An illegal command sequence was issued to a chip.

    Examples: programming a page that is not erased, erasing a block
    that is mid-suspend, reading a page that was never programmed.
    """


class WornOutError(NandError):
    """A block exceeded its endurance limit and can no longer be used."""


class FeatureError(NandError):
    """An unknown or read-only ONFI feature register was accessed."""


# --- erase schemes ----------------------------------------------------------


class EraseSchemeError(ReproError):
    """An erase scheme was driven through an invalid state transition."""


class EraseFailure(EraseSchemeError):
    """An erase operation could not complete within the loop budget.

    Carries the fail-bit count observed at the last verify-read so the
    caller (FTL) can decide whether to retire the block.
    """

    def __init__(self, message: str, fail_bits: int = 0, loops: int = 0):
        super().__init__(message)
        self.fail_bits = fail_bits
        self.loops = loops


# --- FTL --------------------------------------------------------------------


class FtlError(ReproError):
    """Base class for flash-translation-layer errors."""


class OutOfSpaceError(FtlError):
    """The FTL ran out of free blocks even after garbage collection."""


class MappingError(FtlError):
    """A logical page has no mapping or the mapping is inconsistent."""


# --- simulator ----------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulator errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or the engine state is invalid."""


# --- workloads ----------------------------------------------------------------


class TraceError(ReproError):
    """A workload trace is malformed or references an invalid range."""


# --- campaigns ----------------------------------------------------------------


class CampaignError(ReproError):
    """Base class for campaign orchestration errors."""


class PoisonCellError(CampaignError):
    """A cell exhausted its retry budget and ``on_poison="fail"`` is set.

    Carries the cell index and fingerprint so operators can find the
    quarantine record and the job that produced it.
    """

    def __init__(self, message: str, index: int = -1, fingerprint: str = ""):
        super().__init__(message)
        self.index = index
        self.fingerprint = fingerprint


# --- fault injection ----------------------------------------------------------


class InjectedFault(ReproError):
    """A deterministic fault fired from a :class:`repro.faults.FaultPlan`.

    Raised at the exact hook point the plan names (a simulated crash
    around a store put, a compaction interrupt, a killed thread
    worker); supervision layers catch it and exercise their recovery
    path instead of aborting.
    """

    def __init__(self, message: str, kind: str = ""):
        super().__init__(message)
        self.kind = kind
