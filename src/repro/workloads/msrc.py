"""MSR Cambridge trace format (Narayanan et al., TOS 2008).

CSV rows: ``timestamp,hostname,disknum,type,offset,size,responsetime``
with Windows filetime timestamps (100 ns ticks), byte offsets/sizes,
and ``Read``/``Write`` type strings. The loader normalizes timestamps
to microseconds from trace start and byte ranges to sectors.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from repro.errors import TraceError
from repro.units import SECTOR_BYTES
from repro.workloads.trace import Trace, TraceRequest

#: Windows filetime ticks per microsecond.
_TICKS_PER_US = 10.0


def load_msrc_csv(path: Union[str, Path], name: str | None = None) -> Trace:
    """Load an MSRC-format CSV trace file."""
    path = Path(path)
    requests: List[TraceRequest] = []
    first_ticks: float | None = None
    with path.open(newline="") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row or row[0].startswith("#"):
                continue
            if len(row) < 6:
                raise TraceError(f"{path}:{line_no}: expected >=6 columns")
            try:
                ticks = float(row[0])
                kind = row[3].strip().lower()
                offset = int(row[4])
                size = int(row[5])
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}")
            if kind not in ("read", "write"):
                raise TraceError(f"{path}:{line_no}: unknown op {row[3]!r}")
            if first_ticks is None:
                first_ticks = ticks
            arrival_us = (ticks - first_ticks) / _TICKS_PER_US
            requests.append(
                TraceRequest(
                    arrival_us=max(0.0, arrival_us),
                    lba=offset // SECTOR_BYTES,
                    sectors=max(1, (size + SECTOR_BYTES - 1) // SECTOR_BYTES),
                    is_read=(kind == "read"),
                )
            )
    requests.sort(key=lambda r: r.arrival_us)
    return Trace(requests, name=name or path.stem)


def save_msrc_csv(trace: Trace, path: Union[str, Path], hostname: str = "synth") -> None:
    """Write a trace in MSRC CSV format (round-trips with the loader)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for request in trace:
            writer.writerow(
                [
                    int(round(request.arrival_us * _TICKS_PER_US)),
                    hostname,
                    0,
                    "Read" if request.is_read else "Write",
                    request.lba * SECTOR_BYTES,
                    request.sectors * SECTOR_BYTES,
                    0,
                ]
            )
