"""Block-level I/O trace model.

A trace is an ordered sequence of requests addressed in 512-byte
sectors, the common denominator of the Alibaba and MSRC trace formats
the paper evaluates with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.errors import TraceError
from repro.units import SECTOR_BYTES


@dataclass(frozen=True)
class TraceRequest:
    """One host I/O request."""

    #: Arrival time in microseconds from trace start.
    arrival_us: float
    #: Starting logical block address, in 512-byte sectors.
    lba: int
    #: Request length in sectors (>= 1).
    sectors: int
    #: True for reads, False for writes.
    is_read: bool

    def __post_init__(self) -> None:
        if self.arrival_us < 0 or self.lba < 0 or self.sectors < 1:
            raise TraceError(f"malformed request {self}")

    @property
    def bytes(self) -> int:
        return self.sectors * SECTOR_BYTES

    @property
    def end_lba(self) -> int:
        """First sector past the request."""
        return self.lba + self.sectors


class Trace:
    """An ordered request sequence with summary statistics."""

    def __init__(self, requests: Sequence[TraceRequest], name: str = "trace"):
        self.name = name
        self.requests: List[TraceRequest] = list(requests)
        last = -1.0
        for request in self.requests:
            if request.arrival_us < last:
                raise TraceError("trace requests must be time-ordered")
            last = request.arrival_us

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[TraceRequest]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> TraceRequest:
        return self.requests[index]

    # --- statistics (Table 3 columns) ----------------------------------------------

    @property
    def read_ratio(self) -> float:
        """Fraction of read requests."""
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.is_read) / len(self.requests)

    @property
    def avg_request_bytes(self) -> float:
        """Mean request size in bytes."""
        if not self.requests:
            return 0.0
        return sum(r.bytes for r in self.requests) / len(self.requests)

    @property
    def avg_inter_arrival_us(self) -> float:
        """Mean inter-arrival gap in microseconds."""
        if len(self.requests) < 2:
            return 0.0
        span = self.requests[-1].arrival_us - self.requests[0].arrival_us
        return span / (len(self.requests) - 1)

    @property
    def duration_us(self) -> float:
        """Arrival time of the last request."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_us

    @property
    def max_lba(self) -> int:
        """Highest sector addressed (exclusive)."""
        return max((r.end_lba for r in self.requests), default=0)

    def accelerated(self, factor: float, name: str | None = None) -> "Trace":
        """Copy with inter-arrival times divided by ``factor``.

        The paper accelerates the MSRC traces by 10x, as is common
        practice for evaluating modern SSDs against decade-old traces.
        """
        if factor <= 0:
            raise TraceError("acceleration factor must be positive")
        scaled = [
            TraceRequest(
                arrival_us=r.arrival_us / factor,
                lba=r.lba,
                sectors=r.sectors,
                is_read=r.is_read,
            )
            for r in self.requests
        ]
        return Trace(scaled, name=name or f"{self.name}-x{factor:g}")

    def head(self, count: int) -> "Trace":
        """First ``count`` requests (scaled-down benchmark runs)."""
        return Trace(self.requests[:count], name=self.name)


def merge_traces(traces: Iterable[Trace], name: str = "merged") -> Trace:
    """Time-merge several traces into one (multi-tenant experiments)."""
    merged = sorted(
        (request for trace in traces for request in trace),
        key=lambda r: r.arrival_us,
    )
    return Trace(merged, name=name)
