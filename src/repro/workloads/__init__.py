"""Workload substrate: trace model, Table 3 profiles, generators, parsers."""

from repro.workloads.trace import Trace, TraceRequest
from repro.workloads.profiles import (
    ALL_PROFILES,
    PROFILES_BY_ABBR,
    WorkloadProfile,
    profile_by_abbr,
)
from repro.workloads.synthetic import SyntheticTraceGenerator
from repro.workloads.msrc import load_msrc_csv, save_msrc_csv
from repro.workloads.alibaba import load_alibaba_csv, save_alibaba_csv

__all__ = [
    "ALL_PROFILES",
    "PROFILES_BY_ABBR",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceRequest",
    "WorkloadProfile",
    "load_alibaba_csv",
    "load_msrc_csv",
    "profile_by_abbr",
    "save_alibaba_csv",
    "save_msrc_csv",
]
