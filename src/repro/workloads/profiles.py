"""The eleven evaluated workloads (Table 3 of the paper).

Five Alibaba cloud block-storage traces and six MSR Cambridge
enterprise traces, characterized by read ratio, average request size,
and average inter-request arrival time. The MSRC traces are replayed
10x accelerated, as in the paper (and much prior work).

We do not ship the raw traces (license/size); the synthetic generator
reproduces these first-order characteristics, and the parsers in
:mod:`repro.workloads.msrc` / :mod:`repro.workloads.alibaba` let users
drop in the real files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.experiments.registry import WORKLOADS


@dataclass(frozen=True)
class WorkloadProfile:
    """First-order I/O characteristics of one workload (Table 3 row)."""

    #: Source benchmark suite ("alibaba" or "msrc").
    suite: str
    #: Original trace name (e.g. "ali_32", "rsrch_0").
    trace: str
    #: Abbreviation used in the paper's figures (e.g. "ali.A", "rsrch").
    abbr: str
    #: Fraction of read requests.
    read_ratio: float
    #: Average request size in KB.
    avg_request_kb: float
    #: Average inter-request arrival time in ms, as listed in Table 3.
    avg_inter_arrival_ms: float
    #: Replay acceleration applied by the paper (10x for MSRC).
    acceleration: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigError("read ratio must be in [0, 1]")
        if self.avg_request_kb <= 0 or self.avg_inter_arrival_ms <= 0:
            raise ConfigError("sizes and gaps must be positive")

    @property
    def effective_inter_arrival_us(self) -> float:
        """Mean inter-arrival gap after acceleration (microseconds)."""
        return self.avg_inter_arrival_ms * 1000.0 / self.acceleration

    @property
    def write_ratio(self) -> float:
        return 1.0 - self.read_ratio


ALL_PROFILES: Tuple[WorkloadProfile, ...] = (
    WorkloadProfile("alibaba", "ali_32", "ali.A", 0.07, 54.0, 16.3),
    WorkloadProfile("alibaba", "ali_3", "ali.B", 0.52, 26.0, 111.8),
    WorkloadProfile("alibaba", "ali_12", "ali.C", 0.69, 38.0, 57.9),
    WorkloadProfile("alibaba", "ali_121", "ali.D", 0.78, 18.0, 13.8),
    WorkloadProfile("alibaba", "ali_124", "ali.E", 0.95, 36.0, 5.1),
    WorkloadProfile("msrc", "rsrch_0", "rsrch", 0.09, 9.0, 421.9, acceleration=10.0),
    WorkloadProfile("msrc", "stg_0", "stg", 0.15, 12.0, 297.8, acceleration=10.0),
    WorkloadProfile("msrc", "hm_0", "hm", 0.36, 8.0, 151.5, acceleration=10.0),
    WorkloadProfile("msrc", "prxy_1", "prxy", 0.65, 13.0, 3.6, acceleration=10.0),
    WorkloadProfile("msrc", "proj_2", "proj", 0.88, 42.0, 20.6, acceleration=10.0),
    WorkloadProfile("msrc", "usr_1", "usr", 0.91, 49.0, 13.4, acceleration=10.0),
)

PROFILES_BY_ABBR: Dict[str, WorkloadProfile] = {
    profile.abbr: profile for profile in ALL_PROFILES
}

# The Table 3 profiles are the built-in entries of the process-wide
# workload registry; every abbreviation anywhere in the library (the
# harness, ExperimentSpec, the CLI) resolves through it, and plugins
# add workloads with WORKLOADS.register(...) / WORKLOADS.add(...)
# without touching this file.
for _profile in ALL_PROFILES:
    if _profile.abbr not in WORKLOADS:
        WORKLOADS.add(_profile)
del _profile


def profile_by_abbr(abbr: str) -> WorkloadProfile:
    """Look up a workload by its figure abbreviation (registry shim).

    Resolves through :data:`repro.experiments.WORKLOADS`, so plugin
    workloads registered at runtime are found too. Unknown keys raise
    :class:`ConfigError` listing every registered abbreviation.
    """
    return WORKLOADS.resolve(abbr)
