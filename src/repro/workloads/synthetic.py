"""Synthetic trace generation from Table 3 workload profiles.

The generator reproduces the first-order characteristics the paper
reports for each workload — read ratio, mean request size, mean
(accelerated) inter-arrival time — plus second-order structure that
matters for SSD behaviour:

* **Poisson arrivals** (exponential gaps) around the profile mean,
  with optional burstiness (a fraction of requests arrive in bursts,
  which is what pushes reads into collision with erases);
* **log-normal request sizes** scaled to the profile mean, aligned to
  sectors;
* **hot/cold addressing**: a configurable fraction of accesses target a
  small hot region (the classic 80/20 skew of datacenter block traces),
  the rest spread uniformly; a fraction of writes are sequential runs.

Everything is driven by one seeded generator, so traces are exactly
reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import TraceError
from repro.rng import derive_rng
from repro.units import SECTOR_BYTES
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace, TraceRequest


@dataclass(frozen=True)
class AddressModel:
    """Hot/cold + sequentiality knobs for generated addresses."""

    #: Fraction of the footprint considered hot.
    hot_fraction: float = 0.2
    #: Fraction of accesses that target the hot region.
    hot_access_fraction: float = 0.8
    #: Probability that a write continues a sequential run.
    sequential_write_fraction: float = 0.3
    #: Fraction of arrivals that are bursty (arrive back-to-back).
    burst_fraction: float = 0.15
    #: Requests per burst (geometric mean).
    burst_length: float = 4.0


class SyntheticTraceGenerator:
    """Deterministic trace generator for one workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        footprint_bytes: int,
        seed: int = 0xAE20,
        address_model: AddressModel | None = None,
        size_sigma: float = 0.8,
    ):
        if footprint_bytes < 16 * SECTOR_BYTES:
            raise TraceError("footprint too small to generate addresses")
        self.profile = profile
        self.footprint_sectors = footprint_bytes // SECTOR_BYTES
        self.address_model = address_model or AddressModel()
        self.size_sigma = size_sigma
        self._rng = derive_rng(seed, "trace", profile.abbr, footprint_bytes)
        # Log-normal with mean = avg_request_kb: mean = exp(mu + s^2/2).
        mean_sectors = profile.avg_request_kb * 1024.0 / SECTOR_BYTES
        self._size_mu = math.log(mean_sectors) - 0.5 * size_sigma ** 2
        self._sequential_cursor = 0

    def generate(self, request_count: int) -> Trace:
        """Generate ``request_count`` requests."""
        if request_count <= 0:
            raise TraceError("request count must be positive")
        rng = self._rng
        model = self.address_model
        # Burst members arrive nearly back-to-back; inflate the base
        # gap so the overall mean inter-arrival matches the profile.
        burst_inflation = 1.0 + model.burst_fraction * model.burst_length
        mean_gap = self.profile.effective_inter_arrival_us
        base_gap = mean_gap * burst_inflation
        requests: List[TraceRequest] = []
        clock = 0.0
        burst_left = 0
        for _ in range(request_count):
            if burst_left > 0:
                burst_left -= 1
                clock += rng.exponential(mean_gap * 0.02)
            else:
                clock += rng.exponential(base_gap)
                if rng.random() < model.burst_fraction:
                    burst_left = max(1, int(rng.geometric(1.0 / model.burst_length)))
            is_read = rng.random() < self.profile.read_ratio
            sectors = self._draw_sectors(rng)
            lba = self._draw_lba(rng, sectors, is_read)
            requests.append(
                TraceRequest(
                    arrival_us=clock,
                    lba=lba,
                    sectors=sectors,
                    is_read=is_read,
                )
            )
        return Trace(requests, name=f"{self.profile.abbr}-synthetic")

    # --- draws -----------------------------------------------------------------

    def _draw_sectors(self, rng) -> int:
        sectors = int(round(rng.lognormal(self._size_mu, self.size_sigma)))
        sectors = max(1, sectors)
        cap = max(1, self.footprint_sectors // 8)
        return min(sectors, cap)

    def _draw_lba(self, rng, sectors: int, is_read: bool) -> int:
        model = self.address_model
        span = self.footprint_sectors
        hot_span = max(1, int(span * model.hot_fraction))
        if not is_read and rng.random() < model.sequential_write_fraction:
            # Continue a sequential write run through the cold region.
            lba = self._sequential_cursor
            self._sequential_cursor = (lba + sectors) % max(1, span - sectors)
            return lba
        if rng.random() < model.hot_access_fraction:
            region_start, region_span = 0, hot_span
        else:
            region_start, region_span = hot_span, max(1, span - hot_span)
        upper = max(1, region_span - sectors)
        return region_start + int(rng.integers(0, upper))
