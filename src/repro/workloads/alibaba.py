"""Alibaba cloud block-storage trace format (Li et al., IISWC 2020).

CSV rows: ``device_id,opcode,offset,length,timestamp`` with byte
offsets/lengths, ``R``/``W`` opcodes, and microsecond timestamps.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import TraceError
from repro.units import SECTOR_BYTES
from repro.workloads.trace import Trace, TraceRequest


def load_alibaba_csv(
    path: Union[str, Path],
    name: str | None = None,
    device_id: Optional[int] = None,
) -> Trace:
    """Load an Alibaba-format CSV trace (optionally one device only)."""
    path = Path(path)
    requests: List[TraceRequest] = []
    first_us: float | None = None
    with path.open(newline="") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row or row[0].startswith("#"):
                continue
            if len(row) < 5:
                raise TraceError(f"{path}:{line_no}: expected >=5 columns")
            try:
                device = int(row[0])
                opcode = row[1].strip().upper()
                offset = int(row[2])
                length = int(row[3])
                timestamp_us = float(row[4])
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}")
            if device_id is not None and device != device_id:
                continue
            if opcode not in ("R", "W"):
                raise TraceError(f"{path}:{line_no}: unknown opcode {row[1]!r}")
            if first_us is None:
                first_us = timestamp_us
            requests.append(
                TraceRequest(
                    arrival_us=max(0.0, timestamp_us - first_us),
                    lba=offset // SECTOR_BYTES,
                    sectors=max(1, (length + SECTOR_BYTES - 1) // SECTOR_BYTES),
                    is_read=(opcode == "R"),
                )
            )
    requests.sort(key=lambda r: r.arrival_us)
    return Trace(requests, name=name or path.stem)


def save_alibaba_csv(trace: Trace, path: Union[str, Path], device_id: int = 0) -> None:
    """Write a trace in Alibaba CSV format (round-trips with the loader)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for request in trace:
            writer.writerow(
                [
                    device_id,
                    "R" if request.is_read else "W",
                    request.lba * SECTOR_BYTES,
                    request.sectors * SECTOR_BYTES,
                    int(round(request.arrival_us)),
                ]
            )
