"""``python -m repro`` — run, compare, and cache AERO experiments."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
