"""Experiment harness: the paper's evaluation grid in one call.

Runs (scheme x PEC-setpoint x workload) cells of the Section 7
evaluation — build an SSD at the wear point, precondition to steady
state, replay a synthetic Table 3 workload, collect the performance
report — and assembles the normalized comparisons the paper's figures
show. Used by the benchmarks and the examples; scale knobs keep a full
grid tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SsdSpec
from repro.rng import derive
from repro.ssd.builder import build_ssd
from repro.ssd.metrics import PerfReport, normalize
from repro.workloads.profiles import WorkloadProfile, profile_by_abbr
from repro.workloads.synthetic import SyntheticTraceGenerator

#: The paper's evaluation PEC setpoints (Figure 14).
PAPER_PEC_POINTS = (500, 2500, 4500)

#: The paper's comparison schemes, in presentation order.
PAPER_SCHEMES = ("baseline", "iispe", "dpes", "aero_cons", "aero")


@dataclass
class GridCell:
    """One (scheme, pec, workload) evaluation cell."""

    scheme: str
    pec: int
    workload: str
    report: PerfReport


@dataclass
class EvaluationGrid:
    """All cells of one evaluation campaign, with lookup helpers."""

    cells: List[GridCell] = field(default_factory=list)

    def report(self, scheme: str, pec: int, workload: str) -> PerfReport:
        for cell in self.cells:
            if (
                cell.scheme == scheme
                and cell.pec == pec
                and cell.workload == workload
            ):
                return cell.report
        raise KeyError((scheme, pec, workload))

    def schemes(self) -> List[str]:
        return sorted({cell.scheme for cell in self.cells})

    def workloads(self) -> List[str]:
        return sorted({cell.workload for cell in self.cells})

    def pec_points(self) -> List[int]:
        return sorted({cell.pec for cell in self.cells})

    # --- figure-shaped projections -------------------------------------------------

    def normalized_read_tail(
        self, pct: float, pec: int, baseline: str = "baseline"
    ) -> Dict[str, Dict[str, float]]:
        """Figure 14: per-workload read tail latency vs Baseline."""
        out: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads():
            base = self.report(baseline, pec, workload).read_tail(pct)
            out[workload] = {
                scheme: normalize(
                    self.report(scheme, pec, workload).read_tail(pct), base
                )
                for scheme in self.schemes()
            }
        return out

    def geomean_normalized(
        self,
        metric,
        pec: int,
        baseline: str = "baseline",
    ) -> Dict[str, float]:
        """Geometric mean across workloads of metric(report)/metric(base)."""
        import math

        out: Dict[str, float] = {}
        for scheme in self.schemes():
            log_sum, count = 0.0, 0
            for workload in self.workloads():
                base = metric(self.report(baseline, pec, workload))
                value = metric(self.report(scheme, pec, workload))
                ratio = normalize(value, base)
                if ratio > 0:
                    log_sum += math.log(ratio)
                    count += 1
            out[scheme] = math.exp(log_sum / count) if count else 0.0
        return out


def run_workload_cell(
    scheme: str,
    pec: int,
    workload: WorkloadProfile | str,
    spec: Optional[SsdSpec] = None,
    requests: int = 1200,
    footprint_fraction: float = 0.85,
    precondition_fraction: float = 0.9,
    erase_suspension: bool = True,
    seed: int = 0xAE20,
    mispredict_rate: float = 0.0,
) -> PerfReport:
    """Run one evaluation cell and return its performance report."""
    if isinstance(workload, str):
        workload = profile_by_abbr(workload)
    if spec is None:
        spec = SsdSpec.small_test(seed=seed)
    spec = spec.with_scheduler(erase_suspension=erase_suspension)
    ssd = build_ssd(
        spec, scheme, pec_setpoint=pec, mispredict_rate=mispredict_rate
    )
    ssd.precondition(
        footprint_pages=int(spec.logical_pages * precondition_fraction)
    )
    generator = SyntheticTraceGenerator(
        workload,
        footprint_bytes=int(spec.logical_bytes * footprint_fraction),
        seed=derive(seed, "trace", workload.abbr, pec),
    )
    trace = generator.generate(requests)
    return ssd.run_trace(trace, workload_name=workload.abbr)


def run_grid(
    schemes: Sequence[str] = PAPER_SCHEMES,
    pec_points: Sequence[int] = PAPER_PEC_POINTS,
    workloads: Sequence[str] = ("ali.A", "hm", "usr"),
    requests: int = 1200,
    spec: Optional[SsdSpec] = None,
    erase_suspension: bool = True,
    seed: int = 0xAE20,
) -> EvaluationGrid:
    """Run a (scheme x pec x workload) grid."""
    grid = EvaluationGrid()
    for pec in pec_points:
        for workload in workloads:
            for scheme in schemes:
                report = run_workload_cell(
                    scheme,
                    pec,
                    workload,
                    spec=spec,
                    requests=requests,
                    erase_suspension=erase_suspension,
                    seed=seed,
                )
                grid.cells.append(
                    GridCell(scheme=scheme, pec=pec, workload=workload, report=report)
                )
    return grid
