"""LDPC-style ECC capability model.

Modern SSDs protect each ~1 KiB codeword with LDPC codes able to
correct several tens of raw bit errors (72 per KiB on the paper's
configuration). We model decoding at the capability level: a codeword
whose raw bit-error count is within capability decodes in one
hard-decision pass (latency hidden under sensing/transfer); above
capability, read-retry (see :mod:`repro.ecc.read_retry`) re-senses with
adjusted VREF. The gap between capability and typical error counts is
the *ECC-capability margin* AERO's aggressive mode spends (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.nand.chip_types import EccSpec


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    success: bool
    raw_bit_errors: float
    latency_us: float
    #: Capability minus raw errors (negative on decode failure).
    margin_bits: float


class EccEngine:
    """Capability-level LDPC model for one codeword geometry."""

    def __init__(self, spec: EccSpec):
        if spec.capability_bits_per_kib <= 0:
            raise ConfigError("ECC capability must be positive")
        self.spec = spec

    @property
    def capability(self) -> int:
        """Correctable raw bit errors per codeword."""
        return self.spec.capability_bits_per_kib

    @property
    def requirement(self) -> int:
        """RBER requirement including the sampling-error safety margin."""
        return self.spec.requirement_bits_per_kib

    def correctable(self, raw_bit_errors: float) -> bool:
        """Whether a hard-decision decode succeeds."""
        return raw_bit_errors <= self.capability

    def margin(self, raw_bit_errors: float) -> float:
        """ECC-capability margin for a codeword (paper footnote 1)."""
        return self.capability - raw_bit_errors

    def decode(self, raw_bit_errors: float) -> DecodeResult:
        """Decode one codeword at the given raw error count."""
        if raw_bit_errors < 0:
            raise ConfigError("raw bit errors must be non-negative")
        success = self.correctable(raw_bit_errors)
        return DecodeResult(
            success=success,
            raw_bit_errors=raw_bit_errors,
            latency_us=self.spec.decode_latency_us,
            margin_bits=self.margin(raw_bit_errors),
        )

    def meets_requirement(self, raw_bit_errors: float) -> bool:
        """Whether the error count satisfies the lifetime requirement."""
        return raw_bit_errors <= self.requirement
