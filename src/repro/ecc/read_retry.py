"""Read-retry: re-sensing with adjusted VREF after a decode failure.

When a page's RBER exceeds the hard-decision ECC capability, the
controller re-reads with tuned read-reference voltages; each step
substantially lowers the effective RBER (Park et al., ASPLOS'21 [43]).
Read-retry is one of the two reasons the paper cites for the large
ECC-capability margin in modern SSDs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.ldpc import EccEngine
from repro.errors import ConfigError


@dataclass(frozen=True)
class ReadRetryResult:
    """Outcome of a (possibly retried) page read."""

    success: bool
    retries: int
    total_latency_us: float
    final_raw_bit_errors: float


class ReadRetryPolicy:
    """Retry loop around the ECC engine."""

    def __init__(self, ecc: EccEngine, t_r_us: float, transfer_us: float = 0.0):
        if t_r_us <= 0:
            raise ConfigError("read latency must be positive")
        self.ecc = ecc
        self.t_r_us = t_r_us
        self.transfer_us = transfer_us

    def read(self, raw_bit_errors: float) -> ReadRetryResult:
        """Read one codeword, retrying with adjusted VREF on failure.

        Latency: the initial sense + transfer + decode, plus one sense +
        decode per retry. The per-retry RBER reduction factor comes from
        the chip's ECC spec.
        """
        spec = self.ecc.spec
        latency = self.t_r_us + self.transfer_us + spec.decode_latency_us
        errors = float(raw_bit_errors)
        retries = 0
        while not self.ecc.correctable(errors):
            if retries >= spec.max_read_retries:
                return ReadRetryResult(
                    success=False,
                    retries=retries,
                    total_latency_us=latency,
                    final_raw_bit_errors=errors,
                )
            retries += 1
            errors *= spec.retry_rber_factor
            latency += self.t_r_us + spec.decode_latency_us
        return ReadRetryResult(
            success=True,
            retries=retries,
            total_latency_us=latency,
            final_raw_bit_errors=errors,
        )
