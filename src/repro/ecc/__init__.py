"""ECC substrate: LDPC-style capability model and read-retry."""

from repro.ecc.ldpc import DecodeResult, EccEngine
from repro.ecc.read_retry import ReadRetryPolicy, ReadRetryResult

__all__ = ["DecodeResult", "EccEngine", "ReadRetryPolicy", "ReadRetryResult"]
