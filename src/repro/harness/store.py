"""The result-store abstraction shared by every campaign driver.

:class:`ResultStore` is the structural contract between execution
machinery (:class:`~repro.harness.runner.GridRunner`, the campaign
orchestrator) and result persistence. Two implementations ship:

* :class:`~repro.harness.cache.ResultCache` — one JSON file per cell,
  right for interactive runs and grids up to a few thousand cells;
* :class:`~repro.campaign.store.ShardedResultStore` — chunked
  append-only JSONL segments sharded by fingerprint prefix, built for
  million-cell campaigns.

The contract is deliberately small: ``get`` returns a report or
``None``, ``put`` persists one atomically, and ``in`` answers exactly
the question resume planners ask — *would* ``get`` *succeed?* An
implementation where ``__contains__`` is looser than ``get`` (e.g.
"the file exists" vs "the entry parses at the current cache version")
breaks crash-resume: the planner skips a cell it cannot actually load.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable

from repro.ssd.metrics import PerfReport


@runtime_checkable
class ResultStore(Protocol):
    """Keyed, atomic persistence of finished cell reports.

    Keys are cell fingerprints
    (:func:`~repro.harness.cache.cell_fingerprint`). Implementations
    must keep the membership/retrievability invariant: ``key in store``
    is true iff ``store.get(key)`` returns a report.
    """

    def get(self, key: str) -> Optional[PerfReport]:
        """The stored report for ``key``, or ``None`` on a miss."""
        ...

    def put(
        self,
        key: str,
        report: PerfReport,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist one finished cell under ``key``."""
        ...

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would return a report for ``key``."""
        ...
