"""The result-store abstraction shared by every campaign driver.

:class:`ResultStore` is the structural contract between execution
machinery (:class:`~repro.harness.runner.GridRunner`, the campaign
orchestrator) and result persistence. Two implementations ship:

* :class:`~repro.harness.cache.ResultCache` — one JSON file per cell,
  right for interactive runs and grids up to a few thousand cells;
* :class:`~repro.campaign.store.ShardedResultStore` — chunked
  append-only JSONL segments sharded by fingerprint prefix, built for
  million-cell campaigns.

The contract is deliberately small: ``get`` returns a report or
``None``, ``put`` persists one atomically, and ``in`` answers exactly
the question resume planners ask — *would* ``get`` *succeed?* An
implementation where ``__contains__`` is looser than ``get`` (e.g.
"the file exists" vs "the entry parses at the current cache version")
breaks crash-resume: the planner skips a cell it cannot actually load.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable


@runtime_checkable
class ResultStore(Protocol):
    """Keyed, atomic persistence of finished campaign results.

    Keys are job fingerprints — cell fingerprints
    (:func:`~repro.harness.cache.cell_fingerprint`) for grid cells,
    :attr:`~repro.lifetime.spec.LifetimeJob.fingerprint` for lifetime
    curves; the stored value is the matching result type
    (:class:`~repro.ssd.metrics.PerfReport` /
    :class:`~repro.lifetime.simulator.LifetimeCurve` — see
    :mod:`repro.harness.results` for the family dispatch).
    Implementations must keep the membership/retrievability invariant:
    ``key in store`` is true iff ``store.get(key)`` returns a result.
    """

    def get(self, key: str) -> Optional[Any]:
        """The stored result for ``key``, or ``None`` on a miss."""
        ...

    def put(
        self,
        key: str,
        report: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist one finished result under ``key``."""
        ...

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would return a report for ``key``."""
        ...
