"""Experiment harness: the paper's evaluation grid, cached and parallel.

Runs (scheme x PEC-setpoint x workload) cells of the Section 7
evaluation and assembles the normalized comparisons the paper's figures
show. The package splits the old single-module harness into layers:

* :mod:`repro.harness.cells` — one cell end to end
  (``run_workload_cell``);
* :mod:`repro.harness.grid` — :class:`EvaluationGrid` with an O(1)
  ``(scheme, pec, workload)`` index and figure-shaped projections;
* :mod:`repro.harness.executors` — :class:`SerialExecutor` /
  :class:`ProcessExecutor` / :class:`ThreadExecutor`, the pluggable
  ``map`` strategies;
* :mod:`repro.harness.cache` — :class:`ResultCache`, one JSON file per
  finished cell, fingerprint-keyed, resume-friendly;
* :mod:`repro.harness.runner` — :class:`GridRunner` and the
  ``run_grid`` façade tying them together.

Quick start::

    from repro.harness import ProcessExecutor, run_grid

    grid = run_grid(
        workloads=("ali.A", "hm"),
        requests=900,
        executor=ProcessExecutor(4),      # fan cells out over 4 processes
        cache_dir=".repro-cache",         # skip finished cells on re-run
    )
    print(grid.geomean_normalized(lambda r: r.read_tail(99.0), pec=500))

Parallel, cached, and serial runs of the same campaign are
bit-identical: cell seeds derive deterministically from the campaign
seed via :func:`repro.rng.derive`, and each cell is a pure function of
its inputs. ``from repro.harness import run_grid, run_workload_cell``
keeps working exactly as it did when the harness was one module.
"""

from repro.harness.cache import (
    CACHE_VERSION,
    CacheEntry,
    GcResult,
    ResultCache,
    cell_fingerprint,
)
from repro.harness.cells import (
    PAPER_PEC_POINTS,
    PAPER_SCHEMES,
    run_workload_cell,
)
from repro.harness.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.harness.grid import CellKey, EvaluationGrid, GridCell
from repro.harness.runner import (
    CellJob,
    GridRunner,
    RunStats,
    execute_cell,
    grid_from_jobs,
    plan_jobs,
    run_grid,
)
from repro.harness.store import ResultStore

__all__ = [
    "CACHE_VERSION",
    "CacheEntry",
    "CellJob",
    "Executor",
    "GcResult",
    "CellKey",
    "EvaluationGrid",
    "GridCell",
    "GridRunner",
    "PAPER_PEC_POINTS",
    "PAPER_SCHEMES",
    "ProcessExecutor",
    "ResultCache",
    "ResultStore",
    "RunStats",
    "SerialExecutor",
    "ThreadExecutor",
    "cell_fingerprint",
    "execute_cell",
    "grid_from_jobs",
    "plan_jobs",
    "run_grid",
    "run_workload_cell",
]
