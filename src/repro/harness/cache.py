"""Persistent grid-cell result cache.

Layout: one JSON file per finished cell, named ``<fingerprint>.json``
inside the cache directory::

    <cache_dir>/
        2f1c9d...e0.json    {"version": 1, "meta": {...}, "report": {...}}
        88ab03...71.json

The fingerprint is a SHA-256 over everything that determines a cell's
outcome — the resolved :class:`~repro.config.SsdSpec` (via its
dataclass ``repr``, deterministic because every nested field is a
frozen dataclass of plain values), the scheme, PEC setpoint, workload,
request count, derived cell seed, and the remaining
``run_workload_cell`` knobs — plus a format version. Any change to any
input yields a different file name, so a cache directory can be shared
across campaigns and machines without collisions.

Resume semantics: the runner consults the cache before executing a
cell and writes each finished report back immediately, so a campaign
killed halfway resumes from its last completed cell on the next run —
a warm cache replays an entire grid without executing anything. Writes
are atomic (temp file + ``os.replace``) and corrupt or truncated
entries are treated as misses and recomputed, never propagated.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.config import SsdSpec
from repro.errors import ConfigError
from repro.harness.results import (
    FAMILY_CELL,
    result_family,
    result_from_json_dict,
    result_to_json_dict,
)
from repro.telemetry.instruments import store_metrics

#: Bump when the cell-execution semantics or file format change; old
#: entries then miss instead of returning stale results.
#: v2: erase-resume dispatch fix and truncated-replay makespan fix
#: changed every cell's report.
CACHE_VERSION = 2


def cell_fingerprint(
    spec: SsdSpec,
    scheme: str,
    pec: int,
    workload: str,
    requests: int,
    seed: int,
    erase_suspension: bool = True,
    footprint_fraction: float = 0.85,
    precondition_fraction: float = 0.9,
    mispredict_rate: float = 0.0,
    scheme_params: Tuple[Tuple[str, Any], ...] = (),
) -> str:
    """Stable hash of every input that determines a cell's report.

    ``scheme_params`` carries any extra scheme knobs beyond
    ``mispredict_rate`` (e.g. ``rber_requirement``) as sorted
    ``(key, value)`` pairs; it is folded into the payload only when
    non-empty, so fingerprints of parameterless cells are unchanged
    across library versions and existing caches stay valid.
    """
    lines = [
        f"version={CACHE_VERSION}",
        f"spec={spec!r}",
        f"scheme={scheme}",
        f"pec={pec}",
        f"workload={workload}",
        f"requests={requests}",
        f"seed={seed}",
        f"erase_suspension={erase_suspension}",
        f"footprint_fraction={footprint_fraction!r}",
        f"precondition_fraction={precondition_fraction!r}",
        f"mispredict_rate={mispredict_rate!r}",
    ]
    if scheme_params:
        lines.append(f"scheme_params={tuple(sorted(scheme_params))!r}")
    payload = "\n".join(lines)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one on-disk cache entry (for ``cache ls`` / ``gc``).

    ``corrupt`` marks files that exist but cannot be parsed (truncated
    writes, foreign files); ``stale`` marks readable entries written
    under a different :data:`CACHE_VERSION`. Both read as misses at
    run time and are prime garbage-collection candidates.
    """

    key: str
    path: Path
    mtime: float
    size: int
    meta: Dict[str, Any] = field(default_factory=dict)
    corrupt: bool = False
    stale: bool = False

    def age_seconds(self, now: Optional[float] = None) -> float:
        """Seconds since the entry was written."""
        return max(0.0, (time.time() if now is None else now) - self.mtime)

    def summary(self) -> str:
        """One-line human summary of what experiment the entry holds."""
        if self.corrupt:
            return "<corrupt entry>"
        meta = self.meta
        if meta.get("family") == "lifetime":
            parts = [
                str(meta.get("scheme", "?")),
                f"profile={meta.get('profile', '?')}",
                f"blocks={meta.get('block_count', '?')}",
                f"seed={meta.get('seed', '?')}",
                "[lifetime]",
            ]
            if self.stale:
                parts.append("[stale version]")
            return " ".join(parts)
        parts = [
            str(meta.get("scheme", "?")),
            f"pec={meta.get('pec', '?')}",
            str(meta.get("workload", "?")),
            f"requests={meta.get('requests', '?')}",
            f"seed={meta.get('seed', '?')}",
        ]
        if meta.get("scheme_params"):
            parts.append(f"params={meta['scheme_params']}")
        if self.stale:
            parts.append("[stale version]")
        return " ".join(parts)


@dataclass(frozen=True)
class GcResult:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    removed: Tuple[CacheEntry, ...] = ()
    kept: int = 0
    #: Orphaned ``<key>.tmp.<pid>.<tid>.<n>`` files swept up
    #: (interrupted puts).
    tmp_removed: int = 0

    @property
    def removed_count(self) -> int:
        return len(self.removed)

    @property
    def removed_bytes(self) -> int:
        return sum(entry.size for entry in self.removed)


#: Process-wide monotonic suffix for tmp files. The pid alone is not
#: unique once two threads of one process write the same key (the
#: campaign orchestrator's ThreadExecutor workers do exactly that), so
#: the tmp name also carries the thread id and a counter tick.
_TMP_COUNTER = itertools.count()


class ResultCache:
    """Directory of finished cell reports keyed by fingerprint."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        """Healthy entries only — corrupt/stale/foreign files read as
        misses at run time, so counting them would make resume-progress
        estimates (and ``cache ls`` totals) lie after a crash."""
        return sum(
            1
            for entry in self.entries()
            if not entry.corrupt and not entry.stale
        )

    def __contains__(self, key: str) -> bool:
        """True only when :meth:`get` would return a report.

        Membership must match retrievability: a truncated file or an
        entry written under an older :data:`CACHE_VERSION` reads as a
        miss, so reporting it as present would make callers (resume
        planners, the campaign orchestrator) skip cells they cannot
        actually load.
        """
        return self._load(key) is not None

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        """Parse one entry; None unless it is healthy and current."""
        return self._load_classified(key)[0]

    def _load_classified(
        self, key: str
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """(entry, miss reason) — reason None on a hit, ``"absent"``
        on a plain miss, else the unusable-entry class."""
        try:
            with self.path(key).open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None, "absent"
        except (OSError, ValueError):
            return None, "torn"
        if not isinstance(data, dict):
            return None, "torn"
        if data.get("version") != CACHE_VERSION:
            return None, "stale"
        if "report" not in data:
            return None, "corrupt"
        return data, None

    def get(self, key: str) -> Optional[Any]:
        """Load a cached result; None on miss or unreadable entry.

        Deserialization dispatches on the entry's ``family`` field
        (absent on legacy entries, which read as grid cells — see
        :mod:`repro.harness.results`), so one cache directory holds
        grid-cell reports and lifetime curves side by side.

        Hits, misses, and unusable entries count toward the
        ``backend="cache"`` telemetry series here — and only here, so
        ``in``-style membership probes never skew the hit rate.
        """
        metrics = store_metrics("cache")
        data, reason = self._load_classified(key)
        if data is None:
            metrics.get_outcome(hit=False).inc()
            if reason != "absent":
                metrics.bad_entry(reason).inc()
            return None
        try:
            report = result_from_json_dict(
                data.get("family", FAMILY_CELL), data["report"]
            )
        except (ValueError, KeyError, TypeError, ConfigError):
            metrics.get_outcome(hit=False).inc()
            metrics.bad_entry("corrupt").inc()
            return None
        metrics.get_outcome(hit=True).inc()
        return report

    def put(
        self,
        key: str,
        report: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist one finished result (either family)."""
        family = result_family(report)
        data = {
            "version": CACHE_VERSION,
            "key": key,
            "meta": meta or {},
            "report": result_to_json_dict(report),
        }
        # Legacy cell entries have no family field; writing cells the
        # same way keeps the on-disk bytes identical across versions.
        if family != FAMILY_CELL:
            data["family"] = family
        path = self.path(key)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
            f".{next(_TMP_COUNTER)}"
        )
        text = json.dumps(data)
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
        metrics = store_metrics("cache")
        metrics.puts.inc()
        metrics.bytes_written.inc(len(text))

    # --- inspection and garbage collection ---------------------------------

    def entries(self) -> List[CacheEntry]:
        """Every on-disk entry, oldest first, corrupt ones flagged.

        Never raises on unreadable files — they come back with
        ``corrupt=True`` so ``cache ls`` can report them and ``gc``
        can prune them.
        """
        found: List[CacheEntry] = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted between glob and stat
            key, meta, corrupt, stale = path.stem, {}, False, False
            try:
                with path.open("r", encoding="utf-8") as handle:
                    data = json.load(handle)
                meta = dict(data.get("meta") or {})
                if data.get("version") != CACHE_VERSION:
                    stale = True
                if "report" not in data:
                    corrupt = True
            except (OSError, ValueError, TypeError, AttributeError):
                corrupt = True
            found.append(
                CacheEntry(
                    key=key,
                    path=path,
                    mtime=stat.st_mtime,
                    size=stat.st_size,
                    meta=meta,
                    corrupt=corrupt,
                    stale=stale,
                )
            )
        found.sort(key=lambda entry: (entry.mtime, entry.key))
        return found

    def gc(
        self,
        max_entries: Optional[int] = None,
        older_than_s: Optional[float] = None,
        remove_corrupt: bool = True,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> GcResult:
        """Prune the cache; returns what was (or would be) removed.

        * ``older_than_s`` — drop entries older than this many seconds;
        * ``max_entries`` — after the age pass, keep only the newest N
          healthy entries;
        * ``remove_corrupt`` — also drop corrupt/stale entries (they
          read as misses anyway).

        Deletes are atomic per entry (``unlink``); a file vanishing
        concurrently is not an error. ``dry_run=True`` reports without
        deleting.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigError("max_entries must be >= 0")
        if older_than_s is not None and older_than_s < 0:
            raise ConfigError("older_than_s must be >= 0")
        now = time.time() if now is None else now
        doomed: List[CacheEntry] = []
        survivors: List[CacheEntry] = []
        for entry in self.entries():
            if remove_corrupt and (entry.corrupt or entry.stale):
                doomed.append(entry)
            elif (
                older_than_s is not None
                and entry.age_seconds(now) > older_than_s
            ):
                doomed.append(entry)
            else:
                survivors.append(entry)
        if max_entries is not None and len(survivors) > max_entries:
            # Keep-newest-N ranks healthy entries above corrupt/stale
            # ones (which read as misses anyway): the eviction head is
            # every unusable survivor first, then the oldest healthy
            # entries — never a healthy entry displaced by an unusable
            # one that survived only because remove_corrupt=False.
            ranked = sorted(
                survivors,
                key=lambda entry: (
                    not (entry.corrupt or entry.stale),
                    entry.mtime,
                    entry.key,
                ),
            )
            extra = len(survivors) - max_entries
            doomed.extend(ranked[:extra])
            survivors = sorted(
                ranked[extra:], key=lambda entry: (entry.mtime, entry.key)
            )
        if not dry_run:
            for entry in doomed:
                try:
                    entry.path.unlink()
                except FileNotFoundError:
                    pass
            if doomed:
                store_metrics("cache").gc_removed.inc(len(doomed))
        # Sweep tmp files orphaned by interrupted put() calls. A live
        # writer's tmp exists only for the instant between write and
        # os.replace, so anything older than a minute is litter.
        tmp_removed = 0
        for path in self.root.glob("*.tmp.*"):
            try:
                if now - path.stat().st_mtime > 60.0:
                    if not dry_run:
                        path.unlink()
                    tmp_removed += 1
            except OSError:
                pass
        return GcResult(
            removed=tuple(doomed), kept=len(survivors),
            tmp_removed=tmp_removed,
        )
