"""Persistent grid-cell result cache.

Layout: one JSON file per finished cell, named ``<fingerprint>.json``
inside the cache directory::

    <cache_dir>/
        2f1c9d...e0.json    {"version": 1, "meta": {...}, "report": {...}}
        88ab03...71.json

The fingerprint is a SHA-256 over everything that determines a cell's
outcome — the resolved :class:`~repro.config.SsdSpec` (via its
dataclass ``repr``, deterministic because every nested field is a
frozen dataclass of plain values), the scheme, PEC setpoint, workload,
request count, derived cell seed, and the remaining
``run_workload_cell`` knobs — plus a format version. Any change to any
input yields a different file name, so a cache directory can be shared
across campaigns and machines without collisions.

Resume semantics: the runner consults the cache before executing a
cell and writes each finished report back immediately, so a campaign
killed halfway resumes from its last completed cell on the next run —
a warm cache replays an entire grid without executing anything. Writes
are atomic (temp file + ``os.replace``) and corrupt or truncated
entries are treated as misses and recomputed, never propagated.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.config import SsdSpec
from repro.ssd.metrics import PerfReport

#: Bump when the cell-execution semantics or file format change; old
#: entries then miss instead of returning stale results.
CACHE_VERSION = 1


def cell_fingerprint(
    spec: SsdSpec,
    scheme: str,
    pec: int,
    workload: str,
    requests: int,
    seed: int,
    erase_suspension: bool = True,
    footprint_fraction: float = 0.85,
    precondition_fraction: float = 0.9,
    mispredict_rate: float = 0.0,
) -> str:
    """Stable hash of every input that determines a cell's report."""
    payload = "\n".join(
        [
            f"version={CACHE_VERSION}",
            f"spec={spec!r}",
            f"scheme={scheme}",
            f"pec={pec}",
            f"workload={workload}",
            f"requests={requests}",
            f"seed={seed}",
            f"erase_suspension={erase_suspension}",
            f"footprint_fraction={footprint_fraction!r}",
            f"precondition_fraction={precondition_fraction!r}",
            f"mispredict_rate={mispredict_rate!r}",
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory of finished cell reports keyed by fingerprint."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def get(self, key: str) -> Optional[PerfReport]:
        """Load a cached report; None on miss or unreadable entry."""
        path = self.path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("version") != CACHE_VERSION:
                return None
            return PerfReport.from_json_dict(data["report"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(
        self,
        key: str,
        report: PerfReport,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist one finished cell."""
        data = {
            "version": CACHE_VERSION,
            "key": key,
            "meta": meta or {},
            "report": report.to_json_dict(),
        }
        path = self.path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(data, handle)
        os.replace(tmp, path)
