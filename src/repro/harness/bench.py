"""Perf-tracking bench harness: the ``BENCH_PR5.json`` trajectory artifact.

Times the two hot campaign shapes — the five-scheme Figure 13 lifetime
sweep (object vs kernel engine, equal block count and step) and one
evaluation-grid cell (object event loop vs lean replay kernel,
bit-identical reports) — as median-of-N wall times, and writes a JSON
artifact future PRs can diff to catch regressions. Exposed as
``python -m repro bench`` and as the standalone
``benchmarks/perf_bench.py`` script; CI runs it in ``--smoke`` mode
(tiny block counts) on every push and uploads the artifact.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform as _platform
import statistics
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Bump when the artifact layout changes.
ARTIFACT_VERSION = 1

#: Default artifact path (repo-relative), named after the PR that
#: last moved the perf trajectory.
DEFAULT_ARTIFACT = "BENCH_PR5.json"


@dataclass(frozen=True)
class BenchConfig:
    """One bench campaign's knobs (recorded verbatim in the artifact)."""

    profile: str = "3D-TLC-48L"
    schemes: Tuple[str, ...] = ("baseline", "iispe", "dpes", "aero_cons", "aero")
    blocks: int = 128
    step: int = 50
    max_pec: int = 12000
    seed: int = 0xAE20
    repeats: int = 3
    grid_scheme: str = "aero"
    grid_pec: int = 2500
    grid_workload: str = "ali.A"
    grid_requests: int = 600
    grid_repeats: int = 7
    smoke: bool = False

    @classmethod
    def smoke_config(cls) -> "BenchConfig":
        """Tiny CI-sized campaign: exercises both engines in seconds."""
        return cls(
            blocks=16,
            step=100,
            max_pec=3000,
            repeats=2,
            grid_requests=120,
            grid_repeats=2,
            smoke=True,
        )


def _time_repeats(fn: Callable[[], object], repeats: int) -> List[float]:
    """Wall-time ``fn`` ``repeats`` times (perf_counter seconds).

    Garbage is collected before and collection disabled during each
    timed run, so GC pauses land neither inside a measurement nor
    differently across the engines being compared.
    """
    times = []
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        finally:
            gc.enable()
    return times


def _summary(times: Sequence[float]) -> Dict[str, object]:
    return {
        "times_s": [round(value, 6) for value in times],
        "median_s": round(statistics.median(times), 6),
    }


def bench_lifetime_sweep(config: BenchConfig) -> Dict[str, object]:
    """Time the Figure 13 sweep on both engines at equal work.

    Both engines cycle the same block sets with the same seeds, so the
    produced curves (recorded in the payload for cross-checking) cover
    the same P/E range — the speedup ratio compares equal work.
    """
    from repro.lifetime.comparison import compare_schemes
    from repro.nand.chip_types import profile_by_name

    profile = profile_by_name(config.profile)

    def sweep(engine: str):
        return compare_schemes(
            profile,
            scheme_keys=config.schemes,
            block_count=config.blocks,
            step=config.step,
            seed=config.seed,
            max_pec=config.max_pec,
            engine=engine,
        )

    result: Dict[str, object] = {}
    medians: Dict[str, float] = {}
    for engine in ("object", "kernel"):
        comparison = sweep(engine)  # warm-up + lifetime capture
        times = _time_repeats(lambda: sweep(engine), config.repeats)
        medians[engine] = statistics.median(times)
        result[f"engine_{engine}"] = {
            **_summary(times),
            "lifetime_pec": {
                key: curve.lifetime_pec
                for key, curve in comparison.curves.items()
            },
        }
    result["speedup"] = round(medians["object"] / medians["kernel"], 2)
    per_scheme: Dict[str, object] = {}
    for key in config.schemes:
        scheme_times = {}
        for engine in ("object", "kernel"):
            times = _time_repeats(
                lambda: compare_schemes(
                    profile,
                    scheme_keys=(key,),
                    block_count=config.blocks,
                    step=config.step,
                    seed=config.seed,
                    max_pec=config.max_pec,
                    engine=engine,
                ),
                config.repeats,
            )
            scheme_times[f"{engine}_s"] = round(statistics.median(times), 6)
        scheme_times["speedup"] = round(
            scheme_times["object_s"] / scheme_times["kernel_s"], 2
        )
        per_scheme[key] = scheme_times
    result["per_scheme"] = per_scheme
    return result


def bench_grid_cell(config: BenchConfig) -> Dict[str, object]:
    """Time one evaluation-grid cell on both replay engines.

    The same (scheme, PEC, workload) cell is replayed by the object
    event loop and by the lean cell kernel — the two produce
    bit-identical reports (pinned by tests), so the speedup compares
    strictly equal work. Runs are interleaved object/kernel so slow
    drift (thermal, cache, background load) hits both engines alike.
    """
    from repro.harness.cells import run_workload_cell

    def cell(engine):
        return run_workload_cell(
            config.grid_scheme,
            config.grid_pec,
            config.grid_workload,
            requests=config.grid_requests,
            seed=config.seed,
            engine=engine,
        )

    # Warm-up (trace synthesis, registry population, kernel import).
    cell("object")
    cell("kernel")
    times: Dict[str, List[float]] = {"object": [], "kernel": []}
    for _ in range(config.grid_repeats):
        for engine in ("object", "kernel"):
            times[engine] += _time_repeats(lambda: cell(engine), 1)
    medians = {
        engine: statistics.median(values) for engine, values in times.items()
    }
    return {
        "engine_object": _summary(times["object"]),
        "engine_kernel": _summary(times["kernel"]),
        "speedup": round(medians["object"] / medians["kernel"], 2),
        "cell": {
            "scheme": config.grid_scheme,
            "pec": config.grid_pec,
            "workload": config.grid_workload,
            "requests": config.grid_requests,
        },
    }


def run_bench(config: BenchConfig) -> Dict[str, object]:
    """Run the full bench and assemble the artifact payload."""
    return {
        "version": ARTIFACT_VERSION,
        "label": "PR5",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "config": asdict(config),
        "lifetime_sweep": bench_lifetime_sweep(config),
        "grid_cell": bench_grid_cell(config),
    }


def write_artifact(payload: Dict[str, object], path: str) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the bench flags (shared by the CLI and the script)."""
    defaults = BenchConfig()
    parser.add_argument("--out", default=DEFAULT_ARTIFACT,
                        help=f"artifact path (default: {DEFAULT_ARTIFACT})")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized campaign (seconds, not minutes)")
    parser.add_argument("--profile", default=defaults.profile)
    parser.add_argument("--schemes", default=",".join(defaults.schemes),
                        help="comma-separated scheme keys to sweep")
    parser.add_argument("--blocks", type=int, default=None,
                        help=f"blocks per scheme set (default: {defaults.blocks})")
    parser.add_argument("--step", type=int, default=None)
    parser.add_argument("--max-pec", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions per measurement (median wins)")
    parser.add_argument("--grid-requests", type=int, default=None)
    parser.add_argument("--grid-repeats", type=int, default=None,
                        help="interleaved object/kernel repetitions per "
                             "engine for the grid cell (median wins)")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--json", action="store_true",
                        help="print the payload to stdout as well")


def config_from_args(args: argparse.Namespace) -> BenchConfig:
    config = BenchConfig.smoke_config() if args.smoke else BenchConfig()
    overrides = {
        "profile": args.profile,
        "schemes": tuple(
            key.strip() for key in args.schemes.split(",") if key.strip()
        ),
        "seed": args.seed,
    }
    for name in (
        "blocks", "step", "max_pec", "repeats", "grid_requests",
        "grid_repeats",
    ):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    return replace(config, **overrides)


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the bench described by parsed flags; returns exit code."""
    config = config_from_args(args)
    payload = run_bench(config)
    write_artifact(payload, args.out)
    sweep = payload["lifetime_sweep"]
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"lifetime sweep ({len(config.schemes)} schemes, "
            f"{config.blocks} blocks, step {config.step}): "
            f"object {sweep['engine_object']['median_s']:.3f}s, "
            f"kernel {sweep['engine_kernel']['median_s']:.3f}s "
            f"-> {sweep['speedup']:.1f}x"
        )
        cell = payload["grid_cell"]
        print(
            f"grid cell ({config.grid_scheme}@{config.grid_pec} "
            f"{config.grid_workload}, {config.grid_requests} requests): "
            f"object {cell['engine_object']['median_s']:.3f}s, "
            f"kernel {cell['engine_kernel']['median_s']:.3f}s "
            f"-> {cell['speedup']:.1f}x"
        )
    print(f"wrote {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (used by ``benchmarks/perf_bench.py``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
