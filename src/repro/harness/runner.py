"""Grid runner: cached, optionally parallel campaign execution.

``GridRunner`` turns a (schemes x pec_points x workloads) request into
an ordered list of independent cell jobs, satisfies as many as it can
from the :class:`~repro.harness.cache.ResultCache`, fans the rest out
through the configured executor, and assembles the
:class:`~repro.harness.grid.EvaluationGrid` in the canonical
pec -> workload -> scheme order regardless of completion order.

Determinism: the runner derives one seed per (pec, workload) point via
:func:`repro.rng.derive` — shared by every scheme at that point, so
schemes are always compared on the *same* trace and device-variation
draw, as in the paper — and each cell is a pure function of its job
description. A ``ProcessExecutor`` grid is therefore bit-identical to
a ``SerialExecutor`` grid, and a cached report is bit-identical to a
recomputed one.

Resume: pass ``cache_dir`` and every finished cell is persisted
immediately; re-running the same campaign (same spec, schemes,
setpoints, workloads, requests, seed) skips straight past completed
cells, so an interrupted campaign continues where it stopped.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.config import SsdSpec
from repro.errors import ConfigError
from repro.experiments.registry import WORKLOADS
from repro.harness.cache import ResultCache, cell_fingerprint
from repro.harness.cells import (
    PAPER_PEC_POINTS,
    PAPER_SCHEMES,
    run_workload_cell,
)
from repro.harness.executors import Executor, SerialExecutor
from repro.harness.grid import EvaluationGrid, GridCell
from repro.harness.store import ResultStore
from repro.rng import derive
from repro.ssd.metrics import PerfReport
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class CellJob:
    """Self-contained work order for one grid cell (picklable).

    ``workload`` is the abbreviation used for labels and seed
    derivation; ``profile`` carries a caller-supplied
    :class:`WorkloadProfile` when it differs from the registry entry
    for that abbreviation (and is folded into the fingerprint, so a
    tweaked profile never collides with the stock workload's cache).
    """

    scheme: str
    pec: int
    workload: str
    spec: SsdSpec
    requests: int
    erase_suspension: bool
    seed: int
    profile: Optional[WorkloadProfile] = None
    #: Extra scheme knobs as sorted (key, value) pairs — a tuple so the
    #: job stays frozen/picklable with a canonical repr;
    #: ``mispredict_rate`` and ``rber_requirement`` travel here when
    #: non-default.
    scheme_params: Tuple[Tuple[str, Any], ...] = ()
    #: Execution engine (``auto``/``object``/``kernel``). Deliberately
    #: absent from the fingerprint: the kernel replay is report-identical
    #: to the object path (pinned by tests), so both engines share one
    #: cache entry per cell.
    engine: str = "auto"

    #: Family discriminator for the campaign layer and result stores;
    #: lifetime jobs (:class:`repro.lifetime.spec.LifetimeJob`) carry
    #: ``"lifetime"``.
    family = "cell"

    def store_meta(self) -> dict:
        """Human-readable provenance stored alongside the report."""
        meta: dict = {
            "scheme": self.scheme,
            "pec": self.pec,
            "workload": self.workload,
            "requests": self.requests,
            "seed": self.seed,
        }
        if self.scheme_params:
            meta["scheme_params"] = dict(self.scheme_params)
        return meta

    def describe(self) -> str:
        """Short label for logs and quarantine records."""
        return f"{self.scheme}/{self.pec}/{self.workload}"

    @property
    def fingerprint(self) -> str:
        # mispredict_rate keeps its dedicated fingerprint slot (and the
        # remaining params are folded in only when present) so caches
        # written before scheme_params existed remain valid. float()
        # keeps an integer-spelled rate (0 vs 0.0) from splitting the
        # fingerprint via its repr.
        params = dict(self.scheme_params)
        mispredict_rate = float(params.pop("mispredict_rate", 0.0))
        return cell_fingerprint(
            spec=self.spec,
            scheme=self.scheme,
            pec=self.pec,
            workload=(
                self.workload if self.profile is None else repr(self.profile)
            ),
            requests=self.requests,
            seed=self.seed,
            erase_suspension=self.erase_suspension,
            mispredict_rate=mispredict_rate,
            scheme_params=tuple(sorted(params.items())),
        )


def grid_from_jobs(
    jobs: Sequence[CellJob], reports: Sequence[PerfReport]
) -> EvaluationGrid:
    """Assemble an :class:`EvaluationGrid` from jobs and their reports.

    Shared by :meth:`GridRunner.run` and
    :func:`repro.experiments.run_experiments`, so the two entry points
    cannot drift in how cells are keyed.
    """
    grid = EvaluationGrid()
    for job, report in zip(jobs, reports):
        grid.add(
            GridCell(
                scheme=job.scheme,
                pec=job.pec,
                workload=job.workload,
                report=report,
            )
        )
    return grid


def execute_cell(job: CellJob) -> PerfReport:
    """Run one cell job (module-level so worker processes can import it)."""
    return run_workload_cell(
        job.scheme,
        job.pec,
        job.profile if job.profile is not None else job.workload,
        spec=job.spec,
        requests=job.requests,
        erase_suspension=job.erase_suspension,
        seed=job.seed,
        scheme_params=dict(job.scheme_params),
        engine=job.engine,
    )


def execute_job(job: Any) -> Any:
    """Run one job of either campaign family (module-level, picklable).

    Grid cells go through :func:`execute_cell`; any other family
    (e.g. :class:`repro.lifetime.spec.LifetimeJob`) must bring its own
    ``execute()``. Dispatching here keeps the harness importable
    without the lifetime stack while letting every executor, the
    :class:`GridRunner`, and the campaign supervisor run mixed job
    lists through one entry point.
    """
    if isinstance(job, CellJob):
        return execute_cell(job)
    execute = getattr(job, "execute", None)
    if execute is None:
        raise ConfigError(
            f"job of type {type(job).__name__} is neither a CellJob "
            "nor provides execute()"
        )
    return execute()


def plan_jobs(
    schemes: Sequence[str],
    pec_points: Sequence[int],
    workloads: Sequence[Union[str, WorkloadProfile]],
    requests: int,
    spec: Optional[SsdSpec],
    erase_suspension: bool,
    seed: int,
    engine: str = "auto",
) -> List[CellJob]:
    """Plan a campaign's jobs in canonical pec -> workload -> scheme order.

    The single planner behind :meth:`GridRunner.plan` and
    :meth:`repro.campaign.spec.CampaignSpec.jobs`, so grid runs and
    orchestrated campaigns derive identical seeds and fingerprints —
    a cell cached by one is served to the other.
    """
    jobs: List[CellJob] = []
    for pec in pec_points:
        for workload in workloads:
            if isinstance(workload, WorkloadProfile):
                abbr = workload.abbr
                # A profile identical to the registry entry shares
                # the stock workload's cache; any tweak keeps the
                # object (and a distinct fingerprint).
                try:
                    profile = (
                        None
                        if workload == WORKLOADS.resolve(abbr)
                        else workload
                    )
                except ConfigError:
                    profile = workload
            else:
                abbr, profile = workload, None
            # One seed per (pec, workload) point, shared by every
            # scheme so they replay the same trace on the same
            # device-variation draw.
            cell_seed = derive(seed, "grid", pec, abbr)
            cell_spec = (
                spec if spec is not None
                else SsdSpec.small_test(seed=cell_seed)
            )
            for scheme in schemes:
                jobs.append(
                    CellJob(
                        scheme=scheme,
                        pec=pec,
                        workload=abbr,
                        spec=cell_spec,
                        requests=requests,
                        erase_suspension=erase_suspension,
                        seed=cell_seed,
                        profile=profile,
                        engine=engine,
                    )
                )
    return jobs


@dataclass
class RunStats:
    """Where the cells of the last campaign came from."""

    executed: int = 0
    cached: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cached


class GridRunner:
    """Executes evaluation grids through an executor and a cache."""

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        cache: Optional[ResultStore] = None,
    ):
        """``cache`` accepts any :class:`ResultStore` (e.g. a
        :class:`~repro.campaign.store.ShardedResultStore`);
        ``cache_dir`` remains the one-JSON-file-per-cell shorthand for
        ``cache=ResultCache(cache_dir)``. Passing both is ambiguous.
        """
        if cache is not None and cache_dir is not None:
            raise ConfigError("pass either cache or cache_dir, not both")
        self.executor = executor or SerialExecutor()
        self.cache: Optional[ResultStore] = (
            cache if cache is not None
            else ResultCache(cache_dir) if cache_dir is not None
            else None
        )
        self.stats = RunStats()

    # --- job planning -------------------------------------------------------

    def plan(
        self,
        schemes: Sequence[str],
        pec_points: Sequence[int],
        workloads: Sequence[Union[str, WorkloadProfile]],
        requests: int,
        spec: Optional[SsdSpec],
        erase_suspension: bool,
        seed: int,
        engine: str = "auto",
    ) -> List[CellJob]:
        """The campaign's jobs in canonical pec -> workload -> scheme order."""
        return plan_jobs(
            schemes, pec_points, workloads, requests, spec,
            erase_suspension, seed, engine=engine,
        )

    # --- execution ----------------------------------------------------------

    def execute_jobs(self, jobs: Sequence[Any]) -> List[Any]:
        """Execute jobs, results in job order; cache-aware.

        The reusable core of :meth:`run` — the declarative experiment
        layer (:func:`repro.experiments.run_experiments`) feeds
        :class:`CellJob` lists resolved from ``ExperimentSpec`` objects
        through the same cache-then-executor path, so CLI runs, spec
        files, and grid campaigns share cache entries. Jobs of any
        campaign family run here — lifetime jobs
        (:class:`repro.lifetime.spec.LifetimeJob`) interleave freely
        with grid cells; each needs only ``fingerprint``,
        ``store_meta()``, and :func:`execute_job` support. Updates
        :attr:`stats`.
        """
        reports: List[Optional[Any]] = [None] * len(jobs)
        pending: List[int] = []
        if self.cache is not None:
            for index, job in enumerate(jobs):
                cached = self.cache.get(job.fingerprint)
                if cached is not None:
                    reports[index] = cached
                else:
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))

        # Stream results out of the executor and persist each one the
        # moment it arrives, so an interrupted campaign keeps every
        # completed cell and resumes from there.
        fresh = self.executor.imap(execute_job, [jobs[i] for i in pending])
        for index, report in zip(pending, fresh):
            reports[index] = report
            if self.cache is not None:
                job = jobs[index]
                self.cache.put(job.fingerprint, report, meta=job.store_meta())

        self.stats = RunStats(
            executed=len(pending), cached=len(jobs) - len(pending)
        )
        return reports

    def run(
        self,
        schemes: Sequence[str] = PAPER_SCHEMES,
        pec_points: Sequence[int] = PAPER_PEC_POINTS,
        workloads: Sequence[Union[str, WorkloadProfile]] = ("ali.A", "hm", "usr"),
        requests: int = 1200,
        spec: Optional[SsdSpec] = None,
        erase_suspension: bool = True,
        seed: int = 0xAE20,
        engine: str = "auto",
    ) -> EvaluationGrid:
        """Run a campaign; cached cells load from disk, the rest execute."""
        jobs = self.plan(
            schemes, pec_points, workloads, requests, spec,
            erase_suspension, seed, engine=engine,
        )
        return grid_from_jobs(jobs, self.execute_jobs(jobs))


def run_grid(
    schemes: Sequence[str] = PAPER_SCHEMES,
    pec_points: Sequence[int] = PAPER_PEC_POINTS,
    workloads: Sequence[Union[str, WorkloadProfile]] = ("ali.A", "hm", "usr"),
    requests: int = 1200,
    spec: Optional[SsdSpec] = None,
    erase_suspension: bool = True,
    seed: int = 0xAE20,
    engine: str = "auto",
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> EvaluationGrid:
    """Run a (scheme x pec x workload) grid.

    The one-call façade over :class:`GridRunner`: pass ``executor``
    (e.g. ``ProcessExecutor(4)``) to parallelize across processes and
    ``cache_dir`` to persist/reuse finished cells.
    """
    runner = GridRunner(executor=executor, cache_dir=cache_dir)
    return runner.run(
        schemes=schemes,
        pec_points=pec_points,
        workloads=workloads,
        requests=requests,
        spec=spec,
        erase_suspension=erase_suspension,
        seed=seed,
        engine=engine,
    )
