"""Single-cell evaluation: one (scheme, PEC, workload) experiment.

``run_workload_cell`` is the unit of work of the Section 7 campaign:
build an SSD at the wear point, precondition to steady state, replay a
synthetic Table 3 workload, and return the performance report. It is a
pure function of its arguments — the same arguments always produce the
same :class:`~repro.ssd.metrics.PerfReport` — which is what makes grid
cells safe to cache on disk and to fan out across worker processes.

Scheme keys and workload abbreviations resolve through the plugin
registries (:data:`repro.experiments.SCHEMES` /
:data:`repro.experiments.WORKLOADS`), so registered third-party
schemes and workloads run through the same cell path as the built-ins.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.config import SsdSpec
from repro.errors import ConfigError
from repro.experiments.registry import WORKLOADS
from repro.kernels import ENGINES
from repro.rng import derive
from repro.ssd.builder import build_ssd
from repro.ssd.metrics import PerfReport
from repro.telemetry.instruments import kernel_metrics
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.synthetic import SyntheticTraceGenerator

#: The paper's evaluation PEC setpoints (Figure 14).
PAPER_PEC_POINTS = (500, 2500, 4500)

#: The paper's comparison schemes, in presentation order.
PAPER_SCHEMES = ("baseline", "iispe", "dpes", "aero_cons", "aero")


def run_workload_cell(
    scheme: str,
    pec: int,
    workload: WorkloadProfile | str,
    spec: Optional[SsdSpec] = None,
    requests: int = 1200,
    footprint_fraction: float = 0.85,
    precondition_fraction: float = 0.9,
    erase_suspension: bool = True,
    seed: int = 0xAE20,
    mispredict_rate: float = 0.0,
    scheme_params: Optional[Mapping[str, Any]] = None,
    engine: str = "auto",
) -> PerfReport:
    """Run one evaluation cell and return its performance report.

    ``scheme_params`` carries any extra scheme knobs (e.g.
    ``rber_requirement``) to the scheme factory; the historical
    ``mispredict_rate`` argument is folded into it (an explicit
    ``scheme_params['mispredict_rate']`` wins).

    ``engine`` selects how the timed replay executes: ``object`` walks
    the per-transaction event loop, ``kernel`` runs the vectorized cell
    replay (identical report, pinned by tests), and ``auto`` picks the
    kernel whenever the built SSD supports it.
    """
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    if isinstance(workload, str):
        workload = WORKLOADS.resolve(workload)
    if spec is None:
        spec = SsdSpec.small_test(seed=seed)
    spec = spec.with_scheduler(erase_suspension=erase_suspension)
    params = dict(scheme_params or {})
    params.setdefault("mispredict_rate", mispredict_rate)
    ssd = build_ssd(spec, scheme, pec_setpoint=pec, **params)
    use_kernel = False
    if engine != "object":
        from repro.kernels.cell import (
            kernel_replay_supported,
            precondition_kernel,
            run_trace_kernel,
        )

        use_kernel = kernel_replay_supported(ssd)
        if not use_kernel and engine == "kernel":
            raise ConfigError(
                f"scheme {scheme!r} / SSD configuration has no kernel "
                "replay; use engine='auto' or 'object'"
            )
    footprint_pages = int(spec.logical_pages * precondition_fraction)
    if use_kernel:
        # Defer the write-back: the replay kernel continues from the
        # preconditioned lean state and restores the real FTL once.
        lean = precondition_kernel(ssd, footprint_pages, write_back=False)
    else:
        ssd.precondition(footprint_pages=footprint_pages)
    generator = SyntheticTraceGenerator(
        workload,
        footprint_bytes=int(spec.logical_bytes * footprint_fraction),
        seed=derive(seed, "trace", workload.abbr, pec),
    )
    trace = generator.generate(requests)
    kernel_metrics().engine_cells.labels(
        site="cell", engine="kernel" if use_kernel else "object"
    ).inc()
    if use_kernel:
        return run_trace_kernel(
            ssd, trace, workload_name=workload.abbr, lean=lean
        )
    return ssd.run_trace(trace, workload_name=workload.abbr)
