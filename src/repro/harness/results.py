"""Result-family dispatch for the persistent stores.

Both store backends (:class:`~repro.harness.cache.ResultCache` and
:class:`~repro.campaign.store.ShardedResultStore`) persist results as
JSON records. Historically every record held a grid-cell
:class:`~repro.ssd.metrics.PerfReport`; the unified campaign surface
also stores lifetime-family :class:`~repro.lifetime.simulator.
LifetimeCurve` results. Records carry a ``family`` discriminator
(absent on legacy records, which therefore read as cells — no cache
or store version bump), and this module is the single place both
backends resolve a family to its (de)serializer.

Lifetime types import lazily: the harness package must stay importable
without pulling the lifetime simulator stack, and the lifetime package
itself imports the harness.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ConfigError
from repro.ssd.metrics import PerfReport

#: Grid-cell replay results (:class:`PerfReport`).
FAMILY_CELL = "cell"
#: Lifetime-curve results (:class:`LifetimeCurve`).
FAMILY_LIFETIME = "lifetime"

RESULT_FAMILIES = (FAMILY_CELL, FAMILY_LIFETIME)


def result_family(result: Any) -> str:
    """The family discriminator a result persists under."""
    if isinstance(result, PerfReport):
        return FAMILY_CELL
    from repro.lifetime.simulator import LifetimeCurve

    if isinstance(result, LifetimeCurve):
        return FAMILY_LIFETIME
    raise ConfigError(
        f"cannot store result of type {type(result).__name__}; "
        f"known families: {', '.join(RESULT_FAMILIES)}"
    )


def result_to_json_dict(result: Any) -> Mapping[str, Any]:
    """Serialize a result of any family to plain JSON types."""
    result_family(result)  # fail fast on foreign types
    return result.to_json_dict()


def result_from_json_dict(family: str, data: Mapping[str, Any]) -> Any:
    """Deserialize a stored record's payload by family.

    Raises :class:`ConfigError` for unknown families; store readers
    treat that (like any other malformed payload) as a miss.
    """
    if family == FAMILY_CELL:
        return PerfReport.from_json_dict(data)
    if family == FAMILY_LIFETIME:
        from repro.lifetime.simulator import LifetimeCurve

        return LifetimeCurve.from_json_dict(data)
    raise ConfigError(
        f"unknown result family {family!r}; "
        f"known families: {', '.join(RESULT_FAMILIES)}"
    )
