"""Pluggable work executors for embarrassingly parallel campaigns.

Both executors implement the same two methods — ``map(fn, items)``
with list semantics and its streaming form ``imap(fn, items)`` —
returning results in the order of ``items``, regardless of which
worker finished first. ``fn`` must be a module-level function and
``items`` picklable objects, so the same call works under either
executor; beyond that the two are interchangeable, and any code written
against :class:`SerialExecutor` parallelizes by swapping in a
:class:`ProcessExecutor`.

Determinism: every job in this library is a pure function of its
arguments (all randomness flows from explicit seeds through
:func:`repro.rng.derive`), so ``SerialExecutor`` and
``ProcessExecutor`` produce bit-identical results — parallelism changes
wall-clock time, never outcomes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.errors import ConfigError


@runtime_checkable
class Executor(Protocol):
    """Structural type every campaign executor satisfies.

    Anything with ordered ``map``/``imap`` and a ``workers`` count is
    an executor — the three built-ins below, and any third-party
    implementation (an async bridge, a cluster client) type-checks
    against this protocol without subclassing anything. ``imap`` must
    yield results in the order of ``items`` and lazily enough that a
    caller persisting them incrementally loses at most the
    not-yet-yielded tail on interruption.
    """

    workers: int

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> List[Any]: ...

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]: ...


class SerialExecutor:
    """Run jobs one after another in the calling process (default)."""

    workers = 1

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Lazily yield ``fn(item)`` per item, in order.

        Laziness is what gives cached campaigns their resume
        granularity: the runner persists each result as it is yielded,
        so an interrupted run keeps every cell completed so far.
        """
        for item in items:
            yield fn(item)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ProcessExecutor:
    """Fan jobs out across ``workers`` OS processes.

    Results are returned in submission order. Worker processes are
    created per ``map`` call and torn down afterwards, so the executor
    object itself stays picklable and reusable.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError(f"need at least 1 worker, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Yield results in submission order as workers finish them.

        Results stream back while later jobs are still running, so a
        caller persisting them incrementally (the grid runner's cache)
        loses at most the not-yet-yielded tail on interruption.
        """
        items = list(items)
        if not items:
            return
        workers = min(self.workers, len(items))
        if workers == 1:
            for item in items:
                yield fn(item)
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            yield from pool.map(fn, items, chunksize=1)

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


class ThreadExecutor:
    """Fan jobs out across ``workers`` threads in this process.

    Threads share memory, so there is no pickle tax on job arguments or
    results — the right trade for jobs that release the GIL (the NumPy
    batch kernels in :mod:`repro.kernels` do, which is why lifetime
    campaigns on the kernel engine fan out better over threads than
    over processes). Pure-Python jobs still serialize on the GIL; use
    :class:`ProcessExecutor` for those.

    Results are returned in submission order, and jobs being pure
    functions of their arguments makes thread, process, and serial runs
    bit-identical — the same determinism contract as the other two
    executors.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError(f"need at least 1 worker, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Yield results in submission order as workers finish them."""
        items = list(items)
        if not items:
            return
        workers = min(self.workers, len(items))
        if workers == 1:
            for item in items:
                yield fn(item)
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            yield from pool.map(fn, items)

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"
