"""Pluggable work executors for embarrassingly parallel campaigns.

Both executors implement the same two methods — ``map(fn, items)``
with list semantics and its streaming form ``imap(fn, items)`` —
returning results in the order of ``items``, regardless of which
worker finished first. ``fn`` must be a module-level function and
``items`` picklable objects, so the same call works under either
executor; beyond that the two are interchangeable, and any code written
against :class:`SerialExecutor` parallelizes by swapping in a
:class:`ProcessExecutor`.

Determinism: every job in this library is a pure function of its
arguments (all randomness flows from explicit seeds through
:func:`repro.rng.derive`), so ``SerialExecutor`` and
``ProcessExecutor`` produce bit-identical results — parallelism changes
wall-clock time, never outcomes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.errors import ConfigError


class SerialExecutor:
    """Run jobs one after another in the calling process (default)."""

    workers = 1

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Lazily yield ``fn(item)`` per item, in order.

        Laziness is what gives cached campaigns their resume
        granularity: the runner persists each result as it is yielded,
        so an interrupted run keeps every cell completed so far.
        """
        for item in items:
            yield fn(item)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ProcessExecutor:
    """Fan jobs out across ``workers`` OS processes.

    Results are returned in submission order. Worker processes are
    created per ``map`` call and torn down afterwards, so the executor
    object itself stays picklable and reusable.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError(f"need at least 1 worker, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Yield results in submission order as workers finish them.

        Results stream back while later jobs are still running, so a
        caller persisting them incrementally (the grid runner's cache)
        loses at most the not-yet-yielded tail on interruption.
        """
        items = list(items)
        if not items:
            return
        workers = min(self.workers, len(items))
        if workers == 1:
            for item in items:
                yield fn(item)
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            yield from pool.map(fn, items, chunksize=1)

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"
