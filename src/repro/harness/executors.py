"""Pluggable work executors for embarrassingly parallel campaigns.

Both executors implement the same two methods — ``map(fn, items)``
with list semantics and its streaming form ``imap(fn, items)`` —
returning results in the order of ``items``, regardless of which
worker finished first. ``fn`` must be a module-level function and
``items`` picklable objects, so the same call works under either
executor; beyond that the two are interchangeable, and any code written
against :class:`SerialExecutor` parallelizes by swapping in a
:class:`ProcessExecutor`.

Determinism: every job in this library is a pure function of its
arguments (all randomness flows from explicit seeds through
:func:`repro.rng.derive`), so ``SerialExecutor`` and
``ProcessExecutor`` produce bit-identical results — parallelism changes
wall-clock time, never outcomes.

Below the pool executors live the *supervised worker* primitives
(:class:`ProcessWorker`, :class:`ThreadWorker`): single workers that a
supervisor can kill, observe dying, and replace — the mechanism under
:class:`repro.campaign.supervisor.CellSupervisor`. Pool executors
abort their whole ``map`` when one worker dies; supervised workers
turn the same event into a ``died`` message on a queue.
"""

from __future__ import annotations

import functools
import multiprocessing as mp
import os
import queue
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.errors import ConfigError


@runtime_checkable
class Executor(Protocol):
    """Structural type every campaign executor satisfies.

    Anything with ordered ``map``/``imap`` and a ``workers`` count is
    an executor — the three built-ins below, and any third-party
    implementation (an async bridge, a cluster client) type-checks
    against this protocol without subclassing anything. ``imap`` must
    yield results in the order of ``items`` and lazily enough that a
    caller persisting them incrementally loses at most the
    not-yet-yielded tail on interruption.
    """

    workers: int

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> List[Any]: ...

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]: ...


class SerialExecutor:
    """Run jobs one after another in the calling process (default)."""

    workers = 1

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Lazily yield ``fn(item)`` per item, in order.

        Laziness is what gives cached campaigns their resume
        granularity: the runner persists each result as it is yielded,
        so an interrupted run keeps every cell completed so far.
        """
        for item in items:
            yield fn(item)

    def __repr__(self) -> str:
        return "SerialExecutor()"


def _snapshot_task(fn: Callable[[Any], Any], item: Any) -> Tuple[Any, Any]:
    """Worker-side wrapper: run ``fn(item)`` under a fresh telemetry
    registry and return ``(result, registry_snapshot)``.

    Process workers would otherwise increment counters in a forked
    registry the coordinator never sees; shipping the snapshot home
    with the result lets the parent merge it on arrival (see
    :meth:`repro.telemetry.MetricsRegistry.merge_snapshot`).
    """
    from repro.telemetry import scoped_registry

    with scoped_registry() as registry:
        result = fn(item)
    return result, registry.snapshot()


class ProcessExecutor:
    """Fan jobs out across ``workers`` OS processes.

    Results are returned in submission order. Worker processes are
    created per ``map`` call and torn down afterwards, so the executor
    object itself stays picklable and reusable.

    Telemetry recorded inside a worker (counters, histograms) is
    snapshotted per task and merged into the coordinator's default
    registry as each result is yielded, so process fan-out and the
    in-process executors report identical metrics.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError(f"need at least 1 worker, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Yield results in submission order as workers finish them.

        Results stream back while later jobs are still running, so a
        caller persisting them incrementally (the grid runner's cache)
        loses at most the not-yet-yielded tail on interruption.
        """
        items = list(items)
        if not items:
            return
        workers = min(self.workers, len(items))
        if workers == 1:
            # Inline path: no child process, so jobs already record
            # into the parent registry — no snapshot round-trip.
            for item in items:
                yield fn(item)
            return
        from repro.telemetry import get_default_registry

        with ProcessPoolExecutor(max_workers=workers) as pool:
            for result, snapshot in pool.map(
                functools.partial(_snapshot_task, fn), items, chunksize=1
            ):
                get_default_registry().merge_snapshot(snapshot)
                yield result

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


class ThreadExecutor:
    """Fan jobs out across ``workers`` threads in this process.

    Threads share memory, so there is no pickle tax on job arguments or
    results — the right trade for jobs that release the GIL (the NumPy
    batch kernels in :mod:`repro.kernels` do, which is why lifetime
    campaigns on the kernel engine fan out better over threads than
    over processes). Pure-Python jobs still serialize on the GIL; use
    :class:`ProcessExecutor` for those.

    Results are returned in submission order, and jobs being pure
    functions of their arguments makes thread, process, and serial runs
    bit-identical — the same determinism contract as the other two
    executors.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError(f"need at least 1 worker, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Yield results in submission order as workers finish them."""
        items = list(items)
        if not items:
            return
        workers = min(self.workers, len(items))
        if workers == 1:
            for item in items:
                yield fn(item)
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            yield from pool.map(fn, items)

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


# --- supervised workers ------------------------------------------------------


class WorkerEvent:
    """One message from a supervised worker to its supervisor.

    ``kind`` is ``"result"`` (payload = the task's return value),
    ``"error"`` (payload = ``(exc_type_name, message, traceback_text)``)
    or ``"died"`` (the worker process exited without reporting;
    payload = its exit code). ``task_id`` is ``-1`` for a worker that
    died idle.
    """

    __slots__ = ("kind", "worker", "task_id", "payload")

    def __init__(self, kind: str, worker: str, task_id: int, payload: Any):
        self.kind = kind
        self.worker = worker
        self.task_id = task_id
        self.payload = payload

    def __repr__(self) -> str:
        return (
            f"WorkerEvent({self.kind!r}, worker={self.worker!r}, "
            f"task_id={self.task_id})"
        )


def _error_payload(exc: BaseException) -> Tuple[str, str, str]:
    return (type(exc).__name__, str(exc), traceback.format_exc())


def _process_worker_main(fn: Callable[[Any], Any], conn) -> None:
    """Child-process loop: recv ``(task_id, task)``, send results back.

    A ``None`` message is the clean-shutdown sentinel. Exceptions are
    reduced to strings — a failing task must never take the reporting
    channel down with an unpicklable exception object.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, task = message
        try:
            result = fn(task)
        except BaseException as exc:
            try:
                conn.send(("error", task_id, _error_payload(exc)))
            except (OSError, ValueError):
                break
        else:
            conn.send(("result", task_id, result))
    conn.close()


class ProcessWorker:
    """One killable OS-process worker reporting onto a shared queue.

    Unlike a pool, death is an *event*, not an abort: if the child
    exits without reporting — ``os._exit``, SIGKILL, a segfault — the
    reader thread turns the broken pipe into a ``died`` event carrying
    the in-flight task id, and the supervisor replaces the worker.
    ``fn`` and tasks must be picklable (module-level function).
    """

    kind = "process"

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Any],
        events: "queue.Queue[WorkerEvent]",
    ):
        ctx = mp.get_context()
        self.name = name
        self.events = events
        self.task_id: Optional[int] = None
        self._closed = False
        parent, child = ctx.Pipe()
        self._conn = parent
        self._proc = ctx.Process(
            target=_process_worker_main,
            args=(fn, child),
            name=name,
            daemon=True,
        )
        self._proc.start()
        child.close()
        self._reader = threading.Thread(
            target=self._read, name=f"{name}-reader", daemon=True
        )
        self._reader.start()

    def _read(self) -> None:
        while True:
            try:
                kind, task_id, payload = self._conn.recv()
            except (EOFError, OSError):
                break
            self.task_id = None
            self.events.put(WorkerEvent(kind, self.name, task_id, payload))
        in_flight = self.task_id
        self.task_id = None
        if not self._closed:
            self._proc.join(timeout=5.0)
            self.events.put(
                WorkerEvent(
                    "died",
                    self.name,
                    -1 if in_flight is None else in_flight,
                    self._proc.exitcode,
                )
            )

    @property
    def alive(self) -> bool:
        return self._proc.is_alive()

    def submit(self, task_id: int, task: Any) -> None:
        """Hand the worker one task; raises ``OSError`` if it is dead
        (the pending ``died`` event still reports the prior task)."""
        self.task_id = task_id
        try:
            self._conn.send((task_id, task))
        except (OSError, ValueError):
            self.task_id = None
            raise OSError(f"worker {self.name} is not accepting tasks")

    def kill(self) -> None:
        """SIGKILL the child — the timeout enforcement primitive."""
        self._proc.kill()

    def close(self) -> None:
        """Clean shutdown: sentinel, bounded join, then force-kill."""
        self._closed = True
        try:
            self._conn.send(None)
        except (OSError, ValueError):
            pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5.0)
        self._conn.close()


class ThreadWorker:
    """One thread worker reporting onto a shared queue.

    Threads cannot be killed, so :meth:`kill` *abandons*: the thread
    keeps running its current task to completion, but the supervisor
    drops its name from the live set, so whatever it eventually
    reports lands as an event for an unknown task and is discarded.
    """

    kind = "thread"

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Any],
        events: "queue.Queue[WorkerEvent]",
    ):
        self.name = name
        self.events = events
        self.task_id: Optional[int] = None
        self.abandoned = False
        self._fn = fn
        self._inbox: "queue.Queue[Any]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while True:
            message = self._inbox.get()
            if message is None:
                return
            task_id, task = message
            try:
                result = self._fn(task)
            except BaseException as exc:
                kind, payload = "error", _error_payload(exc)
            else:
                kind, payload = "result", result
            self.task_id = None
            self.events.put(WorkerEvent(kind, self.name, task_id, payload))

    @property
    def alive(self) -> bool:
        return self._thread.is_alive() and not self.abandoned

    def submit(self, task_id: int, task: Any) -> None:
        self.task_id = task_id
        self._inbox.put((task_id, task))

    def kill(self) -> None:
        self.abandoned = True

    def close(self) -> None:
        self._inbox.put(None)
