"""Evaluation-grid container and figure-shaped projections.

:class:`EvaluationGrid` holds every cell of one campaign and keeps a
``(scheme, pec, workload)`` index alongside the cell list, so
``report`` lookups are O(1) even on the full 5-scheme x 3-setpoint x
11-workload grid the figures iterate over many times. Cells should be
added through :meth:`EvaluationGrid.add`; code that appends to
``cells`` directly, or replaces cells in place, still works — every
indexed hit is validated against the cell list and the index is
rebuilt lazily whenever it disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ssd.metrics import PerfReport, normalize

#: Lookup key of one cell: (scheme, pec, workload).
CellKey = Tuple[str, int, str]


@dataclass
class GridCell:
    """One (scheme, pec, workload) evaluation cell."""

    scheme: str
    pec: int
    workload: str
    report: PerfReport

    @property
    def key(self) -> CellKey:
        return (self.scheme, self.pec, self.workload)


@dataclass
class EvaluationGrid:
    """All cells of one evaluation campaign, with lookup helpers."""

    cells: List[GridCell] = field(default_factory=list)
    # key -> position of the *first* cell with that key (matching the
    # original linear scan's first-match semantics for duplicates).
    _index: Dict[CellKey, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    # How many cells the index covered when last in sync.
    _indexed: int = field(default=0, repr=False, compare=False)

    def _rebuild_index(self) -> None:
        self._index = {}
        for position, cell in enumerate(self.cells):
            self._index.setdefault(cell.key, position)
        self._indexed = len(self.cells)

    def add(self, cell: GridCell) -> None:
        """Append a cell and index it for O(1) lookup."""
        self.cells.append(cell)
        if self._indexed == len(self.cells) - 1:
            self._index.setdefault(cell.key, len(self.cells) - 1)
            self._indexed += 1
        # Otherwise the index is already stale (cells were appended
        # directly); the next lookup rebuilds it.

    def report(self, scheme: str, pec: int, workload: str) -> PerfReport:
        key = (scheme, pec, workload)
        if self._indexed != len(self.cells):
            self._rebuild_index()
        position = self._index.get(key)
        if position is None or self.cells[position].key != key:
            # Miss, or a cell was replaced in place under the index:
            # rebuild once and retry before giving up.
            self._rebuild_index()
            position = self._index.get(key)
            if position is None:
                raise KeyError(key)
        return self.cells[position].report

    def schemes(self) -> List[str]:
        return sorted({cell.scheme for cell in self.cells})

    def workloads(self) -> List[str]:
        return sorted({cell.workload for cell in self.cells})

    def pec_points(self) -> List[int]:
        return sorted({cell.pec for cell in self.cells})

    # --- figure-shaped projections -------------------------------------------------

    def normalized_read_tail(
        self, pct: float, pec: int, baseline: str = "baseline"
    ) -> Dict[str, Dict[str, float]]:
        """Figure 14: per-workload read tail latency vs Baseline."""
        out: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads():
            base = self.report(baseline, pec, workload).read_tail(pct)
            out[workload] = {
                scheme: normalize(
                    self.report(scheme, pec, workload).read_tail(pct), base
                )
                for scheme in self.schemes()
            }
        return out

    def geomean_normalized(
        self,
        metric,
        pec: int,
        baseline: str = "baseline",
    ) -> Dict[str, float]:
        """Geometric mean across workloads of metric(report)/metric(base)."""
        import math

        out: Dict[str, float] = {}
        for scheme in self.schemes():
            log_sum, count = 0.0, 0
            for workload in self.workloads():
                base = metric(self.report(baseline, pec, workload))
                value = metric(self.report(scheme, pec, workload))
                ratio = normalize(value, base)
                if ratio > 0:
                    log_sum += math.log(ratio)
                    count += 1
            out[scheme] = math.exp(log_sum / count) if count else 0.0
        return out
