"""Baseline: the conventional Incremental Step Pulse Erasure scheme.

Every erase-pulse step runs the fixed, worst-case ``tEP`` (3.5 ms on
the paper's chips); on failure the voltage steps up by a fixed
``delta-V`` and the full-length pulse repeats (paper Section 3.2,
Figure 2). This is the scheme every compared technique is normalized
against.
"""

from __future__ import annotations

import numpy as np

from repro.erase.scheme import EraseOperationResult, EraseScheme
from repro.nand.block import Block
from repro.nand.erase_model import EraseState


class BaselineIspeScheme(EraseScheme):
    """Conventional ISPE with fixed per-loop erase-pulse latency."""

    name = "baseline"

    def batch_kernel(self):
        from repro.kernels.erase import BaselineBatchKernel

        return BaselineBatchKernel(self.profile)

    def _run(
        self,
        block: Block,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> None:
        per_loop = self.profile.pulses_per_loop
        for loop in range(1, self.profile.max_loops + 1):
            self._pulse(state, result, loop, per_loop)
            fail_bits = self._verify(state, result, rng)
            if state.passes(fail_bits):
                result.completed = True
                result.loops = loop
                return
        # The erase model caps required work at max_loops * pulses_per_loop,
        # so control only reaches here on a model violation; the base
        # class raises EraseFailure from the un-set ``completed`` flag.
        result.loops = self.profile.max_loops
