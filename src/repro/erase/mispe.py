"""m-ISPE: the paper's modified ISPE used for characterization (§5.1).

Two modifications to the original ISPE scheme: (i) the fixed ``tEP``
per EP step shrinks from 3.5 ms to one pulse quantum (0.5 ms), i.e. an
erase loop is split into seven short loops, and (ii) ``VERASE`` steps
up only every seven short loops, emulating the original voltage ladder.
If a block needs ``n`` short loops, the paper estimates
``NISPE = ceil(n/7)`` and ``mtEP(NISPE) = 0.5 * (1 + (n-1) mod 7)`` ms —
this scheme is how the Figure 4 / Figure 7 measurements are taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.erase.scheme import EraseOperationResult, EraseScheme
from repro.nand.block import Block
from repro.nand.erase_model import EraseState


@dataclass(frozen=True)
class MIspeMeasurement:
    """Per-operation measurement extracted from an m-ISPE erase."""

    short_loops: int
    nispe: int
    min_t_ep_final_us: float
    min_t_bers_us: float
    fail_bits_per_pulse: List[int]

    @property
    def min_t_bers_ms(self) -> float:
        return self.min_t_bers_us / 1000.0


class MIspeScheme(EraseScheme):
    """Characterization scheme: 0.5 ms loops, voltage step every 7 loops."""

    name = "m-ispe"

    def batch_kernel(self):
        from repro.kernels.erase import MispeBatchKernel

        return MispeBatchKernel(self.profile)

    def _run(
        self,
        block: Block,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> None:
        per_loop = self.profile.pulses_per_loop
        max_pulses = self.profile.max_pulses
        for short_loop in range(max_pulses):
            voltage_loop = 1 + short_loop // per_loop
            self._pulse(state, result, voltage_loop, 1)
            fail_bits = self._verify(state, result, rng)
            if state.passes(fail_bits):
                result.completed = True
                result.loops = voltage_loop
                return
        result.loops = self.profile.max_loops

    # --- measurement helpers ------------------------------------------------------

    def measure(
        self,
        block: Block,
        rng: np.random.Generator,
        cycles: int = 1,
    ) -> MIspeMeasurement:
        """Erase ``block`` and report the (NISPE, mtEP, mtBERS) estimate.

        The estimate follows the paper's §5.1 formulas. ``mtBERS``
        counts one verify-read per *estimated* standard loop (the
        m-ISPE scheme's extra VR steps are methodology overhead, not
        part of the quantity being estimated).
        """
        result = self.erase(block, rng, cycles=cycles)
        short_loops = result.total_pulses
        per_loop = self.profile.pulses_per_loop
        nispe = (short_loops + per_loop - 1) // per_loop
        final_pulses = 1 + (short_loops - 1) % per_loop
        min_t_ep_final = final_pulses * self.profile.pulse_quantum_us
        min_t_bers = (
            short_loops * self.profile.pulse_quantum_us
            + nispe * self.profile.t_vr_us
        )
        return MIspeMeasurement(
            short_loops=short_loops,
            nispe=nispe,
            min_t_ep_final_us=min_t_ep_final,
            min_t_bers_us=min_t_bers,
            fail_bits_per_pulse=list(result.fail_bit_trace),
        )
