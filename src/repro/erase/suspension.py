"""Erase suspension support: replaying timed segments with interrupts.

The paper's simulator services user I/O with priority over SSD-internal
operations, suspending an ongoing erase (Kim et al., ATC'19 [13]). The
erase *physics* in this library resolves instantly when the scheme
runs; the SSD simulator then replays the operation's timed segments on
the event clock. :class:`SegmentCursor` is that replay: it tracks how
much of the operation has elapsed, supports suspending at any instant
(pause mid-pulse, charge the ramp-down/up overhead on resume), and
reports when the operation finishes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
from repro.erase.scheme import EraseOperationResult, EraseSegment


class SegmentCursor:
    """Replays an erase operation's segments with suspend/resume.

    The cursor is a pure time-accounting object: it never touches block
    state (already mutated). The SSD scheduler drives it with absolute
    simulator timestamps.
    """

    def __init__(
        self,
        result: EraseOperationResult,
        suspend_overhead_us: float = 40.0,
    ):
        self.result = result
        self.suspend_overhead_us = suspend_overhead_us
        self._segments: List[EraseSegment] = list(result.segments)
        self._segment_index = 0
        self._consumed_in_segment = 0.0
        self._suspended = False
        self._pending_overhead = 0.0
        self.suspend_count = 0
        self.total_overhead_us = 0.0

    # --- queries ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True when every segment has fully elapsed."""
        return self._segment_index >= len(self._segments)

    @property
    def suspended(self) -> bool:
        return self._suspended

    def remaining_us(self) -> float:
        """Time still needed to finish (excludes future suspensions)."""
        remaining = self._pending_overhead
        for index in range(self._segment_index, len(self._segments)):
            duration = self._segments[index].duration_us
            if index == self._segment_index:
                duration -= self._consumed_in_segment
            remaining += duration
        return remaining

    def time_to_segment_boundary(self) -> float:
        """Run time until the current segment completes.

        Practical erase suspension can only take effect at a pulse /
        verify-read boundary (an in-flight pulse must finish to avoid
        partially-stressed cells); pending ramp overhead counts toward
        the boundary.
        """
        if self.finished:
            return 0.0
        boundary = self._pending_overhead
        boundary += (
            self._segments[self._segment_index].duration_us
            - self._consumed_in_segment
        )
        return boundary

    # --- driving ------------------------------------------------------------

    def advance(self, elapsed_us: float) -> float:
        """Consume up to ``elapsed_us`` of run time; returns time used.

        The cursor must be running (not suspended). The returned value
        is less than ``elapsed_us`` only when the operation finishes
        early.
        """
        if self._suspended:
            raise SimulationError("cannot advance a suspended operation")
        if elapsed_us < 0:
            raise SimulationError("cannot advance by negative time")
        used = 0.0
        budget = elapsed_us
        if self._pending_overhead > 0.0:
            step = min(self._pending_overhead, budget)
            self._pending_overhead -= step
            used += step
            budget -= step
        while budget > 1e-12 and not self.finished:
            segment = self._segments[self._segment_index]
            left_in_segment = segment.duration_us - self._consumed_in_segment
            step = min(left_in_segment, budget)
            self._consumed_in_segment += step
            used += step
            budget -= step
            if self._consumed_in_segment >= segment.duration_us - 1e-12:
                self._segment_index += 1
                self._consumed_in_segment = 0.0
        return used

    def suspend(self) -> None:
        """Pause the operation immediately (mid-pulse allowed).

        Resume pays ``suspend_overhead_us`` of voltage ramping before
        useful progress continues (practical erase suspension).
        """
        if self.finished:
            raise SimulationError("cannot suspend a finished operation")
        if self._suspended:
            raise SimulationError("operation already suspended")
        self._suspended = True
        self.suspend_count += 1

    def resume(self) -> None:
        """Resume after a suspension, charging the ramp overhead."""
        if not self._suspended:
            raise SimulationError("operation is not suspended")
        self._suspended = False
        self._pending_overhead += self.suspend_overhead_us
        self.total_overhead_us += self.suspend_overhead_us

    def current_segment(self) -> Optional[EraseSegment]:
        """The segment currently elapsing (None when finished)."""
        if self.finished:
            return None
        return self._segments[self._segment_index]
