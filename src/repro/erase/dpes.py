"""DPES: Dynamic Program and Erase Scaling (Jeong et al. [29-31]).

DPES reduces erase-induced stress by lowering ``VERASE`` by 8-10 %,
which narrows the threshold-voltage window available for the program
states. To keep the original reliability, programming must form much
narrower V_TH distributions, costing 10-30 % longer ``tPROG`` (the
paper simulates 385 us at 0.5K PEC and 455 us at 2.5K PEC vs the
350 us baseline) and leaving a tighter read margin while active.

On the paper's chips DPES stops being applicable past 3K PEC — no
amount of extra program time can recover the reliability the reduced
erase voltage gives up — after which it falls back to Baseline
parameters (Section 7.1).
"""

from __future__ import annotations

import numpy as np

from repro.erase.scheme import EraseOperationResult, EraseScheme
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import EraseState

#: Fractional VERASE reduction while DPES is active (paper: 8-10 %).
VOLTAGE_REDUCTION = 0.10
#: PEC limit beyond which DPES can no longer meet reliability targets.
APPLICABLE_PEC_LIMIT = 3000
#: Program-latency scale in the low-wear regime (385 us / 350 us).
T_PROG_SCALE_EARLY = 1.10
#: Program-latency scale near the applicability limit (455 us / 350 us).
T_PROG_SCALE_LATE = 1.30
#: PEC at which the program penalty switches to the late regime.
T_PROG_LATE_PEC = 1500
#: Extra MRBER from the narrowed program window while DPES is active.
PROGRAM_WINDOW_RBER_OFFSET = 13.0


class DpesScheme(EraseScheme):
    """Erase-voltage scaling with program-latency compensation."""

    name = "dpes"

    def __init__(self, profile: ChipProfile):
        super().__init__(profile)
        exponent = profile.wear.voltage_damage_exponent
        #: Per-pulse damage multiplier from the reduced erase voltage.
        self.damage_factor = (1.0 - VOLTAGE_REDUCTION) ** exponent

    def batch_kernel(self):
        from repro.kernels.erase import DpesBatchKernel

        return DpesBatchKernel(self.profile)

    def is_active(self, block: Block) -> bool:
        """Whether voltage scaling still applies to ``block``."""
        return block.wear.pec < APPLICABLE_PEC_LIMIT

    def program_scale(self, block: Block) -> float:
        """DPES program-latency penalty (Table 2: 385/455 us vs 350 us)."""
        if not self.is_active(block):
            return 1.0
        if block.wear.pec < T_PROG_LATE_PEC:
            return T_PROG_SCALE_EARLY
        return T_PROG_SCALE_LATE

    def _run(
        self,
        block: Block,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> None:
        active = self.is_active(block)
        if active:
            state.damage_scale = self.damage_factor
            result.t_prog_scale = (
                T_PROG_SCALE_EARLY
                if block.wear.pec < T_PROG_LATE_PEC
                else T_PROG_SCALE_LATE
            )
            result.rber_offset = PROGRAM_WINDOW_RBER_OFFSET
        per_loop = self.profile.pulses_per_loop
        for loop in range(1, self.profile.max_loops + 1):
            self._pulse(state, result, loop, per_loop)
            fail_bits = self._verify(state, result, rng)
            if state.passes(fail_bits):
                result.completed = True
                result.loops = loop
                return
        result.loops = self.profile.max_loops
