"""Erase scheme zoo: Baseline ISPE, m-ISPE, i-ISPE, DPES, and helpers.

AERO itself lives in :mod:`repro.core`; this package holds the scheme
interface, the comparison baselines from the paper's evaluation
(Section 7.1), and erase-suspension support.
"""

from repro.erase.scheme import (
    EraseOperationResult,
    EraseScheme,
    EraseSegment,
    SegmentKind,
)
from repro.erase.ispe import BaselineIspeScheme
from repro.erase.mispe import MIspeScheme
from repro.erase.iispe import IntelligentIspeScheme
from repro.erase.dpes import DpesScheme
from repro.erase.suspension import SegmentCursor

__all__ = [
    "BaselineIspeScheme",
    "DpesScheme",
    "EraseOperationResult",
    "EraseScheme",
    "EraseSegment",
    "IntelligentIspeScheme",
    "MIspeScheme",
    "SegmentCursor",
    "SegmentKind",
]
