"""i-ISPE: intelligent ISPE (Lee et al., IMW 2011 [16]).

Tracks each block's most recent loop count ``NISPE`` and, on the next
erase, jumps straight to ``EP(NISPE)``, skipping the earlier
lower-voltage loops. On 2D floating-gate chips the memorized final
voltage reliably erases the block in a single loop; on 3D charge-trap
chips the jump earns only partial voltage credit (Section 3.3 of the
paper), so erase failures become frequent as PEC grows — each failure
escalates to a voltage *above* what conventional ISPE would have used,
inflicting extra stress. This is the mechanism behind i-ISPE's 25 %
lifetime *loss* in Figure 13.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.erase.scheme import EraseOperationResult, EraseScheme
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import EraseState
from repro.nand.geometry import BlockAddress

#: Ladder headroom past the datasheet loop budget: on an erase failure
#: at the memorized voltage the chip keeps stepping VERASE up, beyond
#: what conventional ISPE would ever reach.
EXTRA_LOOPS = 2


class IntelligentIspeScheme(EraseScheme):
    """i-ISPE: start at the memorized final loop of the last erase."""

    name = "iispe"

    def __init__(self, profile: ChipProfile):
        super().__init__(profile)
        self._memorized_loop: Dict[BlockAddress, int] = {}

    def batch_kernel(self):
        from repro.kernels.erase import IispeBatchKernel

        return IispeBatchKernel(self.profile)

    def memorized_loop(self, block: Block) -> int:
        """The loop i-ISPE will start from for ``block`` (1 if unknown)."""
        return self._memorized_loop.get(block.address, 1)

    def _run(
        self,
        block: Block,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> None:
        per_loop = self.profile.pulses_per_loop
        start = self.memorized_loop(block)
        ceiling = self.profile.max_loops + EXTRA_LOOPS
        loop = start
        while loop <= ceiling:
            self._pulse(state, result, loop, per_loop)
            fail_bits = self._verify(state, result, rng)
            if state.passes(fail_bits):
                result.completed = True
                break
            loop += 1
        result.loops = state.loop
        self._memorized_loop[block.address] = state.loop

    def reset_memory(self) -> None:
        """Forget all per-block loop history (fresh-drive state)."""
        self._memorized_loop.clear()
