"""Erase scheme interface and operation results.

An erase scheme decides, loop by loop, how long to pulse and at what
ladder voltage, reacting to the fail-bit counts the verify-read steps
report. Schemes resolve the *physics* immediately (mutating the block)
and return an :class:`EraseOperationResult` whose timed *segments* the
SSD simulator replays on the event clock — which is also where erase
suspension slots in (between or inside segments).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.errors import EraseFailure
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import EraseState
from repro.nand.timing import NandTiming


class SegmentKind(Enum):
    """Timed phases of an erase operation."""

    ERASE_PULSE = "EP"
    VERIFY_READ = "VR"


@dataclass(frozen=True)
class EraseSegment:
    """One timed phase: an erase-pulse step or a verify-read step."""

    kind: SegmentKind
    duration_us: float
    loop: int
    pulses: int = 0

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("segment duration must be non-negative")


# Frozen segments are shareable, and erase ladders draw from a handful
# of (duration, loop, pulses) combinations, so the record methods below
# intern them instead of constructing ~5 fresh objects per erase.
_SEGMENT_CACHE: dict = {}


def _segment(
    kind: SegmentKind, duration_us: float, loop: int, pulses: int = 0
) -> EraseSegment:
    key = (kind, duration_us, loop, pulses)
    segment = _SEGMENT_CACHE.get(key)
    if segment is None:
        segment = EraseSegment(
            kind=kind, duration_us=duration_us, loop=loop, pulses=pulses
        )
        _SEGMENT_CACHE[key] = segment
    return segment


@dataclass
class EraseOperationResult:
    """Outcome of one erase operation.

    ``latency_us`` is the sum of segment durations (Equation 1/2 of the
    paper); ``damage`` is the voltage-weighted pulse damage the block
    absorbed; ``residual_fail_bits`` is nonzero only when AERO's
    aggressive mode deliberately accepted an under-erased block.
    """

    scheme: str
    segments: List[EraseSegment] = field(default_factory=list)
    loops: int = 0
    total_pulses: int = 0
    damage: float = 0.0
    completed: bool = False
    accepted_under_erase: bool = False
    residual_fail_bits: int = 0
    #: Loop index the under-erase penalty should be attributed to (the
    #: loop AERO's aggressive mode skipped/truncated); 0 = use the last
    #: ladder loop actually run.
    residual_nispe: int = 0
    fail_bit_trace: List[int] = field(default_factory=list)
    mispredictions: int = 0
    used_shallow_erase: bool = False
    shallow_erase_useful: bool = False
    #: Program-latency scale subsequent writes must use (DPES penalty).
    t_prog_scale: float = 1.0
    #: Extra MRBER for data programmed after this erase (DPES window).
    rber_offset: float = 0.0

    @property
    def latency_us(self) -> float:
        """Total erase latency tBERS (us)."""
        return sum(segment.duration_us for segment in self.segments)

    @property
    def pulse_latency_us(self) -> float:
        """Erase-pulse time only (excludes verify reads)."""
        return sum(
            segment.duration_us
            for segment in self.segments
            if segment.kind is SegmentKind.ERASE_PULSE
        )

    def add_pulse(self, timing: NandTiming, loop: int, pulses: int) -> None:
        """Record an erase-pulse segment."""
        self.segments.append(
            _segment(
                SegmentKind.ERASE_PULSE,
                timing.erase_pulse_us(pulses),
                loop,
                pulses,
            )
        )
        self.total_pulses += pulses

    def add_verify(self, timing: NandTiming, loop: int) -> None:
        """Record a verify-read segment."""
        self.segments.append(
            _segment(SegmentKind.VERIFY_READ, timing.t_vr_us, loop)
        )


class EraseScheme(ABC):
    """Base class for erase schemes.

    Subclasses implement :meth:`_run`, driving the block's
    :class:`~repro.nand.erase_model.EraseState` and recording segments;
    the base class handles wear accounting and page reset.
    """

    #: Human-readable scheme name (used in reports and benchmarks).
    name: str = "abstract"

    def __init__(self, profile: ChipProfile):
        self.profile = profile
        self.timing = NandTiming.from_profile(profile)

    def erase(
        self,
        block: Block,
        rng: np.random.Generator,
        cycles: int = 1,
    ) -> EraseOperationResult:
        """Erase ``block``; returns the operation result.

        ``cycles`` accounts this one simulated erase for that many
        identical P/E cycles (used by the coarse-grained lifetime
        simulator); timing and fail-bit behaviour are unaffected.
        """
        state = block.begin_erase()
        result = EraseOperationResult(scheme=self.name)
        self._run(block, state, result, rng)
        result.damage = state.damage
        result.loops = max(result.loops, state.loop)
        if not result.completed and not result.accepted_under_erase:
            raise EraseFailure(
                f"{self.name} failed to erase {block.address}",
                fail_bits=result.fail_bit_trace[-1] if result.fail_bit_trace else 0,
                loops=result.loops,
            )
        block.finish_erase(
            state,
            residual_fail_bits=result.residual_fail_bits,
            cycles=cycles,
            nispe=result.residual_nispe or None,
        )
        return result

    @abstractmethod
    def _run(
        self,
        block: Block,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> None:
        """Drive the erase ladder; record segments and outcome flags."""

    def program_scale(self, block: Block) -> float:
        """Program-latency multiplier for pages written to ``block``.

        1.0 for every scheme except DPES, whose narrowed program window
        costs 10-30 % longer ``tPROG`` while voltage scaling is active.
        """
        return 1.0

    def batch_kernel(self):
        """A fresh vectorized batch kernel, or ``None`` (no kernel).

        Schemes with a kernel in :mod:`repro.kernels` override this;
        campaign drivers (lifetime simulator, characterization loops)
        use the kernel when one is returned and fall back to per-block
        :meth:`erase` calls otherwise, so third-party schemes work
        unchanged. Kernels carry the scheme's mutable state (i-ISPE
        memory, AERO shallow flags): create one per block population.
        """
        return None

    # --- shared helpers ---------------------------------------------------------

    def _pulse(
        self,
        state: EraseState,
        result: EraseOperationResult,
        loop: int,
        pulses: int,
    ) -> None:
        """Run one erase-pulse step of ``pulses`` quanta at ``loop``."""
        if loop != state.loop:
            state.start_loop(loop)
        if pulses > 0:
            state.apply_pulses(pulses)
        result.add_pulse(self.timing, loop, pulses)

    def _verify(
        self,
        state: EraseState,
        result: EraseOperationResult,
        rng: np.random.Generator,
    ) -> int:
        """Run one verify-read step; returns the measured fail-bit count."""
        fail_bits = state.verify_read(rng)
        result.add_verify(self.timing, state.loop)
        result.fail_bit_trace.append(fail_bits)
        return fail_bits


def default_loop_pulses(profile: ChipProfile) -> int:
    """Pulse quanta in one default-latency EP step (7 on the paper's chips)."""
    return profile.pulses_per_loop


@dataclass(frozen=True)
class SchemeDescription:
    """Catalog entry used by builders and benchmark harnesses."""

    key: str
    label: str
    description: str


SCHEME_CATALOG = (
    SchemeDescription("baseline", "Baseline", "Conventional ISPE (fixed tEP)"),
    SchemeDescription("iispe", "i-ISPE", "Skip to memorized final loop [16]"),
    SchemeDescription("dpes", "DPES", "Erase-voltage scaling [29-31]"),
    SchemeDescription("aero_cons", "AEROcons", "AERO without ECC-margin use"),
    SchemeDescription("aero", "AERO", "Full AERO (FELP + shallow + margin)"),
)
