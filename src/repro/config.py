"""Configuration objects for simulated SSDs.

``SsdSpec`` mirrors Table 2 of the paper (architecture and timing of the
simulated SSDs). The full-scale configuration (1024 GB, 8 channels x 2
chips x 4 planes x 497 blocks x 2,112 pages x 16 KiB) is provided for
reference; tests and benchmarks use scaled-down geometries — every
mechanism under study (queueing, GC, erase blocking, suspension) is
shape-independent, and the paper's own evaluation normalizes to
Baseline rather than reporting absolute device-scale numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.nand.chip_types import ChipProfile, TLC_3D_48L
from repro.nand.geometry import NandGeometry
from repro.units import KIB


@dataclass(frozen=True)
class SchedulerSpec:
    """Transaction scheduling policy knobs."""

    #: Service user reads before anything else (paper's extension).
    user_priority: bool = True
    #: Suspend in-flight erases for user reads (Kim et al. [13]).
    erase_suspension: bool = True
    #: Voltage ramp overhead charged on each erase resume (us).
    suspend_overhead_us: float = 40.0
    #: Forward-progress bound: suspensions allowed per erase operation
    #: (practical erase suspension caps retries so an erase cannot be
    #: starved by a read storm); beyond the cap the erase runs out.
    max_suspensions_per_erase: int = 2
    #: Per-plane GC-job backlog beyond which GC/erase escalate priority
    #: (emulates "no longer possible to delay the erase operation").
    gc_escalation_backlog: int = 2


@dataclass(frozen=True)
class GcSpec:
    """Greedy garbage collection policy parameters (Table 2: greedy)."""

    #: Start GC when a plane's free-block count drops below this.
    low_watermark: int = 3
    #: Collect until the free-block count reaches this.
    high_watermark: int = 5

    def __post_init__(self) -> None:
        if not 1 <= self.low_watermark < self.high_watermark:
            raise ConfigError("need 1 <= low_watermark < high_watermark")


@dataclass(frozen=True)
class SsdSpec:
    """Complete description of one simulated SSD."""

    geometry: NandGeometry = field(default_factory=NandGeometry)
    profile: ChipProfile = TLC_3D_48L
    #: Overprovisioning ratio (Table 2: 20 %).
    overprovisioning: float = 0.20
    #: Channel bus bandwidth for page transfers (MB/s).
    channel_mb_per_s: float = 1200.0
    #: Fixed controller overhead per page transaction (us).
    controller_overhead_us: float = 3.0
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    gc: GcSpec = field(default_factory=GcSpec)
    #: RNG seed for device process variation and scheme randomness.
    seed: int = 0xAE20

    def __post_init__(self) -> None:
        if not 0.0 <= self.overprovisioning < 0.9:
            raise ConfigError("overprovisioning must be in [0, 0.9)")
        if self.channel_mb_per_s <= 0:
            raise ConfigError("channel bandwidth must be positive")
        usable_blocks = self.geometry.blocks_per_plane - self.gc.high_watermark
        if usable_blocks < 4:
            raise ConfigError("geometry too small for the GC watermarks")

    # --- derived ---------------------------------------------------------------

    @property
    def logical_pages(self) -> int:
        """Host-visible logical pages (raw minus overprovisioning)."""
        return int(self.geometry.pages * (1.0 - self.overprovisioning))

    @property
    def logical_bytes(self) -> int:
        """Host-visible capacity in bytes."""
        return self.logical_pages * self.geometry.page_size

    @property
    def page_transfer_us(self) -> float:
        """Channel occupancy for one page transfer (us)."""
        bytes_per_us = self.channel_mb_per_s  # 1 MB/s == 1 byte/us
        return self.geometry.page_size / bytes_per_us

    def with_scheduler(self, **kwargs) -> "SsdSpec":
        """Copy with scheduler knobs overridden."""
        return replace(self, scheduler=replace(self.scheduler, **kwargs))

    # --- canned configurations ----------------------------------------------------

    @classmethod
    def paper_table2(cls) -> "SsdSpec":
        """The paper's full 1024 GB configuration (reference only)."""
        return cls()

    @classmethod
    def small_test(cls, seed: int = 0xAE20) -> "SsdSpec":
        """Tiny SSD for unit/integration tests (a few MB)."""
        return cls(
            geometry=NandGeometry(
                channels=2,
                chips_per_channel=1,
                planes_per_chip=2,
                blocks_per_plane=24,
                pages_per_block=32,
                page_size=4 * KIB,
            ),
            seed=seed,
        )

    @classmethod
    def bench(cls, seed: int = 0xAE20) -> "SsdSpec":
        """Benchmark-scale SSD (~1.2 GB raw): large enough for steady-
        state GC behaviour, small enough for pure-Python event replay."""
        return cls(
            geometry=NandGeometry(
                channels=4,
                chips_per_channel=1,
                planes_per_chip=2,
                blocks_per_plane=96,
                pages_per_block=192,
                page_size=8 * KIB,
            ),
            seed=seed,
        )
