"""NAND chip: command surface over planes/blocks.

The chip computes operation latencies and mutates block state; *when*
those latencies elapse is the SSD simulator's business (the chip is
used both by the event-driven SSD model and by the characterization
platform, which doesn't care about wall-clock interleaving).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import AddressError, CommandError
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.features import FeatureRegisterFile
from repro.nand.geometry import BlockAddress, PageAddress, PlaneAddress
from repro.nand.plane import Plane
from repro.nand.timing import NandTiming
from repro.rng import derive_rng


class NandChip:
    """One NAND die with ``planes_per_chip`` planes."""

    def __init__(
        self,
        channel: int,
        chip: int,
        profile: ChipProfile,
        planes: int,
        blocks_per_plane: int,
        pages_per_block: int,
        seed: int,
    ):
        self.channel = channel
        self.chip = chip
        self.profile = profile
        self.timing = NandTiming.from_profile(profile)
        self.features = FeatureRegisterFile(
            default_pulse_quanta=profile.pulses_per_loop
        )
        self.rng: np.random.Generator = derive_rng(seed, "chip", channel, chip)
        self.planes: List[Plane] = [
            Plane(
                address=PlaneAddress(channel, chip, plane),
                profile=profile,
                blocks=blocks_per_plane,
                pages_per_block=pages_per_block,
                seed=seed,
            )
            for plane in range(planes)
        ]

    # --- addressing -------------------------------------------------------------

    def plane(self, index: int) -> Plane:
        if not 0 <= index < len(self.planes):
            raise AddressError(f"plane {index} outside chip ch{self.channel}/{self.chip}")
        return self.planes[index]

    def block(self, address: BlockAddress) -> Block:
        """Resolve a block address to its stateful block."""
        if address.channel != self.channel or address.chip != self.chip:
            raise AddressError(f"{address} does not belong to this chip")
        return self.plane(address.plane).block(address.block)

    def iter_blocks(self):
        """Yield every block of the chip."""
        for plane in self.planes:
            yield from plane

    # --- basic operations ----------------------------------------------------------

    def read_page(self, address: PageAddress) -> float:
        """Sense one page; returns ``tR`` (us)."""
        block = self.block(address.block_address)
        block.check_readable(address.page)
        return self.timing.t_r_us

    def program_page(self, address: PageAddress, lpn: int | None = None) -> float:
        """Program the next in-order page of the addressed block.

        The caller must target the block's current write pointer
        (NAND programs pages sequentially within a block).
        Returns ``tPROG`` (us).
        """
        block = self.block(address.block_address)
        if address.page != block.write_pointer:
            raise CommandError(
                f"out-of-order program: page {address.page}, "
                f"write pointer {block.write_pointer}"
            )
        block.program(lpn)
        return self.timing.t_prog_us

    # --- erase primitives (used by erase schemes) -------------------------------------

    def erase_pulse(self, block: Block, state, loop: int, pulses: int) -> float:
        """One erase-pulse step at ladder loop ``loop``; returns duration (us)."""
        if loop != state.loop:
            state.start_loop(loop)
            self.features.latch_erase_loop(loop)
        state.apply_pulses(pulses)
        return self.timing.erase_pulse_us(pulses)

    def verify_read(self, block: Block, state) -> tuple[float, int]:
        """One verify-read step; returns ``(tVR, fail_bits)``."""
        fail_bits = state.verify_read(self.rng)
        self.features.latch_verify_read(fail_bits)
        return self.timing.t_vr_us, fail_bits
