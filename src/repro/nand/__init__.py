"""NAND flash device model.

This package is the substitute for the paper's 160 real 3D TLC chips: a
statistical device model that reproduces the erase characteristics the
authors measured (Figures 4 and 7-11) and exposes the same control
surface an FTL sees (read/program/erase commands, pulse-granular erase
control, ONFI-style GET/SET FEATURE registers, fail-bit readout).
"""

from repro.nand.geometry import (
    BlockAddress,
    NandGeometry,
    PageAddress,
    PlaneAddress,
)
from repro.nand.chip_types import (
    ChipProfile,
    MLC_3D_48L,
    TLC_2D_2XNM,
    TLC_3D_48L,
    profile_by_name,
)
from repro.nand.erase_model import BlockEraseModel, EraseState
from repro.nand.timing import NandTiming
from repro.nand.rber import RberModel, RberSample
from repro.nand.features import FeatureAddress, FeatureRegisterFile
from repro.nand.block import Block, PageState
from repro.nand.plane import Plane
from repro.nand.chip import NandChip

__all__ = [
    "Block",
    "BlockAddress",
    "BlockEraseModel",
    "ChipProfile",
    "EraseState",
    "FeatureAddress",
    "FeatureRegisterFile",
    "MLC_3D_48L",
    "NandChip",
    "NandGeometry",
    "NandTiming",
    "PageAddress",
    "PageState",
    "Plane",
    "PlaneAddress",
    "RberModel",
    "RberSample",
    "TLC_2D_2XNM",
    "TLC_3D_48L",
    "profile_by_name",
]
