"""NAND operation timing parameters.

Separated from :class:`repro.nand.chip_types.ChipProfile` because erase
schemes adjust timing at run time (DPES raises ``tPROG``; AERO sets
per-pulse ``tEP`` via SET FEATURE), while the profile's physics stay
fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.nand.chip_types import ChipProfile


@dataclass(frozen=True)
class NandTiming:
    """Operation latencies (microseconds) of one chip.

    Defaults come from the chip profile (Table 2 of the paper:
    ``tR`` 40 us, ``tPROG`` 350 us, ``tEP`` 3.5 ms, ``tVR`` ~100 us).
    ``suspend_overhead_us`` is the voltage ramp-down/up cost of
    suspending an in-flight erase pulse (practical erase suspension,
    Kim et al. ATC'19).
    """

    t_r_us: float
    t_prog_us: float
    t_ep_us: float
    t_vr_us: float
    pulse_quantum_us: float
    suspend_overhead_us: float = 40.0

    @classmethod
    def from_profile(cls, profile: ChipProfile) -> "NandTiming":
        """Datasheet timing of ``profile``."""
        return cls(
            t_r_us=profile.t_r_us,
            t_prog_us=profile.t_prog_us,
            t_ep_us=profile.t_ep_us,
            t_vr_us=profile.t_vr_us,
            pulse_quantum_us=profile.pulse_quantum_us,
        )

    def __post_init__(self) -> None:
        for name in ("t_r_us", "t_prog_us", "t_ep_us", "t_vr_us", "pulse_quantum_us"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"timing field {name!r} must be positive")
        if self.suspend_overhead_us < 0:
            raise ConfigError("suspend overhead must be non-negative")

    @property
    def pulses_per_loop(self) -> int:
        """Pulse quanta per default-latency erase-pulse step."""
        return int(round(self.t_ep_us / self.pulse_quantum_us))

    def with_program_latency(self, t_prog_us: float) -> "NandTiming":
        """Copy with a different program latency (DPES write penalty)."""
        return replace(self, t_prog_us=t_prog_us)

    def with_program_scale(self, factor: float) -> "NandTiming":
        """Copy with program latency scaled by ``factor``."""
        if factor <= 0:
            raise ConfigError("program scale must be positive")
        return replace(self, t_prog_us=self.t_prog_us * factor)

    def erase_pulse_us(self, pulses: int) -> float:
        """Duration of an erase-pulse step of ``pulses`` quanta."""
        if pulses < 0:
            raise ConfigError("pulse count must be non-negative")
        return pulses * self.pulse_quantum_us
