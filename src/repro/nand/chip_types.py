"""Calibrated chip profiles.

A :class:`ChipProfile` bundles every physical constant of one NAND flash
chip family: ISPE timing, the fail-bit regularities (gamma/delta from
Figure 7), the per-block erase-work distribution that reproduces
Figure 4, and the wear/RBER constants behind Figures 10 and 13.

Three profiles mirror the chips characterized in the paper:

* ``TLC_3D_48L`` - Samsung 48-layer 3D TLC (the 160-chip main study),
* ``TLC_2D_2XNM`` - 2x-nm 2D TLC (Figure 11 cross-check),
* ``MLC_3D_48L`` - 48-layer 3D MLC (Figure 11 cross-check).

The numerical values are calibrated so the virtual characterization
campaign in :mod:`repro.characterization` reproduces the shapes the
paper reports from silicon; they are not vendor data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.units import ms, us


@dataclass(frozen=True)
class EraseWorkModel:
    """Parameters of the per-block required-erase-work distribution.

    Work is measured in 0.5 ms *pulse units*; a block needing ``W`` pulse
    units erases after ``W`` m-ISPE sub-pulses, i.e. ``NISPE = ceil(W/7)``
    standard loops with ``mtEP = 0.5 * (1 + (W-1) mod 7)`` ms in the final
    loop (paper Section 5.1 methodology).
    """

    #: Mean / std / truncation of the PEC-0 work (process variation).
    base_mean: float = 4.5
    base_std: float = 0.9
    base_low: float = 2.0
    base_high: float = 7.0
    #: Mean / std / truncation of the per-block wear-sensitivity rate.
    rate_mean: float = 1.7
    rate_std: float = 0.55
    rate_low: float = 0.7
    rate_high: float = 3.4
    #: Super-linear PEC exponent; work grows as rate * (PEC/1000)^exponent.
    pec_exponent: float = 1.7
    #: Piecewise-linear lower bound on work vs PEC (kilocycles -> pulses).
    #: Encodes the paper's "every block needs >= 2 loops after 2K PEC".
    floor_points: Tuple[Tuple[float, float], ...] = (
        (0.0, 1.0),
        (1.0, 2.0),
        (2.0, 8.0),
        (3.0, 11.0),
        (4.0, 15.0),
        (5.0, 18.0),
        (8.0, 24.0),
    )

    def floor_pulses(self, pec: int) -> float:
        """Interpolated minimum work (pulses) at ``pec`` P/E cycles."""
        kilo = pec / 1000.0
        points = self.floor_points
        if kilo <= points[0][0]:
            return points[0][1]
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if kilo <= x1:
                frac = (kilo - x0) / (x1 - x0)
                return y0 + frac * (y1 - y0)
        return points[-1][1]


@dataclass(frozen=True)
class WearModel:
    """Erase-induced damage accounting and its RBER consequences.

    Damage is the voltage-weighted pulse integral: one 0.5 ms pulse in
    loop ``i`` (voltage ``VERASE(1) + (i-1) * dV``) contributes
    ``(1 + voltage_step * (i-1)) ** voltage_damage_exponent`` damage
    units. MRBER then grows as ``rber_scale * damage ** rber_exponent``
    on top of a fresh-block base and the retention-dependent term.

    ``rber_scale`` is *auto-calibrated* (see
    :meth:`repro.nand.rber.RberModel.calibrated`) so that Baseline ISPE
    crosses the RBER requirement at ``target_baseline_lifetime_pec``,
    pinning the absolute scale to the paper's Figure 13 endpoint.
    """

    #: Per-loop VERASE increment as a fraction of VERASE(1) (Delta-V / V1).
    voltage_step: float = 0.08
    #: Exponent translating voltage overdrive into cell damage.
    voltage_damage_exponent: float = 6.0
    #: Extra damage multiplier per skipped loop when a scheme jumps
    #: straight to a high-voltage loop (deep-erasure stress; penalizes
    #: i-ISPE in 3D NAND, paper Section 3.3).
    skip_stress_factor: float = 0.7
    #: MRBER of a fresh, completely erased block (bits / 1 KiB codeword).
    fresh_rber: float = 16.0
    #: Wear-age -> RBER exponent (super-linear late-life degradation).
    rber_exponent: float = 1.35
    #: Retention contribution at the reference bake (1 year at 30 C),
    #: grows linearly with wear age: retention_rber_per_kpec * age.
    retention_rber_per_kpec: float = 1.6
    #: Under-erase penalty: extra RBER per delta of residual fail bits
    #: (after the 7/8 data-randomization discount, paper Section 4).
    under_erase_rber_per_delta: float = 18.5
    #: Constant under-erase penalty once residual fail bits exceed FPASS.
    under_erase_rber_base: float = 4.0
    #: NISPE scaling of the under-erase penalty: penalty multiplier is
    #: ``clamp(nispe_factor_start - nispe_factor_slope*(N-1), min, start)``.
    #: Decreasing in N: at low wear the erased-state distribution is
    #: tight, so residual fail cells shift reads further (Figure 10b
    #: calibration; makes C1/C2 exactly the safe aggressive regions).
    nispe_factor_start: float = 1.26
    nispe_factor_slope: float = 0.22
    nispe_factor_min: float = 0.7
    #: Coupling between a block's erase difficulty (its wear-rate draw)
    #: and its RBER: hard-to-erase blocks are also more error-prone
    #: (both trace back to cell quality). Effective RBER age is
    #: ``age * (1 + coef * (rate/rate_mean - 1))``.
    rber_sensitivity_coef: float = 0.3
    #: Figure 13 calibration target: Baseline lifetime in P/E cycles.
    target_baseline_lifetime_pec: int = 5300


@dataclass(frozen=True)
class EccSpec:
    """ECC capability and the derived RBER requirement (Figure 10)."""

    #: Maximum correctable raw bit errors per 1 KiB codeword (LDPC).
    capability_bits_per_kib: int = 72
    #: Requirement with sampling-error safety margin; a block whose MRBER
    #: exceeds this is unusable (paper uses 63 of the 72).
    requirement_bits_per_kib: int = 63
    #: Codeword payload in bytes.
    codeword_bytes: int = 1024
    #: Hard-decision decode latency (hidden under sensing/transfer).
    decode_latency_us: float = 8.0
    #: Maximum read-retry attempts before declaring an uncorrectable error.
    max_read_retries: int = 8
    #: Multiplicative RBER reduction per read-retry step (VREF tuning).
    retry_rber_factor: float = 0.55


@dataclass(frozen=True)
class ChipProfile:
    """Complete calibrated description of one NAND chip family."""

    name: str
    #: Cell bits (3 = TLC, 2 = MLC).
    bits_per_cell: int
    #: 3D (charge-trap, vertical channel) vs 2D (floating-gate) process.
    is_3d: bool
    #: Default erase-pulse latency per ISPE loop (us). 3.5 ms in the paper.
    t_ep_us: float = ms(3.5)
    #: Verify-read latency (us). ~100 us in the paper.
    t_vr_us: float = us(100.0)
    #: Pulse quantum for tEP control via SET FEATURE (us). 0.5 ms grain.
    pulse_quantum_us: float = ms(0.5)
    #: Maximum ISPE loops before the chip reports erase failure.
    max_loops: int = 5
    #: Read latency (us), Table 2.
    t_r_us: float = us(40.0)
    #: Program latency (us), Table 2.
    t_prog_us: float = us(350.0)
    #: Fail-bit floor gamma: F when the block needs exactly one more
    #: pulse (Figure 7; "quite consistent at a certain value gamma").
    gamma: int = 500
    #: Fail-bit slope delta: F decrease per 0.5 ms pulse (Figure 7,
    #: ~5,000 on the tested chips).
    delta: int = 5000
    #: ISPE pass threshold FPASS (fail bits); loop succeeds below this.
    f_pass: int = 100
    #: FELP "no reduction possible" threshold FHIGH = 7 * delta.
    f_high_deltas: int = 7
    #: Relative measurement noise on fail-bit counts.
    failbit_noise: float = 0.04
    #: Endurance limit used by the FTL for block retirement.
    endurance_pec: int = 10000
    erase_work: EraseWorkModel = field(default_factory=EraseWorkModel)
    wear: WearModel = field(default_factory=WearModel)
    ecc: EccSpec = field(default_factory=EccSpec)

    def __post_init__(self) -> None:
        if self.bits_per_cell not in (1, 2, 3, 4):
            raise ConfigError("bits_per_cell must be 1..4")
        if self.t_ep_us <= 0 or self.pulse_quantum_us <= 0:
            raise ConfigError("latencies must be positive")
        if self.t_ep_us % self.pulse_quantum_us != 0:
            raise ConfigError("t_ep must be a multiple of the pulse quantum")
        if not 0 < self.f_pass < self.gamma < self.delta:
            raise ConfigError("expect FPASS < gamma < delta")

    # --- derived quantities ----------------------------------------------------
    # The derived scalars below sit on the per-erase hot path (every
    # pulse/verify step reads them), so they are cached on first use;
    # the profile is frozen, so the cache can never go stale.

    @cached_property
    def pulses_per_loop(self) -> int:
        """Number of 0.5 ms pulse quanta in one default-latency EP step."""
        return int(round(self.t_ep_us / self.pulse_quantum_us))

    @cached_property
    def max_pulses(self) -> int:
        """Total pulse budget across ``max_loops`` ISPE loops."""
        return self.pulses_per_loop * self.max_loops

    @cached_property
    def f_high(self) -> int:
        """FHIGH threshold in fail bits (no tEP reduction above this)."""
        return self.f_high_deltas * self.delta

    def loop_voltage_factor(self, loop: int) -> float:
        """VERASE(loop) / VERASE(1), loop counted from 1."""
        if loop < 1:
            raise ConfigError("loop index counts from 1")
        return 1.0 + self.wear.voltage_step * (loop - 1)

    @cached_property
    def _pulse_damage_table(self) -> Tuple[float, ...]:
        return tuple(
            self.loop_voltage_factor(loop) ** self.wear.voltage_damage_exponent
            for loop in range(1, self.max_loops + 1)
        )

    @cached_property
    def _pulse_damage_prefix(self) -> Tuple[float, ...]:
        # _pulse_damage_prefix[n] = sum of pulse_damage over loops 1..n,
        # accumulated left to right (same floats as a running sum()).
        prefix = [0]
        total = 0
        for damage in self._pulse_damage_table:
            total = total + damage
            prefix.append(total)
        return tuple(prefix)

    def pulse_damage(self, loop: int) -> float:
        """Damage units contributed by one pulse quantum in ``loop``."""
        if 1 <= loop <= self.max_loops:
            return self._pulse_damage_table[loop - 1]
        factor = self.loop_voltage_factor(loop)
        return factor ** self.wear.voltage_damage_exponent

    def pulse_damage_prefix(self, loops: int) -> float:
        """Sum of :meth:`pulse_damage` over ladder loops ``1..loops``."""
        if loops <= self.max_loops:
            return self._pulse_damage_prefix[loops]
        total = self._pulse_damage_prefix[self.max_loops]
        for loop in range(self.max_loops + 1, loops + 1):
            total = total + self.pulse_damage(loop)
        return total

    @cached_property
    def _failbit_range_edges(self) -> Tuple[int, ...]:
        edges = [self.gamma]
        edges.extend(self.delta * k for k in range(1, self.f_high_deltas + 1))
        return tuple(edges)

    def failbit_range_edges(self) -> Tuple[int, ...]:
        """Upper edges of the FELP fail-bit ranges (Table 1 columns).

        Edges are ``(gamma, delta, 2*delta, ..., f_high_deltas*delta)``;
        a fail-bit count maps to the first edge that is >= the count.
        """
        return self._failbit_range_edges

    def failbit_range_index(self, fail_bits: int) -> int:
        """Index of the FELP range containing ``fail_bits``.

        Returns 0 for ``F <= gamma``, k for ``(k-1)*delta < F <= k*delta``,
        and ``f_high_deltas + 1`` for counts above FHIGH (no reduction).
        """
        edges = self.failbit_range_edges()
        for index, edge in enumerate(edges):
            if fail_bits <= edge:
                return index
        return len(edges)


# --- the three characterized chip families ------------------------------------

#: Samsung 48-layer 3D TLC, the paper's primary 160-chip population.
TLC_3D_48L = ChipProfile(
    name="3D-TLC-48L",
    bits_per_cell=3,
    is_3d=True,
)

#: 2x-nm 2D TLC (Figure 11a: slightly larger delta spread, lower gamma).
TLC_2D_2XNM = ChipProfile(
    name="2D-TLC-2xnm",
    bits_per_cell=3,
    is_3d=False,
    gamma=400,
    delta=4200,
    failbit_noise=0.06,
    erase_work=EraseWorkModel(
        base_mean=4.0,
        base_std=1.0,
        rate_mean=1.8,
        rate_std=0.5,
    ),
    wear=WearModel(fresh_rber=18.0, target_baseline_lifetime_pec=4800),
)

#: 48-layer 3D MLC (Figure 11b: fewer states -> slightly lower RBER).
MLC_3D_48L = ChipProfile(
    name="3D-MLC-48L",
    bits_per_cell=2,
    is_3d=True,
    gamma=550,
    delta=5600,
    failbit_noise=0.05,
    erase_work=EraseWorkModel(
        base_mean=4.2,
        base_std=0.85,
        rate_mean=1.4,
        rate_std=0.4,
    ),
    wear=WearModel(fresh_rber=14.0, target_baseline_lifetime_pec=6000),
)

_PROFILES: Dict[str, ChipProfile] = {
    profile.name: profile
    for profile in (TLC_3D_48L, TLC_2D_2XNM, MLC_3D_48L)
}


def profile_by_name(name: str) -> ChipProfile:
    """Look up a built-in chip profile by its ``name`` field."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ConfigError(f"unknown chip profile {name!r}; known: {known}")


def builtin_profiles() -> Tuple[ChipProfile, ...]:
    """All built-in chip profiles (main study + Figure 11 cross-checks)."""
    return tuple(_PROFILES.values())
