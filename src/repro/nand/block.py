"""Stateful erase block: pages, wear history, and erase characteristics.

A :class:`Block` ties together the three per-block models:

* page bookkeeping (free/valid/invalid + stored logical page numbers),
  which the FTL's allocator and garbage collector drive;
* the :class:`~repro.nand.erase_model.BlockEraseModel` process-variation
  draw that defines how hard the block is to erase at its current wear;
* the :class:`~repro.nand.erase_model.WearState` damage history that the
  RBER model converts into reliability.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional

from repro.errors import CommandError
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import BlockEraseModel, EraseState, WearState
from repro.nand.geometry import BlockAddress


class PageState(IntEnum):
    """Lifecycle of one physical page between erasures."""

    FREE = 0
    VALID = 1
    INVALID = 2


class Block:
    """One erase block of a simulated chip."""

    def __init__(
        self,
        address: BlockAddress,
        profile: ChipProfile,
        pages: int,
        seed: int,
    ):
        self.address = address
        self.profile = profile
        self.page_count = pages
        self.erase_model = BlockEraseModel(
            profile, seed, address.channel, address.chip, address.plane, address.block
        )
        self.wear = WearState()
        self._page_states: List[PageState] = [PageState.FREE] * pages
        self._page_lpns: List[Optional[int]] = [None] * pages
        self.write_pointer = 0
        self.valid_count = 0
        self.erase_count = 0
        self.retired = False

    @property
    def rber_sensitivity(self) -> float:
        """Block wear-rate draw normalized to the profile mean.

        Couples erase difficulty to reliability: hard-to-erase blocks
        (high rate) are also the error-prone ones (Figure 10a spread).
        """
        return self.erase_model.rate / self.profile.erase_work.rate_mean

    # --- page bookkeeping ---------------------------------------------------------

    def page_state(self, page: int) -> PageState:
        """State of physical page ``page``."""
        return self._page_states[page]

    def page_lpn(self, page: int) -> Optional[int]:
        """Logical page stored at physical page ``page`` (None if free)."""
        return self._page_lpns[page]

    @property
    def free_pages(self) -> int:
        """Pages still programmable (NAND programs in order)."""
        return self.page_count - self.write_pointer

    @property
    def invalid_count(self) -> int:
        """Pages holding stale data (GC reclaim potential)."""
        return self.write_pointer - self.valid_count

    @property
    def is_full(self) -> bool:
        return self.write_pointer >= self.page_count

    def iter_valid_pages(self):
        """Yield ``(page_index, lpn)`` for every valid page."""
        for index in range(self.write_pointer):
            if self._page_states[index] is PageState.VALID:
                yield index, self._page_lpns[index]

    # --- NAND command effects -------------------------------------------------------

    def program(self, lpn: Optional[int]) -> int:
        """Program the next free page (erase-before-write, in-order).

        Returns the physical page index used. ``lpn`` may be ``None``
        for metadata/padding writes.
        """
        if self.retired:
            raise CommandError(f"block {self.address} is retired")
        if self.is_full:
            raise CommandError(f"block {self.address} has no free pages")
        page = self.write_pointer
        self._page_states[page] = PageState.VALID
        self._page_lpns[page] = lpn
        self.write_pointer += 1
        self.valid_count += 1
        return page

    def invalidate(self, page: int) -> None:
        """Mark a previously valid page stale (overwrite or trim)."""
        if self._page_states[page] is not PageState.VALID:
            raise CommandError(
                f"page {page} of {self.address} is not valid (state "
                f"{self._page_states[page].name})"
            )
        self._page_states[page] = PageState.INVALID
        self._page_lpns[page] = None
        self.valid_count -= 1

    def check_readable(self, page: int) -> None:
        """Raise unless ``page`` holds programmed data."""
        if self._page_states[page] is PageState.FREE:
            raise CommandError(f"page {page} of {self.address} was never programmed")

    # --- erase lifecycle ---------------------------------------------------------

    def begin_erase(self) -> EraseState:
        """Start an erase operation at the block's current wear age."""
        if self.retired:
            raise CommandError(f"block {self.address} is retired")
        return self.erase_model.begin_erase(self.wear.age_kilocycles)

    def finish_erase(
        self,
        state: EraseState,
        residual_fail_bits: int = 0,
        cycles: int = 1,
        nispe: Optional[int] = None,
    ) -> None:
        """Account a completed (or accepted under-erased) operation.

        Resets all pages to FREE and records damage-normalized aging.
        ``cycles`` lets coarse-grained lifetime simulations account one
        representative erase for many identical cycles. ``nispe``
        overrides the loop count recorded for the under-erase penalty
        (AERO's aggressive skip leaves the ladder one loop early).
        """
        if nispe is None:
            nispe = max(1, state.loop)
        self.wear.record_erase(
            self.erase_model,
            state.damage,
            residual_fail_bits=residual_fail_bits,
            nispe=nispe,
            cycles=cycles,
        )
        self.erase_count += cycles
        # Reset the page lists in place, and only up to the write
        # pointer — pages past it were never programmed since the last
        # erase, so they are already FREE/None.
        wp = self.write_pointer
        self._page_states[:wp] = [PageState.FREE] * wp
        self._page_lpns[:wp] = [None] * wp
        self.write_pointer = 0
        self.valid_count = 0

    def retire(self) -> None:
        """Take the block out of service (endurance exhausted)."""
        self.retired = True

    def __repr__(self) -> str:
        return (
            f"Block({self.address}, pec={self.wear.pec}, "
            f"valid={self.valid_count}/{self.page_count})"
        )
