"""NAND geometry and physical addressing.

Mirrors the hierarchy in Figure 1a of the paper and the simulated SSD
configuration in Table 2: an SSD has channels, each channel has chips,
each chip has planes, each plane has blocks, each block has pages (one
page per wordline per bit-level; we address pages directly, as the FTL
does).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError, ConfigError
from repro.units import KIB


@dataclass(frozen=True)
class NandGeometry:
    """Static shape of one SSD's flash array.

    Defaults mirror Table 2 of the paper (1024 GB SSD: 8 channels x
    2 chips x 4 planes x 497 blocks x 2,112 pages x 16 KiB pages).
    Tests and examples use scaled-down geometries; all invariants are
    shape-independent.
    """

    channels: int = 8
    chips_per_channel: int = 2
    planes_per_chip: int = 4
    blocks_per_plane: int = 497
    pages_per_block: int = 2112
    page_size: int = 16 * KIB

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "planes_per_chip",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"geometry field {name!r} must be positive")

    # --- derived counts ----------------------------------------------------

    @property
    def chips(self) -> int:
        """Total chips in the SSD."""
        return self.channels * self.chips_per_channel

    @property
    def planes(self) -> int:
        """Total planes in the SSD."""
        return self.chips * self.planes_per_chip

    @property
    def blocks(self) -> int:
        """Total blocks in the SSD."""
        return self.planes * self.blocks_per_plane

    @property
    def pages(self) -> int:
        """Total physical pages in the SSD."""
        return self.blocks * self.pages_per_block

    @property
    def block_bytes(self) -> int:
        """Capacity of one block in bytes."""
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity in bytes (before overprovisioning)."""
        return self.pages * self.page_size

    # --- address validation --------------------------------------------------

    def check_block(self, addr: "BlockAddress") -> None:
        """Raise :class:`AddressError` if ``addr`` is outside this geometry."""
        if not (
            0 <= addr.channel < self.channels
            and 0 <= addr.chip < self.chips_per_channel
            and 0 <= addr.plane < self.planes_per_chip
            and 0 <= addr.block < self.blocks_per_plane
        ):
            raise AddressError(f"block address {addr} outside geometry {self}")

    def check_page(self, addr: "PageAddress") -> None:
        """Raise :class:`AddressError` if ``addr`` is outside this geometry."""
        self.check_block(addr.block_address)
        if not 0 <= addr.page < self.pages_per_block:
            raise AddressError(f"page address {addr} outside geometry {self}")

    # --- address enumeration ---------------------------------------------------

    def iter_block_addresses(self):
        """Yield every :class:`BlockAddress` in channel-major order."""
        for channel in range(self.channels):
            for chip in range(self.chips_per_channel):
                for plane in range(self.planes_per_chip):
                    for block in range(self.blocks_per_plane):
                        yield BlockAddress(channel, chip, plane, block)

    def block_index(self, addr: "BlockAddress") -> int:
        """Dense [0, blocks) index for a block address."""
        self.check_block(addr)
        per_chip = self.planes_per_chip * self.blocks_per_plane
        per_channel = self.chips_per_channel * per_chip
        return (
            addr.channel * per_channel
            + addr.chip * per_chip
            + addr.plane * self.blocks_per_plane
            + addr.block
        )

    def block_from_index(self, index: int) -> "BlockAddress":
        """Inverse of :meth:`block_index`."""
        if not 0 <= index < self.blocks:
            raise AddressError(f"block index {index} outside geometry")
        per_chip = self.planes_per_chip * self.blocks_per_plane
        per_channel = self.chips_per_channel * per_chip
        channel, rem = divmod(index, per_channel)
        chip, rem = divmod(rem, per_chip)
        plane, block = divmod(rem, self.blocks_per_plane)
        return BlockAddress(channel, chip, plane, block)

    def page_index(self, addr: "PageAddress") -> int:
        """Dense [0, pages) index for a page address."""
        return (
            self.block_index(addr.block_address) * self.pages_per_block
            + addr.page
        )

    def page_from_index(self, index: int) -> "PageAddress":
        """Inverse of :meth:`page_index`."""
        if not 0 <= index < self.pages:
            raise AddressError(f"page index {index} outside geometry")
        block_index, page = divmod(index, self.pages_per_block)
        block = self.block_from_index(block_index)
        return PageAddress(block.channel, block.chip, block.plane, block.block, page)


@dataclass(frozen=True, order=True)
class PlaneAddress:
    """Address of one plane within the SSD."""

    channel: int
    chip: int
    plane: int

    def __str__(self) -> str:
        return f"ch{self.channel}/chip{self.chip}/pl{self.plane}"


@dataclass(frozen=True, order=True)
class BlockAddress:
    """Address of one erase block within the SSD."""

    channel: int
    chip: int
    plane: int
    block: int

    @property
    def plane_address(self) -> PlaneAddress:
        return PlaneAddress(self.channel, self.chip, self.plane)

    def page(self, page: int) -> "PageAddress":
        """Address of page ``page`` within this block."""
        return PageAddress(self.channel, self.chip, self.plane, self.block, page)

    def __str__(self) -> str:
        return f"ch{self.channel}/chip{self.chip}/pl{self.plane}/blk{self.block}"


@dataclass(frozen=True, order=True)
class PageAddress:
    """Address of one physical page within the SSD."""

    channel: int
    chip: int
    plane: int
    block: int
    page: int

    @property
    def block_address(self) -> BlockAddress:
        return BlockAddress(self.channel, self.chip, self.plane, self.block)

    @property
    def plane_address(self) -> PlaneAddress:
        return PlaneAddress(self.channel, self.chip, self.plane)

    def __str__(self) -> str:
        return (
            f"ch{self.channel}/chip{self.chip}/pl{self.plane}"
            f"/blk{self.block}/pg{self.page}"
        )
