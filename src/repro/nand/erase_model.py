"""Per-block erase physics: the statistical stand-in for real NAND.

The paper's entire mechanism rests on three regularities measured on 160
real 3D TLC chips:

1. **Figure 4** - the minimum erase latency ``mtBERS`` varies widely
   across blocks and grows with P/E cycling; after 2K PEC every block
   needs at least two ISPE loops.
2. **Figure 7** - within an erase-pulse step, the fail-bit count falls
   *linearly* with applied pulse time (slope ``delta`` per 0.5 ms) and
   lands at a consistent small value ``gamma`` when exactly one more
   pulse is needed.
3. **Figure 8 / Table 1** - the fail-bit count at the end of one loop
   is a conservative predictor of the pulse time the next loop needs.

This module encodes exactly those regularities:

* Each block draws a process-variation ``base`` and wear-sensitivity
  ``rate``; its required erase work (in 0.5 ms *pulse units*) at wear
  age ``x`` kilocycles is ``W(x) = clamp(base + rate * x^1.7, floor(x), 35)``.
* An in-flight erase is an :class:`EraseState` ladder position: progress
  is pulses applied along the ISPE voltage ladder, with *voltage credit*
  for schemes that jump to a high loop directly (full credit on 2D
  chips, partial on 3D - this is what breaks i-ISPE on 3D NAND,
  paper Section 3.3).
* Verify-read returns ``F = gamma + delta*(r-1) + noise`` when ``r``
  pulses remain, which makes Table 1's conservative column emerge from
  the model rather than being assumed.

Wear feedback (Figure 13): blocks age by *damage*, not by P/E count.
One erase contributes ``(program_share + erase_share * damage/baseline_damage)``
milli-kilocycles of age, so a block erased gently (AERO) stays young -
its ``W`` grows slower, which compounds into the paper's 30-43 %
lifetime gains. Under Baseline ISPE the ratio is exactly 1, so wear age
equals PEC/1000 and the characterization figures calibrate directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import EraseSchemeError
from repro.nand.chip_types import ChipProfile
from repro.rng import derive_rng, truncated_normal

#: Fraction of wear-age accumulation attributed to erase stress
#: (Hong et al. [11]: erase accounts for ~80 % of cell stress).
ERASE_WEAR_SHARE = 0.9
PROGRAM_WEAR_SHARE = 1.0 - ERASE_WEAR_SHARE

#: Fail-bit saturation, in units of delta (all bitlines failing).
FAILBIT_SATURATION_DELTAS = 8.0

#: Standard deviation of the per-erase required-work jitter (pulses).
ERASE_JITTER_STD = 0.35


@dataclass
class EraseState:
    """Ladder position of one in-flight erase operation.

    ``progress`` is measured in ladder-normalized pulse units: one 0.5 ms
    pulse at the loop the standard ISPE ladder would be using advances
    progress by one unit. Jumping to loop ``v`` without running loops
    ``1..v-1`` grants ``jump_efficiency * 7 * (v-1)`` units of voltage
    credit (the higher voltage instantly achieves most of what gentler
    loops would have, fully so on 2D chips).
    """

    required: int
    profile: ChipProfile
    #: Multiplier on per-pulse damage; erase-voltage-scaling schemes
    #: (DPES) lower it below 1.0 to model the gentler pulse.
    damage_scale: float = 1.0
    progress: float = 0.0
    loop: int = 0
    pulses_in_loop: int = 0
    total_pulses: int = 0
    damage: float = 0.0
    loops_started: int = 0
    skipped_loops: int = 0
    last_fail_bits: Optional[int] = None
    pulse_log: List[int] = field(default_factory=list)

    # --- queries ------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True once applied progress covers the required erase work."""
        return self.progress >= self.required

    @property
    def remaining_pulses(self) -> int:
        """Pulses still needed at the current (or any higher) voltage."""
        return max(0, math.ceil(self.required - self.progress - 1e-9))

    # --- driving ------------------------------------------------------------

    def start_loop(self, voltage_loop: int) -> None:
        """Begin an erase-pulse step at ladder voltage ``voltage_loop``.

        Repeating the current loop (misprediction handling) is allowed
        and grants no new credit. Moving up the ladder grants full
        voltage credit only if the previous loop ran its full pulse
        budget; otherwise the transition counts as a *jump* and gets
        partial credit per the chip's ``jump_efficiency``.
        """
        if voltage_loop < 1:
            raise EraseSchemeError("voltage loop index counts from 1")
        if voltage_loop < self.loop:
            raise EraseSchemeError(
                f"cannot lower erase voltage (loop {self.loop} -> {voltage_loop})"
            )
        per_loop = self.profile.pulses_per_loop
        if voltage_loop == self.loop:
            # Retry at the same voltage: misprediction handling path.
            self.loops_started += 1
            return
        continuous = voltage_loop == 1 or (
            voltage_loop == self.loop + 1 and self.pulses_in_loop >= per_loop
        )
        efficiency = 1.0 if continuous else _jump_efficiency(self.profile)
        credit = efficiency * per_loop * (voltage_loop - 1)
        if voltage_loop > self.loop + 1 or (voltage_loop > 1 and self.loop == 0):
            self.skipped_loops += voltage_loop - 1 - self.loop
        self.progress = max(self.progress, credit)
        self.loop = voltage_loop
        self.pulses_in_loop = 0
        self.loops_started += 1

    def apply_pulses(self, count: int) -> float:
        """Apply ``count`` pulse quanta at the current loop voltage.

        Returns the damage (voltage-weighted pulse units) inflicted.
        Progress is capped at what the current voltage level supports
        (``pulses_per_loop * loop``): dwelling at a too-low voltage
        cannot fully erase a hard block, which is why ISPE escalates.
        """
        if self.loop < 1:
            raise EraseSchemeError("start_loop must be called before pulsing")
        if count < 0:
            raise EraseSchemeError("pulse count must be non-negative")
        per_loop = self.profile.pulses_per_loop
        cap = per_loop * self.loop
        damage_per_pulse = self.profile.pulse_damage(self.loop) * self.damage_scale
        if self.skipped_loops:
            damage_per_pulse *= (
                1.0 + _skip_stress(self.profile) * self.skipped_loops
            )
        # Hot path: the per-pulse state lives in locals for the loop;
        # the counters/log are batch-updated after (nothing reads them
        # mid-loop). Progress still advances one pulse at a time so the
        # float sequence is unchanged.
        added_damage = 0.0
        progress = self.progress
        for _ in range(count):
            added_damage += damage_per_pulse
            if progress < cap:
                stepped = progress + 1.0
                progress = stepped if stepped < cap else cap
        self.progress = progress
        self.pulses_in_loop += count
        self.total_pulses += count
        self.pulse_log.extend([self.loop] * count)
        self.damage += added_damage
        return added_damage

    def verify_read(self, rng: np.random.Generator) -> int:
        """Sense the block and return the measured fail-bit count.

        Implements the Figure 7 regularity: with ``r`` pulses remaining,
        the true count is ``gamma + delta*(r-1) + U(0, 0.5*delta)``,
        tightly ``~gamma`` at ``r == 1`` and saturating near ``8*delta``.
        Measurement noise is multiplicative (``failbit_noise``).
        """
        profile = self.profile
        deficit = math.ceil(self.required - self.progress - 1e-9)
        remaining = deficit if deficit > 0 else 0
        if remaining <= 0:
            true_count = rng.uniform(0.0, 0.6 * profile.f_pass)
        elif remaining == 1:
            true_count = profile.gamma * rng.uniform(0.85, 1.15)
        else:
            # Centered slightly below gamma + delta*(r-1): about two
            # thirds of blocks needing r more pulses report a count in
            # fail-bit range r-1 and one third in range r, reproducing
            # Figure 8's bin composition (66-71 % of a range's blocks
            # need the same mtEP, the rest need less).
            true_count = (
                profile.gamma
                + profile.delta * (remaining - 1)
                + rng.uniform(-0.65, 0.15) * profile.delta
            )
        saturation = FAILBIT_SATURATION_DELTAS * profile.delta
        true_count = min(true_count, saturation * rng.uniform(0.97, 1.03))
        measured = true_count * (1.0 + rng.normal(0.0, profile.failbit_noise))
        fail_bits = max(0, int(round(measured)))
        self.last_fail_bits = fail_bits
        return fail_bits

    def passes(self, fail_bits: int) -> bool:
        """ISPE pass criterion: fail-bit count at or below FPASS."""
        return fail_bits <= self.profile.f_pass


def _jump_efficiency(profile: ChipProfile) -> float:
    """Voltage-credit efficiency when jumping up the ladder.

    2D floating-gate cells erase as soon as the voltage is high enough
    (full credit, which is why i-ISPE worked on 2D chips); 3D
    charge-trap GIDL erase needs the earlier loops' dwell time too
    (partial credit), per the paper's Section 3.3 discussion.
    """
    return 1.0 if not profile.is_3d else 0.8


def _skip_stress(profile: ChipProfile) -> float:
    """Extra per-pulse damage factor per skipped ladder loop.

    Jumping straight to a high voltage deep-erases the easy cells that
    a gentler loop would have finished, stressing them; stronger on 3D
    chips (higher process variation across the string).
    """
    return profile.wear.skip_stress_factor if profile.is_3d else 0.1


class BlockEraseModel:
    """Static per-block erase characteristics (process variation draw).

    One instance models one physical block across its whole life; the
    block's identity (chip id, block id) and the campaign seed fully
    determine its parameters, so experiments are reproducible and
    block populations are stable under resampling.
    """

    def __init__(self, profile: ChipProfile, seed: int, *keys: object):
        self.profile = profile
        rng = derive_rng(seed, "erase-model", *keys)
        work = profile.erase_work
        self.base = truncated_normal(
            rng, work.base_mean, work.base_std, work.base_low, work.base_high
        )
        self.rate = truncated_normal(
            rng, work.rate_mean, work.rate_std, work.rate_low, work.rate_high
        )
        self._jitter_rng = derive_rng(seed, "erase-jitter", *keys)

    # --- required work ---------------------------------------------------------

    def deterministic_pulses(self, age_kilocycles: float) -> int:
        """Required pulses at wear age ``x`` without erase-to-erase jitter."""
        return self._pulses(age_kilocycles, jitter=0.0)

    def required_pulses(self, age_kilocycles: float) -> int:
        """Sample this erase's required pulses (adds small operation jitter)."""
        jitter = float(self._jitter_rng.normal(0.0, ERASE_JITTER_STD))
        return self._pulses(age_kilocycles, jitter)

    def jitter_batch(self, count: int) -> np.ndarray:
        """Draw ``count`` erase-to-erase jitter values from this block's stream.

        NumPy generators fill arrays by repeating the scalar sampler, so
        ``jitter_batch(k)`` consumes the stream exactly like ``k``
        successive :meth:`required_pulses` calls would — the batch
        kernels buffer these draws and stay jitter-identical to the
        object path (see :mod:`repro.kernels.state`).
        """
        return self._jitter_rng.normal(0.0, ERASE_JITTER_STD, size=int(count))

    def _pulses(self, age_kilocycles: float, jitter: float) -> int:
        if age_kilocycles < 0:
            raise EraseSchemeError("wear age must be non-negative")
        work = self.profile.erase_work
        raw = (
            self.base
            + self.rate * age_kilocycles ** work.pec_exponent
            + jitter
        )
        floor = work.floor_pulses(int(round(age_kilocycles * 1000)))
        bounded = max(raw, floor)
        return int(max(1, min(self.profile.max_pulses, round(bounded))))

    # --- derived characterization quantities -----------------------------------

    def nispe(self, age_kilocycles: float) -> int:
        """Loops a standard ISPE erase needs at wear age ``x``."""
        pulses = self.deterministic_pulses(age_kilocycles)
        return (pulses + self.profile.pulses_per_loop - 1) // self.profile.pulses_per_loop

    def min_t_ep_final_us(self, age_kilocycles: float) -> float:
        """``mtEP(NISPE)``: minimum final-loop pulse time (us)."""
        pulses = self.deterministic_pulses(age_kilocycles)
        per_loop = self.profile.pulses_per_loop
        final = 1 + (pulses - 1) % per_loop
        return final * self.profile.pulse_quantum_us

    def min_t_bers_us(self, age_kilocycles: float) -> float:
        """``mtBERS``: minimum total erase latency (us), incl. verify reads."""
        pulses = self.deterministic_pulses(age_kilocycles)
        loops = self.nispe(age_kilocycles)
        pulse_time = pulses * self.profile.pulse_quantum_us
        return pulse_time + loops * self.profile.t_vr_us

    def begin_erase(self, age_kilocycles: float) -> EraseState:
        """Create the erase-state ladder for one erase operation."""
        return EraseState(
            required=self.required_pulses(age_kilocycles),
            profile=self.profile,
        )

    def baseline_damage(self, age_kilocycles: float) -> float:
        """Damage a Baseline ISPE erase would inflict at this wear age.

        The wear-age update divides actual damage by this reference, so
        Baseline cycling ages a block by exactly one cycle per erase.
        """
        loops = self.nispe(age_kilocycles)
        per_loop = self.profile.pulses_per_loop
        return per_loop * self.profile.pulse_damage_prefix(loops)


@dataclass
class WearState:
    """Mutable wear history of one block.

    ``age_kilocycles`` is damage-normalized wear age: under Baseline
    ISPE it equals ``pec / 1000``; gentler schemes age slower.
    ``residual_fail_bits``/``residual_nispe`` capture deliberate
    under-erasure by AERO's aggressive mode, which the RBER model turns
    into the Figure 10b penalty.
    """

    age_kilocycles: float = 0.0
    pec: int = 0
    damage_total: float = 0.0
    residual_fail_bits: int = 0
    residual_nispe: int = 1

    def record_erase(
        self,
        model: BlockEraseModel,
        damage: float,
        residual_fail_bits: int = 0,
        nispe: int = 1,
        cycles: int = 1,
    ) -> None:
        """Account one erase (or ``cycles`` identical coarse-step erases)."""
        baseline = model.baseline_damage(self.age_kilocycles)
        ratio = damage / baseline if baseline > 0 else 1.0
        step = (PROGRAM_WEAR_SHARE + ERASE_WEAR_SHARE * ratio) / 1000.0
        self.age_kilocycles += step * cycles
        self.pec += cycles
        self.damage_total += damage * cycles
        self.residual_fail_bits = residual_fail_bits
        self.residual_nispe = nispe


class BlockPopulation:
    """A reproducible population of block erase models.

    Used by the characterization campaign (stand-in for "120 blocks
    evenly selected from each of 160 chips") and by the lifetime and
    SSD simulations, which assign these models to simulated blocks the
    way the paper assigns measured per-block metadata to MQSim blocks.
    """

    def __init__(self, profile: ChipProfile, count: int, seed: int):
        if count <= 0:
            raise EraseSchemeError("population must contain at least one block")
        self.profile = profile
        self.seed = seed
        self.models: List[BlockEraseModel] = [
            BlockEraseModel(profile, seed, "population", index)
            for index in range(count)
        ]

    def __len__(self) -> int:
        return len(self.models)

    def __iter__(self):
        return iter(self.models)

    def __getitem__(self, index: int) -> BlockEraseModel:
        return self.models[index]

    def nispe_histogram(self, age_kilocycles: float) -> Dict[int, int]:
        """Histogram of NISPE across the population at a wear age."""
        histogram: Dict[int, int] = {}
        for model in self.models:
            loops = model.nispe(age_kilocycles)
            histogram[loops] = histogram.get(loops, 0) + 1
        return histogram

    def min_t_bers_ms(self, age_kilocycles: float) -> List[float]:
        """Sorted ``mtBERS`` values (ms) across the population (Fig. 4)."""
        values = [
            model.min_t_bers_us(age_kilocycles) / 1000.0
            for model in self.models
        ]
        return sorted(values)
