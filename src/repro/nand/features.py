"""ONFI-style GET/SET FEATURE register file.

The paper's AEROFTL needs no chip modification because commodity chips
already expose (i) the fail-bit count computed for the ISPE pass check
and (ii) test-mode control of erase timing through GET/SET FEATURE
commands (ONFI 4.1 [61]). This module models that command surface so
the FTL code paths are exercised exactly as they would be on hardware:
the FTL never touches model internals, only feature registers.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict

from repro.errors import FeatureError


class FeatureAddress(IntEnum):
    """Feature register addresses (vendor test-mode block)."""

    #: Next erase-pulse duration, in pulse quanta (read/write).
    ERASE_PULSE_QUANTA = 0x91
    #: Fail-bit count latched by the most recent verify-read (read-only).
    FAIL_BIT_COUNT = 0x92
    #: Voltage-ladder loop index of the most recent erase pulse (read-only).
    ERASE_LOOP_INDEX = 0x93
    #: Number of verify-reads performed in the current/last erase (read-only).
    VERIFY_READ_COUNT = 0x94


_READ_ONLY = frozenset(
    {
        FeatureAddress.FAIL_BIT_COUNT,
        FeatureAddress.ERASE_LOOP_INDEX,
        FeatureAddress.VERIFY_READ_COUNT,
    }
)


class FeatureRegisterFile:
    """Per-chip feature registers with ONFI GET/SET semantics."""

    def __init__(self, default_pulse_quanta: int):
        self._default_pulse_quanta = default_pulse_quanta
        self._registers: Dict[FeatureAddress, int] = {
            FeatureAddress.ERASE_PULSE_QUANTA: default_pulse_quanta,
            FeatureAddress.FAIL_BIT_COUNT: 0,
            FeatureAddress.ERASE_LOOP_INDEX: 0,
            FeatureAddress.VERIFY_READ_COUNT: 0,
        }

    # --- host-visible commands -------------------------------------------------

    def get_feature(self, address: int) -> int:
        """ONFI GET FEATURE: read a register."""
        try:
            key = FeatureAddress(address)
        except ValueError:
            raise FeatureError(f"unknown feature address {address:#x}")
        return self._registers[key]

    def set_feature(self, address: int, value: int) -> None:
        """ONFI SET FEATURE: write a writable register."""
        try:
            key = FeatureAddress(address)
        except ValueError:
            raise FeatureError(f"unknown feature address {address:#x}")
        if key in _READ_ONLY:
            raise FeatureError(f"feature {key.name} is read-only")
        if value < 0:
            raise FeatureError("feature values are unsigned")
        self._registers[key] = int(value)

    # --- device-side latching ----------------------------------------------------

    def latch_verify_read(self, fail_bits: int) -> None:
        """Latch a verify-read result (called by the chip model)."""
        self._registers[FeatureAddress.FAIL_BIT_COUNT] = int(fail_bits)
        self._registers[FeatureAddress.VERIFY_READ_COUNT] += 1

    def latch_erase_loop(self, loop_index: int) -> None:
        """Latch the active erase loop index (called by the chip model)."""
        self._registers[FeatureAddress.ERASE_LOOP_INDEX] = int(loop_index)

    def reset_erase_state(self) -> None:
        """Clear per-operation registers at the start of a new erase."""
        self._registers[FeatureAddress.ERASE_LOOP_INDEX] = 0
        self._registers[FeatureAddress.VERIFY_READ_COUNT] = 0

    @property
    def erase_pulse_quanta(self) -> int:
        """Currently configured erase-pulse duration (pulse quanta)."""
        return self._registers[FeatureAddress.ERASE_PULSE_QUANTA]

    def restore_default_pulse(self) -> None:
        """Restore the datasheet default erase-pulse duration."""
        self._registers[FeatureAddress.ERASE_PULSE_QUANTA] = (
            self._default_pulse_quanta
        )
