"""Raw bit-error-rate model: wear, retention, and under-erasure.

``MRBER`` in the paper is the maximum raw bit errors per 1 KiB codeword
across the pages of a block, measured after a 1-year-at-30C retention
bake (emulated via an 85C/13h accelerated bake). This module models it
as

``MRBER(block) = fresh + k * age^beta + retention_per_kc * age + penalty``

where ``age`` is the damage-normalized wear age from
:class:`repro.nand.erase_model.WearState` and ``penalty`` is the
under-erasure penalty of Figure 10b (nonzero only when the last erase
deliberately left residual fail bits, i.e. AERO's aggressive mode).

The scale ``k`` is pinned in closed form so a Baseline-ISPE-cycled
block (whose wear age equals PEC/1000 by construction) reaches the
RBER requirement exactly at the profile's ``target_baseline_lifetime_pec``
— the paper's Figure 13 Baseline endpoint (5.3K PEC). Every other
scheme's lifetime then *emerges* from its damage trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nand.chip_types import ChipProfile
from repro.nand.erase_model import WearState


@dataclass(frozen=True)
class RberBatch:
    """Batched MRBER evaluation: one array per physical component.

    The vectorized counterpart of :class:`RberSample`, produced by
    :meth:`RberModel.mrber_batch` for a whole block population at once
    (the lifetime/characterization hot path). Components follow the
    same decomposition; there is no sampling-noise term (the batch path
    evaluates the deterministic mean curve, like ``mrber(rng=None)``).
    """

    wear: np.ndarray
    retention: np.ndarray
    under_erase_penalty: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Per-block MRBER in raw bit errors per 1 KiB codeword."""
        return np.maximum(
            0.0, self.wear + self.retention + self.under_erase_penalty
        )


@dataclass(frozen=True)
class RberSample:
    """One MRBER evaluation, decomposed into its physical components."""

    wear: float
    retention: float
    under_erase_penalty: float
    noise: float

    @property
    def total(self) -> float:
        """MRBER in raw bit errors per 1 KiB codeword."""
        return max(0.0, self.wear + self.retention + self.under_erase_penalty + self.noise)


class RberModel:
    """Reliability model for one chip profile.

    The model is deterministic given (profile, wear state); optional
    sampling noise emulates page-to-page spread when a generator is
    supplied (the paper reports the *max* across pages, which our mean
    curve represents; noise is small and zero-mean).
    """

    def __init__(self, profile: ChipProfile, retention_factor: float = 1.0):
        if retention_factor < 0:
            raise ConfigError("retention_factor must be non-negative")
        self.profile = profile
        self.retention_factor = retention_factor
        wear = profile.wear
        target_age = wear.target_baseline_lifetime_pec / 1000.0
        requirement = float(profile.ecc.requirement_bits_per_kib)
        budget = (
            requirement
            - wear.fresh_rber
            - wear.retention_rber_per_kpec * target_age * retention_factor
        )
        if budget <= 0:
            raise ConfigError(
                "RBER requirement leaves no wear budget; check profile calibration"
            )
        #: Closed-form Figure 13 calibration: Baseline crosses the
        #: requirement exactly at the target lifetime.
        self.wear_scale = budget / (target_age ** wear.rber_exponent)

    # --- components -------------------------------------------------------------

    def wear_rber(self, age_kilocycles: float) -> float:
        """Wear-induced MRBER of a completely erased block at ``age``."""
        if age_kilocycles < 0:
            raise ConfigError("wear age must be non-negative")
        wear = self.profile.wear
        return wear.fresh_rber + self.wear_scale * age_kilocycles ** wear.rber_exponent

    def retention_rber(self, age_kilocycles: float) -> float:
        """Retention-loss contribution at the reference 1-year bake."""
        wear = self.profile.wear
        return (
            wear.retention_rber_per_kpec * age_kilocycles * self.retention_factor
        )

    def under_erase_penalty(self, residual_fail_bits: int, nispe: int) -> float:
        """Extra MRBER from deliberately incomplete erasure (Fig. 10b).

        Zero when the block passed the normal FPASS criterion. Above
        FPASS the penalty grows with the residual fail-bit count (in
        units of delta) and shrinks with NISPE per the calibrated
        ``nispe_factor`` schedule, reproducing the paper's safe regions
        C1 (NISPE <= 3 and F < delta) and C2 (NISPE = 4 and F < gamma).
        """
        profile = self.profile
        if residual_fail_bits <= profile.f_pass:
            return 0.0
        wear = profile.wear
        factor = wear.nispe_factor_start - wear.nispe_factor_slope * (nispe - 1)
        factor = min(wear.nispe_factor_start, max(wear.nispe_factor_min, factor))
        excess = (residual_fail_bits - profile.f_pass) / profile.delta
        return factor * (
            wear.under_erase_rber_base + wear.under_erase_rber_per_delta * excess
        )

    # --- composite --------------------------------------------------------------

    def effective_age(self, age_kilocycles: float, sensitivity: float) -> float:
        """RBER-effective wear age of a block.

        ``sensitivity`` is the block's wear-rate draw normalized to the
        profile mean (see :attr:`repro.nand.block.Block.rber_sensitivity`):
        hard-to-erase blocks degrade faster, coupling Figure 10a's
        per-NISPE MRBER spread to the erase-work distribution.
        """
        coef = self.profile.wear.rber_sensitivity_coef
        return max(0.0, age_kilocycles * (1.0 + coef * (sensitivity - 1.0)))

    def mrber(
        self,
        wear_state: WearState,
        rng: np.random.Generator | None = None,
        extra_rber: float = 0.0,
        sensitivity: float = 1.0,
    ) -> RberSample:
        """MRBER of a block in its current wear/erasure state.

        ``extra_rber`` lets erase schemes add scheme-specific terms
        (e.g. DPES's narrowed program window while voltage scaling is
        active); ``sensitivity`` couples per-block erase difficulty to
        reliability (1.0 = average block).
        """
        age = self.effective_age(wear_state.age_kilocycles, sensitivity)
        noise = float(rng.normal(0.0, 1.2)) if rng is not None else 0.0
        return RberSample(
            wear=self.wear_rber(age) + extra_rber,
            retention=self.retention_rber(age),
            under_erase_penalty=self.under_erase_penalty(
                wear_state.residual_fail_bits, wear_state.residual_nispe
            ),
            noise=noise,
        )

    def mrber_batch(
        self,
        age_kilocycles: np.ndarray,
        residual_fail_bits: np.ndarray,
        residual_nispe: np.ndarray,
        extra_rber: np.ndarray | float = 0.0,
        sensitivity: np.ndarray | float = 1.0,
    ) -> RberBatch:
        """MRBER of a whole block population, one array per component.

        Mirrors :meth:`mrber` (without sampling noise) term for term,
        so the batch kernels' recorded trajectories match the scalar
        path to float precision. ``age_kilocycles``/``residual_*``
        come straight from a
        :class:`~repro.kernels.state.BlockArrayState`.
        """
        age_kilocycles = np.asarray(age_kilocycles, dtype=np.float64)
        if np.any(age_kilocycles < 0):
            raise ConfigError("wear age must be non-negative")
        wear = self.profile.wear
        coef = wear.rber_sensitivity_coef
        age = np.maximum(
            0.0, age_kilocycles * (1.0 + coef * (np.asarray(sensitivity) - 1.0))
        )
        wear_component = (
            wear.fresh_rber
            + self.wear_scale * age ** wear.rber_exponent
            + extra_rber
        )
        retention = (
            wear.retention_rber_per_kpec * age * self.retention_factor
        )
        fail_bits = np.asarray(residual_fail_bits)
        nispe = np.asarray(residual_nispe)
        factor = np.clip(
            wear.nispe_factor_start - wear.nispe_factor_slope * (nispe - 1),
            wear.nispe_factor_min,
            wear.nispe_factor_start,
        )
        excess = (fail_bits - self.profile.f_pass) / self.profile.delta
        penalty = np.where(
            fail_bits <= self.profile.f_pass,
            0.0,
            factor
            * (wear.under_erase_rber_base + wear.under_erase_rber_per_delta * excess),
        )
        return RberBatch(
            wear=wear_component,
            retention=retention,
            under_erase_penalty=penalty,
        )

    def meets_requirement(self, sample: RberSample) -> bool:
        """Whether the block is still usable (MRBER within requirement)."""
        return sample.total <= self.profile.ecc.requirement_bits_per_kib

    def margin(self, sample: RberSample) -> float:
        """Reliability margin: requirement minus measured MRBER (Fig. 10)."""
        return self.profile.ecc.requirement_bits_per_kib - sample.total

    def baseline_lifetime_age(self) -> float:
        """Wear age (kilocycles) at which a complete-erase block fails.

        By calibration this equals ``target_baseline_lifetime_pec/1000``.
        """
        return self.profile.wear.target_baseline_lifetime_pec / 1000.0
