"""Plane: a bank of blocks sharing one set of page buffers."""

from __future__ import annotations

from typing import List

from repro.errors import AddressError
from repro.nand.block import Block
from repro.nand.chip_types import ChipProfile
from repro.nand.geometry import PlaneAddress


class Plane:
    """One plane of a chip; owns its blocks.

    Planes matter to the SSD layer because commands on different planes
    of one chip can proceed concurrently under multi-plane operation
    constraints; for the device model the plane is a container.
    """

    def __init__(
        self,
        address: PlaneAddress,
        profile: ChipProfile,
        blocks: int,
        pages_per_block: int,
        seed: int,
    ):
        self.address = address
        self.profile = profile
        self.blocks: List[Block] = [
            Block(
                address=_block_address(address, index),
                profile=profile,
                pages=pages_per_block,
                seed=seed,
            )
            for index in range(blocks)
        ]

    def block(self, index: int) -> Block:
        """Block ``index`` of this plane."""
        if not 0 <= index < len(self.blocks):
            raise AddressError(f"block {index} outside plane {self.address}")
        return self.blocks[index]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)


def _block_address(plane: PlaneAddress, block: int):
    from repro.nand.geometry import BlockAddress

    return BlockAddress(plane.channel, plane.chip, plane.plane, block)
