"""Flash translation layer: page-level mapping, GC, wear leveling, AEROFTL."""

from repro.ftl.mapping import PageMappingTable
from repro.ftl.allocator import PlaneAllocator, WriteStream
from repro.ftl.gc import GcJob, GreedyVictimSelector, PageMove
from repro.ftl.wear_leveling import WearLeveler
from repro.ftl.stats import FtlStats
from repro.ftl.ftl import PageLevelFtl, WritePlan
from repro.ftl.aeroftl import AeroFtl

__all__ = [
    "AeroFtl",
    "FtlStats",
    "GcJob",
    "GreedyVictimSelector",
    "PageLevelFtl",
    "PageMappingTable",
    "PageMove",
    "PlaneAllocator",
    "WearLeveler",
    "WritePlan",
    "WriteStream",
]
