"""Page-level FTL: translation, allocation, garbage collection.

Design note: the FTL applies *state* changes (mapping updates, page
allocation, erase physics) instantly when an operation is planned; the
timed SSD simulator replays the resulting NAND operations (reads,
programs, erase segments) on the event clock. This split keeps state
transitions trivially consistent while preserving exactly the timing
interactions the paper studies (erase operations blocking reads on the
same chip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import SsdSpec
from repro.erase.scheme import EraseOperationResult, EraseScheme
from repro.errors import MappingError, OutOfSpaceError
from repro.ftl.allocator import PlaneAllocator, WriteStream
from repro.ftl.gc import GcJob, GreedyVictimSelector, PageMove
from repro.ftl.mapping import PageMappingTable
from repro.ftl.stats import FtlStats
from repro.ftl.wear_leveling import WearLeveler
from repro.nand.block import Block
from repro.nand.chip import NandChip
from repro.nand.geometry import BlockAddress, PageAddress, PlaneAddress
from repro.rng import derive_rng


@dataclass
class WritePlan:
    """Everything the timed simulator needs to replay one page write."""

    lpn: int
    destination: PageAddress
    #: tPROG multiplier for this page (DPES penalty).
    program_scale: float = 1.0
    #: GC jobs triggered by this write (state already applied).
    gc_jobs: List[GcJob] = field(default_factory=list)


class PageLevelFtl:
    """Conventional page-level FTL (the paper's baseline firmware)."""

    def __init__(
        self,
        spec: SsdSpec,
        chips: Sequence[NandChip],
        scheme: EraseScheme,
        rng: Optional[np.random.Generator] = None,
    ):
        self.spec = spec
        self.scheme = scheme
        self.rng = rng if rng is not None else derive_rng(spec.seed, "ftl")
        self.mapping = PageMappingTable(spec.logical_pages)
        self.stats = FtlStats()
        self.selector = GreedyVictimSelector()
        self.leveler = WearLeveler()
        self._chips: Dict[tuple, NandChip] = {
            (chip.channel, chip.chip): chip for chip in chips
        }
        # Channel-major plane order: consecutive LPNs stripe across
        # channels first, maximizing bus/chip parallelism.
        geometry = spec.geometry
        self.planes: List[PlaneAllocator] = []
        for plane_idx in range(geometry.planes_per_chip):
            for chip_idx in range(geometry.chips_per_channel):
                for channel in range(geometry.channels):
                    chip = self._chips[(channel, chip_idx)]
                    plane = chip.plane(plane_idx)
                    self.planes.append(
                        PlaneAllocator(plane.address, list(plane.blocks))
                    )
        self._planes_by_address: Dict[PlaneAddress, PlaneAllocator] = {
            allocator.address: allocator for allocator in self.planes
        }

    # --- lookups ---------------------------------------------------------------

    def chip_at(self, channel: int, chip: int) -> NandChip:
        return self._chips[(channel, chip)]

    def block_at(self, address: BlockAddress) -> Block:
        return self.chip_at(address.channel, address.chip).block(address)

    def plane_allocator(self, address: PlaneAddress) -> PlaneAllocator:
        return self._planes_by_address[address]

    def plane_for_lpn(self, lpn: int) -> PlaneAllocator:
        """Static page-granularity striping across planes."""
        return self.planes[lpn % len(self.planes)]

    # --- host operations -----------------------------------------------------------

    def read(self, lpn: int) -> Optional[PageAddress]:
        """Translate a host read; None for never-written pages."""
        self.stats.host_reads += 1
        address = self.mapping.lookup(lpn)
        if address is None:
            self.stats.unmapped_reads += 1
        return address

    def write(self, lpn: int) -> WritePlan:
        """Plan a host page write (state applied immediately)."""
        allocator = self.plane_for_lpn(lpn)
        destination = allocator.allocate_page(WriteStream.HOST, lpn)
        previous = self.mapping.update(lpn, destination)
        if previous is not None:
            self._invalidate(previous)
        self.stats.host_writes += 1
        block = self.block_at(destination.block_address)
        plan = WritePlan(
            lpn=lpn,
            destination=destination,
            program_scale=self.scheme.program_scale(block),
        )
        plan.gc_jobs = self._maybe_collect(allocator)
        return plan

    def trim(self, lpn: int) -> None:
        """Drop a logical page (invalidates its physical copy)."""
        previous = self.mapping.remove(lpn)
        if previous is not None:
            self._invalidate(previous)

    def _invalidate(self, address: PageAddress) -> None:
        """Mark the physical copy at ``address`` stale."""
        self.block_at(address.block_address).invalidate(address.page)

    # --- GC ------------------------------------------------------------------------

    def _maybe_collect(self, allocator: PlaneAllocator) -> List[GcJob]:
        """Run greedy GC until the plane is back above the low watermark."""
        jobs: List[GcJob] = []
        gc_spec = self.spec.gc
        while allocator.free_blocks < gc_spec.low_watermark:
            job = self._collect_one(allocator)
            if job is None:
                break
            jobs.append(job)
            if allocator.free_blocks >= gc_spec.high_watermark:
                break
        return jobs

    def _collect_one(self, allocator: PlaneAllocator) -> Optional[GcJob]:
        """Collect one victim block; returns the planned job."""
        victim = self.leveler.pick_cold_victim(allocator)
        if victim is not None:
            self.stats.wear_leveling_moves += victim.valid_count
        else:
            victim = self.selector.select(allocator)
        if victim is None:
            return None
        job = GcJob(plane=allocator.address, victim=victim.address.page(0))
        for page_index, lpn in list(victim.iter_valid_pages()):
            source = victim.address.page(page_index)
            if lpn is None or not self.mapping.points_at(lpn, source):
                victim.invalidate(page_index)
                continue
            destination = allocator.allocate_page(WriteStream.GC, lpn)
            self.mapping.update(lpn, destination)
            victim.invalidate(page_index)
            job.moves.append(
                PageMove(lpn=lpn, source=source, destination=destination)
            )
            self.stats.gc_page_moves += 1
        job.erase_result = self._erase_block(victim)
        allocator.release(victim)
        self.stats.gc_jobs += 1
        return job

    def _erase_block(self, block: Block) -> EraseOperationResult:
        """Erase one block through the configured scheme (overridable)."""
        result = self.scheme.erase(block, self.rng)
        self.stats.record_erase(result.scheme, result.latency_us, result.total_pulses)
        return result

    # --- preconditioning ---------------------------------------------------------------

    def precondition(
        self,
        footprint_pages: int,
        overwrite_fraction: float = 0.6,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Drive the drive to steady state before a timed run.

        Sequentially writes the whole footprint, then randomly
        overwrites a fraction of it so blocks carry the mixed
        valid/invalid populations a steady-state drive has (GC then has
        real work during the measured window). All effects are instant.
        """
        if footprint_pages > self.spec.logical_pages:
            raise MappingError("footprint exceeds the logical space")
        rng = rng if rng is not None else derive_rng(self.spec.seed, "precondition")
        for lpn in range(footprint_pages):
            self.write(lpn)
        overwrites = int(footprint_pages * overwrite_fraction)
        if overwrites:
            lpns = rng.integers(0, footprint_pages, size=overwrites)
            for lpn in lpns:
                self.write(int(lpn))

    # --- diagnostics --------------------------------------------------------------------

    def free_block_histogram(self) -> Dict[str, int]:
        return {
            str(alloc.address): alloc.free_blocks for alloc in self.planes
        }

    def check_consistency(self) -> None:
        """Invariant check used by tests: mapping <-> block states agree."""
        for lpn, address in self.mapping.items():
            block = self.block_at(address.block_address)
            stored = block.page_lpn(address.page)
            if stored != lpn:
                raise MappingError(
                    f"LPN {lpn} maps to {address} but page holds {stored}"
                )
        total_valid = sum(
            block.valid_count
            for allocator in self.planes
            for block in allocator.all_blocks
        )
        if total_valid != self.mapping.mapped_count:
            raise MappingError(
                f"valid pages {total_valid} != mapped LPNs "
                f"{self.mapping.mapped_count}"
            )
