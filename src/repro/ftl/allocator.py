"""Per-plane block allocation with separated write streams.

Each plane keeps a free-block pool and two open (active) blocks: one
for host writes and one for GC relocations. Separating the streams
keeps hot host data and cold relocated data from mixing in one block,
the standard practice the paper's simulated FTL follows.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, List, Optional

from repro.errors import OutOfSpaceError
from repro.nand.block import Block
from repro.nand.geometry import PageAddress, PlaneAddress


class WriteStream(Enum):
    """Separated append streams within a plane."""

    HOST = "host"
    GC = "gc"


class PlaneAllocator:
    """Free pool + active blocks of one plane."""

    def __init__(self, address: PlaneAddress, blocks: List[Block]):
        self.address = address
        self.all_blocks: List[Block] = list(blocks)
        self._free: Deque[Block] = deque(blocks)
        self._active: dict[WriteStream, Optional[Block]] = {
            WriteStream.HOST: None,
            WriteStream.GC: None,
        }

    # --- free pool -------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Blocks in the free pool (excludes open active blocks)."""
        return len(self._free)

    def release(self, block: Block) -> None:
        """Return an erased block to the free pool."""
        self._free.append(block)

    def take_free_block(self) -> Block:
        """Pop one block from the free pool."""
        if not self._free:
            raise OutOfSpaceError(f"plane {self.address} has no free blocks")
        return self._free.popleft()

    # --- page allocation -----------------------------------------------------------

    def active_block(self, stream: WriteStream) -> Optional[Block]:
        return self._active[stream]

    def allocate_page(self, stream: WriteStream, lpn: Optional[int]) -> PageAddress:
        """Program-allocate the next page of the stream's active block.

        Opens a new block from the free pool when the active one fills.
        The block's page state is updated immediately (the simulator's
        state changes are instantaneous; timing is replayed separately).
        """
        block = self._active[stream]
        if block is None or block.is_full:
            block = self.take_free_block()
            self._active[stream] = block
        page = block.program(lpn)
        return block.address.page(page)

    # --- GC candidate enumeration -----------------------------------------------------

    def gc_candidates(self) -> List[Block]:
        """Blocks eligible as GC victims: closed, programmed, not retired."""
        active = {id(b) for b in self._active.values() if b is not None}
        free = {id(b) for b in self._free}
        return [
            block
            for block in self.all_blocks
            if id(block) not in active
            and id(block) not in free
            and not block.retired
            and block.write_pointer > 0
        ]

    @property
    def total_free_pages(self) -> int:
        """Free pages across pool and active blocks (capacity headroom)."""
        pages = sum(b.free_pages for b in self._free)
        for block in self._active.values():
            if block is not None:
                pages += block.free_pages
        return pages
