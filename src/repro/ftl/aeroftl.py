"""AEROFTL: the AERO-enabled flash translation layer (paper Section 6).

Extends the conventional page-level FTL with the two AERO data
structures:

* the **Erase-timing Parameter Table** (owned by the AERO scheme's FELP
  predictor) queried with fail-bit counts obtained via GET FEATURE, and
* the **Shallow Erasure Flags** bitmap, one bit per block, deciding
  whether the next erase of a block starts with the shallow probe.

The FTL drives the chip exactly as the paper describes (Figure 12):
consult the SEF, SET FEATURE the pulse length for each EP step, GET
FEATURE the fail-bit count after each VR step, and flip the SEF bit
when remainder erasure can no longer shorten the first loop. Command
traffic is accounted so the overhead analysis can be reproduced.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.config import SsdSpec
from repro.core.aero import AeroEraseScheme
from repro.core.sef import ShallowEraseFlags
from repro.erase.scheme import EraseOperationResult, SegmentKind
from repro.errors import ConfigError
from repro.ftl.ftl import PageLevelFtl
from repro.nand.block import Block
from repro.nand.chip import NandChip


class AeroFtl(PageLevelFtl):
    """Page-level FTL with AERO erase management."""

    def __init__(
        self,
        spec: SsdSpec,
        chips: Sequence[NandChip],
        scheme: AeroEraseScheme,
        rng: Optional[np.random.Generator] = None,
    ):
        if not isinstance(scheme, AeroEraseScheme):
            raise ConfigError("AeroFtl requires an AeroEraseScheme")
        super().__init__(spec, chips, scheme, rng)
        self.sef = ShallowEraseFlags(spec.geometry.blocks)
        self.set_feature_commands = 0
        self.get_feature_commands = 0

    @property
    def aero_scheme(self) -> AeroEraseScheme:
        return self.scheme  # narrowed type

    @property
    def ept(self):
        """The conservative EPT backing FELP (Table 1 t1)."""
        return self.aero_scheme.predictor.conservative

    # --- AERO erase path -------------------------------------------------------------

    def _erase_block(self, block: Block) -> EraseOperationResult:
        """Erase via AERO, driving SEF and feature-command accounting."""
        block_index = self.spec.geometry.block_index(block.address)
        use_shallow = self.sef.shallow_enabled(block_index)
        result = self.aero_scheme.erase(
            block, self.rng, use_shallow=use_shallow
        )
        if result.used_shallow_erase and not result.shallow_erase_useful:
            # Remainder erasure could not shorten the first loop: skip
            # the probe (and its VR) for this block from now on.
            self.sef.disable_shallow(block_index)
        # Command accounting (Figure 12): one SET FEATURE per EP step
        # whose length differs from the default, one GET FEATURE per VR.
        default_pulses = self.spec.profile.pulses_per_loop
        for segment in result.segments:
            if segment.kind is SegmentKind.ERASE_PULSE:
                if segment.pulses != default_pulses:
                    self.set_feature_commands += 1
            else:
                self.get_feature_commands += 1
        self.stats.record_erase(result.scheme, result.latency_us, result.total_pulses)
        return result

    # --- overhead report (paper Section 6, "Implementation Overhead") -------------------

    def overhead_report(self) -> dict:
        """Storage and command overhead of the AERO structures."""
        return {
            "ept_entries": self.ept.entry_count,
            "ept_bytes": self.ept.storage_bytes,
            "sef_bytes": self.sef.storage_bytes,
            "sef_fraction_of_capacity": (
                self.sef.storage_bytes / self.spec.geometry.capacity_bytes
            ),
            "set_feature_commands": self.set_feature_commands,
            "get_feature_commands": self.get_feature_commands,
            "erases": self.stats.erases,
        }
