"""Page-level logical-to-physical mapping (DFTL-style, Gupta et al. [70]).

The table is lazily populated (a dict), which lets the simulator model
a terabyte-scale logical space while only paying for the pages a trace
touches. The physical side of the mapping (which LPN a physical page
holds) lives in :class:`repro.nand.block.Block`, giving the GC its
reverse map.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import MappingError
from repro.nand.geometry import PageAddress


class PageMappingTable:
    """LPN -> physical page address map."""

    def __init__(self, logical_pages: int):
        if logical_pages <= 0:
            raise MappingError("logical space must be positive")
        self.logical_pages = logical_pages
        self._map: Dict[int, PageAddress] = {}

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._map

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise MappingError(
                f"LPN {lpn} outside logical space [0, {self.logical_pages})"
            )

    def lookup(self, lpn: int) -> Optional[PageAddress]:
        """Physical location of ``lpn`` (None if never written/trimmed)."""
        self.check_lpn(lpn)
        return self._map.get(lpn)

    def update(self, lpn: int, address: PageAddress) -> Optional[PageAddress]:
        """Point ``lpn`` at ``address``; returns the previous location."""
        self.check_lpn(lpn)
        previous = self._map.get(lpn)
        self._map[lpn] = address
        return previous

    def remove(self, lpn: int) -> Optional[PageAddress]:
        """Drop the mapping (trim); returns the previous location."""
        self.check_lpn(lpn)
        return self._map.pop(lpn, None)

    def points_at(self, lpn: int, address: PageAddress) -> bool:
        """Whether ``lpn`` currently maps to ``address`` (GC guard)."""
        return self._map.get(lpn) == address

    def items(self) -> Iterator[Tuple[int, PageAddress]]:
        return iter(self._map.items())

    @property
    def mapped_count(self) -> int:
        return len(self._map)
