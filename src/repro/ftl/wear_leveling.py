"""Static wear leveling.

Keeps the P/E spread across blocks bounded: when the gap between the
most- and least-cycled blocks exceeds a threshold, the least-cycled
closed block (cold data that never gets invalidated, hence never
GC-picked) is forced to be the next GC victim, releasing it into write
rotation. This is the classic threshold-based static wear leveler
(Murugan & Du, MSST'11 [26]); the AERO paper assumes such a leveler
exists but does not study it, so the implementation favors clarity.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.ftl.allocator import PlaneAllocator
from repro.nand.block import Block


class WearLeveler:
    """Threshold-based static wear leveling over one plane."""

    def __init__(self, pec_gap_threshold: int = 256):
        if pec_gap_threshold <= 0:
            raise ConfigError("wear-leveling threshold must be positive")
        self.pec_gap_threshold = pec_gap_threshold
        self.interventions = 0

    def pick_cold_victim(self, allocator: PlaneAllocator) -> Optional[Block]:
        """Return a cold block to recycle, or None if wear is balanced."""
        blocks = [b for b in allocator.all_blocks if not b.retired]
        if len(blocks) < 2:
            return None
        min_pec = min(b.wear.pec for b in blocks)
        max_pec = max(b.wear.pec for b in blocks)
        if max_pec - min_pec <= self.pec_gap_threshold:
            return None
        candidates = [
            b for b in allocator.gc_candidates()
            if b.wear.pec <= min_pec + self.pec_gap_threshold // 4
        ]
        if not candidates:
            return None
        self.interventions += 1
        return min(candidates, key=lambda b: (b.wear.pec, b.address))

    def wear_gap(self, allocator: PlaneAllocator) -> int:
        """Current max-min P/E gap (diagnostics)."""
        blocks = [b for b in allocator.all_blocks if not b.retired]
        if not blocks:
            return 0
        return max(b.wear.pec for b in blocks) - min(b.wear.pec for b in blocks)
