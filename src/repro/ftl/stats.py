"""FTL bookkeeping counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FtlStats:
    """Cumulative FTL activity counters."""

    host_reads: int = 0
    host_writes: int = 0
    unmapped_reads: int = 0
    gc_page_moves: int = 0
    gc_jobs: int = 0
    erases: int = 0
    erase_latency_total_us: float = 0.0
    erase_pulses_total: int = 0
    wear_leveling_moves: int = 0
    per_scheme_erases: Dict[str, int] = field(default_factory=dict)

    @property
    def write_amplification(self) -> float:
        """(host writes + GC moves) / host writes."""
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.gc_page_moves) / self.host_writes

    @property
    def mean_erase_latency_us(self) -> float:
        if self.erases == 0:
            return 0.0
        return self.erase_latency_total_us / self.erases

    def record_erase(self, scheme: str, latency_us: float, pulses: int) -> None:
        self.erases += 1
        self.erase_latency_total_us += latency_us
        self.erase_pulses_total += pulses
        self.per_scheme_erases[scheme] = self.per_scheme_erases.get(scheme, 0) + 1
        # Telemetry rides the same boundary: erases arrive here from
        # both engines (the kernel path delegates real erases to the
        # FTL), a few hundred per cell at most.
        from repro.telemetry.instruments import ftl_erase_metrics

        metrics = ftl_erase_metrics()
        metrics.erases.inc()
        metrics.pulses.inc(pulses)
        metrics.latency.observe(latency_us / 1e6)
