"""Garbage collection: greedy victim selection and job planning.

The paper's simulated SSD uses greedy GC (Table 2): the victim is the
closed block with the fewest valid pages, minimizing relocation work
per reclaimed block. A :class:`GcJob` captures everything the timed
simulator must replay: the page moves (read + program pairs) and the
erase operation with its scheme-specific segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.erase.scheme import EraseOperationResult
from repro.ftl.allocator import PlaneAllocator
from repro.nand.block import Block
from repro.nand.geometry import PageAddress, PlaneAddress


@dataclass(frozen=True)
class PageMove:
    """One valid-page relocation (GC read + GC program)."""

    lpn: int
    source: PageAddress
    destination: PageAddress


@dataclass
class GcJob:
    """A planned garbage collection of one victim block.

    State changes (mapping updates, erase physics) are already applied
    when the job is created; the timed simulator replays ``moves`` and
    then the erase segments in ``erase_result``.
    """

    plane: PlaneAddress
    victim: PageAddress  # page 0 of the victim block (block identity)
    moves: List[PageMove] = field(default_factory=list)
    erase_result: Optional[EraseOperationResult] = None
    #: True when the job was enqueued above normal GC priority because
    #: the plane's backlog forced it (the "can no longer delay" case).
    escalated: bool = False

    @property
    def move_count(self) -> int:
        return len(self.moves)

    @property
    def erase_latency_us(self) -> float:
        return self.erase_result.latency_us if self.erase_result else 0.0


class GreedyVictimSelector:
    """Pick the closed block with the fewest valid pages."""

    def select(self, allocator: PlaneAllocator) -> Optional[Block]:
        candidates = allocator.gc_candidates()
        if not candidates:
            return None
        return min(candidates, key=lambda block: (block.valid_count, block.address))

    def reclaimable_pages(self, allocator: PlaneAllocator) -> int:
        """Invalid pages reclaimable right now (diagnostics)."""
        return sum(block.invalid_count for block in allocator.gc_candidates())
