"""AERO reproduction: Adaptive Erase Operation for NAND flash SSDs.

A full-system reproduction of Cho et al., *AERO: Adaptive Erase
Operation for Improving Lifetime and Performance of Modern NAND
Flash-Based SSDs* (ASPLOS 2024): the AERO mechanism (FELP, shallow
erasure, ECC-margin-aware aggressive reduction), every comparison
baseline (ISPE, m-ISPE, i-ISPE, DPES), a calibrated statistical NAND
device model standing in for the paper's 160 real chips, a page-level
FTL, and an event-driven multi-channel SSD simulator.

Quick start::

    from repro import SsdSpec, build_ssd
    from repro.workloads import SyntheticTraceGenerator, profile_by_abbr

    spec = SsdSpec.bench()
    ssd = build_ssd(spec, "aero", pec_setpoint=500)
    ssd.precondition()
    gen = SyntheticTraceGenerator(
        profile_by_abbr("ali.A"), footprint_bytes=spec.logical_bytes
    )
    report = ssd.run_trace(gen.generate(5000))
    print(report.reads.percentile(99.99))
"""

from repro.config import GcSpec, SchedulerSpec, SsdSpec
from repro.core import (
    AeroEraseScheme,
    EraseTimingTable,
    FelpPredictor,
    ShallowEraseFlags,
    build_aggressive_table,
    build_conservative_table,
    published_aggressive_table,
    published_conservative_table,
)
from repro.erase import (
    BaselineIspeScheme,
    DpesScheme,
    EraseOperationResult,
    EraseScheme,
    IntelligentIspeScheme,
    MIspeScheme,
)
from repro.nand import (
    Block,
    ChipProfile,
    MLC_3D_48L,
    NandChip,
    NandGeometry,
    RberModel,
    TLC_2D_2XNM,
    TLC_3D_48L,
)
from repro.schemes import SCHEME_KEYS, make_scheme
from repro.ssd import Ssd, build_ssd

__version__ = "1.0.0"

__all__ = [
    "AeroEraseScheme",
    "BaselineIspeScheme",
    "Block",
    "ChipProfile",
    "DpesScheme",
    "EraseOperationResult",
    "EraseScheme",
    "EraseTimingTable",
    "FelpPredictor",
    "GcSpec",
    "IntelligentIspeScheme",
    "MIspeScheme",
    "MLC_3D_48L",
    "NandChip",
    "NandGeometry",
    "RberModel",
    "SCHEME_KEYS",
    "SchedulerSpec",
    "ShallowEraseFlags",
    "Ssd",
    "SsdSpec",
    "TLC_2D_2XNM",
    "TLC_3D_48L",
    "build_aggressive_table",
    "build_conservative_table",
    "build_ssd",
    "make_scheme",
    "published_aggressive_table",
    "published_conservative_table",
    "__version__",
]
