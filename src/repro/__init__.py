"""AERO reproduction: Adaptive Erase Operation for NAND flash SSDs.

A full-system reproduction of Cho et al., *AERO: Adaptive Erase
Operation for Improving Lifetime and Performance of Modern NAND
Flash-Based SSDs* (ASPLOS 2024): the AERO mechanism (FELP, shallow
erasure, ECC-margin-aware aggressive reduction), every comparison
baseline (ISPE, m-ISPE, i-ISPE, DPES), a calibrated statistical NAND
device model standing in for the paper's 160 real chips, a page-level
FTL, and an event-driven multi-channel SSD simulator.

The declarative experiment API (:mod:`repro.experiments`) is the front
door: an :class:`ExperimentSpec` describes one (scheme, PEC, workload)
cell, the :data:`SCHEMES` / :data:`WORKLOADS` plugin registries resolve
every string key, and results flow through a fingerprint-keyed cache
shared by the Python API and the ``python -m repro`` CLI.

Quick start::

    from repro import Experiment

    report = (Experiment.aero()
              .at_pec(2500)
              .workload("ali.A")
              .requests(5000)
              .run(cache_dir=".repro-cache"))
    print(report.reads.percentile(99.99))

or, equivalently, from the shell::

    python -m repro run --scheme aero --pec 2500 --workload ali.A \\
        --requests 5000 --cache-dir .repro-cache

The lower layers remain importable directly — ``build_ssd`` for a live
:class:`Ssd` object, ``make_scheme`` for a bare erase scheme,
``repro.harness.run_grid`` for campaign grids.
"""

from repro.config import GcSpec, SchedulerSpec, SsdSpec
from repro.core import (
    AeroEraseScheme,
    EraseTimingTable,
    FelpPredictor,
    ShallowEraseFlags,
    build_aggressive_table,
    build_conservative_table,
    published_aggressive_table,
    published_conservative_table,
)
from repro.erase import (
    BaselineIspeScheme,
    DpesScheme,
    EraseOperationResult,
    EraseScheme,
    IntelligentIspeScheme,
    MIspeScheme,
)
from repro.nand import (
    Block,
    ChipProfile,
    MLC_3D_48L,
    NandChip,
    NandGeometry,
    RberModel,
    TLC_2D_2XNM,
    TLC_3D_48L,
)
from repro.schemes import ALL_SCHEME_KEYS, SCHEME_KEYS, make_scheme
from repro.ssd import Ssd, build_ssd
from repro.experiments import SCHEMES, WORKLOADS
from repro.experiments.spec import Experiment, ExperimentSpec
from repro.experiments.runner import run_experiment, run_experiments

__version__ = "1.1.0"

__all__ = [
    "ALL_SCHEME_KEYS",
    "AeroEraseScheme",
    "BaselineIspeScheme",
    "Block",
    "ChipProfile",
    "DpesScheme",
    "EraseOperationResult",
    "EraseScheme",
    "EraseTimingTable",
    "Experiment",
    "ExperimentSpec",
    "FelpPredictor",
    "GcSpec",
    "IntelligentIspeScheme",
    "MIspeScheme",
    "MLC_3D_48L",
    "NandChip",
    "NandGeometry",
    "RberModel",
    "SCHEMES",
    "SCHEME_KEYS",
    "SchedulerSpec",
    "ShallowEraseFlags",
    "Ssd",
    "SsdSpec",
    "TLC_2D_2XNM",
    "TLC_3D_48L",
    "WORKLOADS",
    "build_aggressive_table",
    "build_conservative_table",
    "build_ssd",
    "make_scheme",
    "published_aggressive_table",
    "published_conservative_table",
    "run_experiment",
    "run_experiments",
    "__version__",
]
