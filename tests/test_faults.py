"""Deterministic fault injection and campaign supervision.

The contract pinned here is the ISSUE's acceptance criterion: every
fault kind a :class:`FaultPlan` can express is exercised by a test
whose campaign *finishes* — the injected failure is retried,
degraded, or quarantined, never allowed to abort the run — and the
recovery shows up in telemetry.
"""

import json
import os
import signal

import pytest

from repro.campaign import (
    CampaignSpec,
    Quarantine,
    RetryPolicy,
    ShardedResultStore,
    run_campaign,
)
from repro.errors import ConfigError, InjectedFault, PoisonCellError
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NO_FAULTS,
    load_fault_file,
)
from repro.harness import run_workload_cell
from repro.telemetry import parse_text_format, render_text, scoped_registry

SPEC = CampaignSpec(
    schemes=("baseline", "aero"),
    pec_points=(500,),
    workloads=("hm",),
    requests=40,
    seed=1234,
    engine="object",  # both cells on the killable process pool
)

KERNEL_SPEC = CampaignSpec(
    schemes=("aero",),
    pec_points=(500,),
    workloads=("hm",),
    requests=40,
    seed=1234,
)


@pytest.fixture(scope="module")
def report():
    return run_workload_cell("aero", 500, "hm", requests=40, seed=7)


def families_of(registry):
    return parse_text_format(render_text(registry))


# --- plan validation and round-trip ------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ConfigError):
        FaultSpec(kind="meteor_strike")
    with pytest.raises(ConfigError):
        FaultSpec(kind="kill_worker")  # cell kinds need a cell
    with pytest.raises(ConfigError):
        FaultSpec(kind="torn_tail")  # put kinds need a put_index
    with pytest.raises(ConfigError):
        FaultSpec(kind="slow_cell", cell=0)  # needs delay_s > 0
    with pytest.raises(ConfigError):
        FaultSpec(kind="kill_worker", cell=0, attempt=0)  # 1-based


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        seed=99,
        faults=(
            FaultSpec(kind="kill_worker", cell=3, attempt=None),
            FaultSpec(kind="slow_cell", cell=1, delay_s=0.25),
            FaultSpec(kind="torn_tail", put_index=7),
            FaultSpec(kind="compact_interrupt"),
        ),
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"fault_plan": plan.to_dict()}))
    assert load_fault_file(path) == plan
    with pytest.raises(ConfigError):
        FaultPlan.from_dict({"faults": [{"kind": "torn_tail"}], "typo": 1})


def test_cell_predicates_are_pure_and_filtered():
    plan = FaultPlan(
        faults=(
            FaultSpec(kind="kill_worker", cell=2, attempt=None,
                      engine="auto"),
            FaultSpec(kind="slow_cell", cell=2, attempt=1, delay_s=0.5),
        )
    )
    assert plan.cell_fault(2, 1, "auto") == (0.5, True)
    assert plan.cell_fault(2, 2, "auto") == (0.0, True)  # attempt=None
    # the engine filter lets an object-path fallback escape the kill
    assert plan.cell_fault(2, 3, "object") == (0.0, False)
    assert plan.cell_fault(1, 1, "auto") == (0.0, False)


def test_torn_cut_is_deterministic_and_bounded():
    plan = FaultPlan(seed=7)
    for length in (3, 10, 500):
        cut = plan.torn_cut(0, length)
        assert cut == plan.torn_cut(0, length)  # same seed, same cut
        assert 1 <= cut <= length - 2
    assert FaultPlan(seed=8).torn_cut(0, 500) != plan.torn_cut(0, 500)


def test_retry_backoff_is_seeded_and_bounded():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=1.0, seed=5)
    first = policy.backoff_s("abc", 1)
    assert first == policy.backoff_s("abc", 1)
    assert 0.05 <= first < 0.15  # base * [0.5, 1.5)
    assert policy.backoff_s("abc", 2) != first
    # capped: attempt 20 cannot exceed cap * 1.5
    assert policy.backoff_s("abc", 20) < 1.5


# --- chaos suite: every fault kind finishes its campaign ---------------------


def test_fault_kind_catalogue_is_covered():
    """Every kind in FAULT_KINDS has a chaos test below."""
    assert set(FAULT_KINDS) == {
        "torn_tail", "corrupt_checksum", "crash_before_put",
        "crash_after_put", "kill_worker", "slow_cell",
        "compact_interrupt",
    }


def injected_count(registry, kind):
    families = families_of(registry)
    if "repro_faults_injected_total" not in families:
        return 0
    return families["repro_faults_injected_total"].value({"kind": kind})


@pytest.mark.parametrize("kind", ["torn_tail", "corrupt_checksum"])
def test_chaos_corrupting_put_faults_finish_the_campaign(tmp_path, kind):
    """A put silently damaged on disk: the campaign finishes (the
    writer believed the append worked); the damaged record reads as a
    miss, so the next run re-executes exactly that cell."""
    plan = FaultPlan(seed=3, faults=(FaultSpec(kind=kind, put_index=0),))
    store = ShardedResultStore(
        tmp_path, fault_injector=FaultInjector(plan)
    )
    with scoped_registry() as registry:
        result = run_campaign(SPEC, store, max_retries=1)
    assert result.complete and result.stats.executed == 2
    assert injected_count(registry, kind) == 1
    # the damaged record is a miss; the healthy one survives
    fresh = ShardedResultStore(tmp_path)
    assert len(fresh) == 1
    with scoped_registry():
        resumed = run_campaign(SPEC, ShardedResultStore(tmp_path))
    assert resumed.stats.resumed == 1 and resumed.stats.executed == 1


@pytest.mark.parametrize("kind", ["crash_before_put", "crash_after_put"])
def test_chaos_crashing_put_faults_retry_the_cell(tmp_path, kind):
    plan = FaultPlan(seed=3, faults=(FaultSpec(kind=kind, put_index=0),))
    store = ShardedResultStore(
        tmp_path, fault_injector=FaultInjector(plan)
    )
    with scoped_registry() as registry:
        result = run_campaign(SPEC, store, max_retries=2)
    assert result.complete and result.stats.retried == 1
    assert injected_count(registry, kind) == 1
    families = families_of(registry)
    assert families["repro_campaign_retries_total"].value(
        {"reason": "persist_fault"}
    ) == 1
    # both records durable despite the mid-append crash
    assert len(ShardedResultStore(tmp_path)) == 2


def test_chaos_kill_worker_rebuilds_pool_and_finishes(tmp_path):
    plan = FaultPlan(
        seed=3, faults=(FaultSpec(kind="kill_worker", cell=0, attempt=1),)
    )
    with scoped_registry() as registry:
        result = run_campaign(
            SPEC, tmp_path / "store", fault_plan=plan, max_retries=2
        )
    assert result.complete
    assert result.stats.retried == 1
    assert result.stats.pool_rebuilds >= 1
    families = families_of(registry)
    assert families["repro_campaign_retries_total"].value(
        {"reason": "worker_death"}
    ) == 1
    assert families["repro_campaign_pool_rebuilds_total"].value(
        {"pool": "process"}
    ) >= 1
    assert injected_count(registry, "kill_worker") == 1


def test_chaos_slow_cell_trips_timeout_then_recovers(tmp_path):
    plan = FaultPlan(
        seed=3,
        faults=(
            FaultSpec(kind="slow_cell", cell=1, attempt=1, delay_s=5.0),
        ),
    )
    with scoped_registry() as registry:
        result = run_campaign(
            SPEC,
            tmp_path / "store",
            fault_plan=plan,
            max_retries=2,
            cell_timeout_s=0.5,
        )
    assert result.complete  # attempt 2 carries no fault and succeeds
    assert result.stats.timeouts == 1
    families = families_of(registry)
    assert families["repro_campaign_timeouts_total"].value() == 1
    assert injected_count(registry, "slow_cell") == 1


def test_chaos_compact_interrupt_is_recoverable(tmp_path, report):
    plan = FaultPlan(seed=3, faults=(FaultSpec(kind="compact_interrupt"),))
    store = ShardedResultStore(tmp_path, segment_max_bytes=1)
    keys = []
    for n in range(4):
        key = f"{n:02d}" + "e" * 62
        keys.append(key)
        store.put(key, report)
        store.put(key, report)  # superseded duplicate: forces a rewrite
    store.set_fault_injector(FaultInjector(plan))
    with scoped_registry() as registry:
        with pytest.raises(InjectedFault):
            store.compact()
        assert injected_count(registry, "compact_interrupt") == 1
    # The interrupt hit the documented crash window: merged segment
    # durable, old segments still present. Recovery is a plain reopen.
    recovered = ShardedResultStore(tmp_path)
    assert sorted(recovered.keys()) == sorted(keys)
    recovered.compact()
    assert sorted(recovered.keys()) == sorted(keys)
    assert recovered.stats().segments == len(keys)  # one per shard


# --- quarantine and poison handling ------------------------------------------


def test_poison_cell_quarantines_and_campaign_finishes(tmp_path):
    plan = FaultPlan(
        seed=3,
        faults=(FaultSpec(kind="kill_worker", cell=0, attempt=None),),
    )
    with scoped_registry() as registry:
        result = run_campaign(
            SPEC,
            tmp_path / "store",
            fault_plan=plan,
            max_retries=1,
            engine_fallback=False,
        )
    assert not result.complete
    assert result.stats.quarantined == 1
    assert result.reports[0] is None and result.reports[1] is not None
    assert len(result.grid.cells) == 1
    [record] = result.quarantined
    assert record["reason"] == "worker_death"
    assert record["attempts"] == 2
    families = families_of(registry)
    assert families["repro_campaign_quarantined_total"].value() == 1
    # the quarantine record is durable next to the store
    quarantine = Quarantine(tmp_path / "store")
    assert record["key"] in quarantine
    assert quarantine.entries()[0]["meta"]["scheme"] == "baseline"


def test_on_poison_fail_raises_poison_cell_error(tmp_path):
    plan = FaultPlan(
        seed=3,
        faults=(FaultSpec(kind="kill_worker", cell=0, attempt=None),),
    )
    with scoped_registry():
        with pytest.raises(PoisonCellError) as excinfo:
            run_campaign(
                SPEC,
                tmp_path / "store",
                fault_plan=plan,
                max_retries=0,
                on_poison="fail",
                engine_fallback=False,
            )
    assert excinfo.value.index == 0
    assert excinfo.value.fingerprint
    # even the failing mode leaves the quarantine record behind
    assert len(Quarantine(tmp_path / "store")) == 1


def test_kernel_cell_degrades_to_object_engine(tmp_path):
    """A kernel-path poison cell gets one object-engine attempt; the
    engine filter on the fault lets that attempt through, and engines
    being bit-identical makes the degraded result indistinguishable."""
    plan = FaultPlan(
        seed=3,
        faults=(
            FaultSpec(
                kind="kill_worker", cell=0, attempt=None, engine="auto"
            ),
        ),
    )
    with scoped_registry() as registry:
        result = run_campaign(
            KERNEL_SPEC,
            tmp_path / "store",
            fault_plan=plan,
            max_retries=1,
        )
    assert result.complete
    assert result.stats.degraded == 1
    assert result.stats.quarantined == 0
    families = families_of(registry)
    assert families["repro_campaign_engine_fallbacks_total"].value() == 1
    with scoped_registry():
        reference = run_campaign(
            CampaignSpec(
                schemes=KERNEL_SPEC.schemes,
                pec_points=KERNEL_SPEC.pec_points,
                workloads=KERNEL_SPEC.workloads,
                requests=KERNEL_SPEC.requests,
                seed=KERNEL_SPEC.seed,
                engine="object",
            ),
            tmp_path / "ref",
        )
    assert (
        result.reports[0].to_json_dict()
        == reference.reports[0].to_json_dict()
    )


def test_quarantine_file_round_trips(tmp_path):
    quarantine = Quarantine(tmp_path)
    quarantine.record(
        "f" * 64, index=3, attempts=4, reason="timeout",
        error="exceeded 1s", meta={"scheme": "aero"},
    )
    reopened = Quarantine(tmp_path)
    assert "f" * 64 in reopened
    [entry] = reopened.entries()
    assert entry["attempts"] == 4 and entry["reason"] == "timeout"
    memory_only = Quarantine()
    memory_only.record("a" * 64, index=0, attempts=1, reason="error")
    assert len(memory_only) == 1


def test_no_faults_injector_is_inert(tmp_path, report):
    assert not NO_FAULTS
    assert not FaultPlan()
    ordinal = NO_FAULTS.before_put("ab")
    assert NO_FAULTS.mutate_line(ordinal, b'{"x":1}\n') == b'{"x":1}\n'
    NO_FAULTS.after_put(ordinal, "ab")
    NO_FAULTS.on_compact("before-unlink")


# --- kill -9 during compaction -----------------------------------------------


class _Sigkill(FaultInjector):
    """Turn the compact_interrupt hook into a real SIGKILL."""

    def fire(self, spec, context):
        os.kill(os.getpid(), signal.SIGKILL)


def _compact_and_die(root):
    store = ShardedResultStore(root)
    store.set_fault_injector(
        _Sigkill(FaultPlan(faults=(FaultSpec(kind="compact_interrupt"),)))
    )
    store.compact()


def test_kill9_during_compact_then_clean_reopen(tmp_path, report):
    import multiprocessing as mp

    store = ShardedResultStore(tmp_path, segment_max_bytes=1)
    keys = [f"{n:02d}" + "d" * 62 for n in range(4)]
    for key in keys:
        store.put(key, report)
        store.put(key, report)  # superseded duplicates to compact away
    child = mp.Process(target=_compact_and_die, args=(str(tmp_path),))
    child.start()
    child.join(60)
    assert child.exitcode == -signal.SIGKILL
    # the store lock died with the process; a clean reopen sees every
    # record (merged segment + benign old duplicates, last wins)
    recovered = ShardedResultStore(tmp_path)
    assert sorted(recovered.keys()) == sorted(keys)
    for key in keys:
        assert recovered.get(key) == report
    recovered.compact()  # finishing the interrupted job also works
    assert sorted(ShardedResultStore(tmp_path).keys()) == sorted(keys)
