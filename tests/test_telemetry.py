"""Telemetry subsystem: registry, exposition, instrumentation.

The contracts pinned here are the ISSUE's acceptance criteria: the
text exposition obeys Prometheus v0.0.4 structure (label escaping,
cumulative histogram buckets, ``+Inf`` == ``_count``, ``_sum``
present), the JSON snapshot and text format describe the same moment,
and a crash-injected-then-resumed campaign exposes metrics where
``executed + resumed == total`` and store put/hit counters reconcile
with ``ShardedResultStore.stats()`` — while resumed reports stay
bit-identical to a fresh serial run.
"""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.campaign import (
    CampaignOrchestrator,
    CampaignSpec,
    ShardedResultStore,
    run_campaign,
)
from repro.campaign.orchestrator import CampaignProgress
from repro.campaign.store import record_checksum
from repro.errors import ConfigError
from repro.experiments.cli import main
from repro.harness import GridRunner, SerialExecutor, run_workload_cell
from repro.harness.cache import CACHE_VERSION, ResultCache
from repro.telemetry import (
    MetricsRegistry,
    parse_text_format,
    render_text,
    scoped_registry,
)
from repro.telemetry.httpd import MetricsServer

SPEC = CampaignSpec(
    schemes=("baseline", "aero"),
    pec_points=(500,),
    workloads=("hm", "ali.A"),
    requests=120,
    seed=1234,
)


@pytest.fixture(scope="module")
def report():
    return run_workload_cell("aero", 500, "hm", requests=120, seed=7)


def families_of(registry: MetricsRegistry):
    """Render + reparse — every read path in these tests goes through
    the format validator, so structural invariants are always checked."""
    return parse_text_format(render_text(registry))


# --- registry primitives -----------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_ops_total", "ops")
    counter.inc()
    counter.inc(4)
    gauge = registry.gauge("repro_test_depth", "depth")
    gauge.set(7)
    gauge.inc(2)
    gauge.dec()
    histogram = registry.histogram(
        "repro_test_wait_seconds", "wait", buckets=(0.1, 1.0)
    )
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    families = families_of(registry)
    assert families["repro_test_ops_total"].value() == 5
    assert families["repro_test_depth"].value() == 8
    assert families["repro_test_wait_seconds"].value(
        sample_name="repro_test_wait_seconds_count"
    ) == 3
    assert families["repro_test_wait_seconds"].value(
        {"le": "1.0"}, "repro_test_wait_seconds_bucket"
    ) == 2


def test_counter_rejects_negative_increments():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "t")
    with pytest.raises(ConfigError):
        counter.inc(-1)


def test_redeclaration_is_idempotent_but_conflicts_raise():
    registry = MetricsRegistry()
    first = registry.counter("repro_test_total", "t", labels=("op",))
    again = registry.counter("repro_test_total", "t", labels=("op",))
    assert first is again
    with pytest.raises(ConfigError):
        registry.gauge("repro_test_total", "t")
    with pytest.raises(ConfigError):
        registry.counter("repro_test_total", "t", labels=("other",))


def test_observe_many_matches_scalar_observes():
    import numpy as np

    values = [0.0001, 0.003, 0.02, 0.02, 0.7, 9.0]
    one = MetricsRegistry().histogram("repro_test_seconds", "s")
    for value in values:
        one.observe(value)
    many = MetricsRegistry().histogram("repro_test_seconds", "s")
    many.observe_many(np.asarray(values))
    assert one.snapshot() == many.snapshot()


# --- exposition --------------------------------------------------------------


def test_label_escaping_round_trips():
    registry = MetricsRegistry()
    registry.counter(
        "repro_test_total", "t", labels=("path",)
    ).labels(path='a\\b"c\nd').inc(3)
    families = parse_text_format(render_text(registry))
    assert families["repro_test_total"].value({"path": 'a\\b"c\nd'}) == 3


def test_histogram_exposition_invariants():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_test_seconds", "s", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    text = render_text(registry)
    families = parse_text_format(text)  # validator enforces invariants
    family = families["repro_test_seconds"]
    buckets = [
        families["repro_test_seconds"].value(
            {"le": le}, "repro_test_seconds_bucket"
        )
        for le in ("0.1", "1.0", "10.0", "+Inf")
    ]
    assert buckets == sorted(buckets)  # cumulative
    assert buckets[-1] == family.value(
        sample_name="repro_test_seconds_count"
    ) == 5
    assert family.value(
        sample_name="repro_test_seconds_sum"
    ) == pytest.approx(56.05)


def test_json_and_text_expositions_agree():
    registry = MetricsRegistry()
    registry.counter("repro_test_total", "t", labels=("op",)).labels(
        op="read"
    ).inc(2)
    registry.gauge("repro_test_depth", "d").set(1.5)
    registry.histogram("repro_test_seconds", "s").observe(0.2)
    snapshot = registry.snapshot()
    # the JSON exposition *is* the snapshot: rendering it (after a
    # serialization round trip) equals rendering the registry
    round_tripped = json.loads(json.dumps(snapshot))
    assert render_text(round_tripped) == render_text(registry)


def test_parser_rejects_structural_violations():
    with pytest.raises(ConfigError):
        parse_text_format("repro_orphan_total 3\n")  # no # TYPE line
    non_cumulative = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1.0"} 5\n'
        'repro_h_bucket{le="+Inf"} 3\n'
        "repro_h_sum 1\n"
        "repro_h_count 3\n"
    )
    with pytest.raises(ConfigError):
        parse_text_format(non_cumulative)
    missing_inf = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1.0"} 3\n'
        "repro_h_sum 1\n"
        "repro_h_count 3\n"
    )
    with pytest.raises(ConfigError):
        parse_text_format(missing_inf)


def test_metrics_server_serves_text_and_json():
    registry = MetricsRegistry()
    registry.counter("repro_test_total", "t").inc(9)
    with MetricsServer(registry) as server:
        with urllib.request.urlopen(server.url, timeout=5) as response:
            assert "version=0.0.4" in response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert parse_text_format(text)["repro_test_total"].value() == 9
        json_url = server.url.replace("/metrics", "/metrics.json")
        with urllib.request.urlopen(json_url, timeout=5) as response:
            snapshot = json.loads(response.read().decode("utf-8"))
        assert render_text(snapshot) == text
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                server.url.replace("/metrics", "/nope"), timeout=5
            )


# --- campaign progress edge cases --------------------------------------------


def test_progress_before_first_executed_cell_has_no_rate():
    progress = CampaignProgress(
        total=10, executed=0, resumed=4, elapsed_s=2.0
    )
    assert progress.cells_per_s is None
    assert progress.eta_s is None
    line = progress.format()
    assert "4/10" in line and "ETA" not in line


def test_progress_with_zero_remaining_mid_stream():
    progress = CampaignProgress(
        total=6, executed=2, resumed=4, elapsed_s=1.0
    )
    assert progress.remaining == 0
    assert progress.eta_s == 0.0
    assert "ETA" not in progress.format()  # nothing left to project


def test_progress_of_empty_campaign():
    progress = CampaignProgress(
        total=0, executed=0, resumed=0, elapsed_s=0.0
    )
    assert progress.fraction == 1.0
    assert progress.format().startswith("0/0 cells")


def test_final_progress_reaches_telemetry_without_callback(tmp_path):
    spec = CampaignSpec(
        schemes=("aero",), pec_points=(500,), workloads=("hm",),
        requests=120, seed=1234,
    )
    with scoped_registry() as registry:
        run_campaign(spec, tmp_path / "store")  # no progress callback
        families = families_of(registry)
        assert families["repro_campaign_progress_fraction"].value() == 1.0
        assert families["repro_campaign_eta_seconds"].value() == 0.0
        assert families["repro_campaign_cells_planned"].value() == 1


# --- crash + resume accounting (the acceptance criterion) --------------------


def test_crash_resume_metrics_reconcile(tmp_path):
    reference = GridRunner(executor=SerialExecutor()).run(
        schemes=SPEC.schemes,
        pec_points=SPEC.pec_points,
        workloads=SPEC.workloads,
        requests=SPEC.requests,
        erase_suspension=SPEC.erase_suspension,
        seed=SPEC.seed,
    )
    kill_after = 2

    class Kill(Exception):
        pass

    def bomb(index, job, report, _seen=[0]):  # noqa: B006
        _seen[0] += 1
        if _seen[0] >= kill_after:
            raise Kill()

    with scoped_registry():
        with pytest.raises(Kill):
            CampaignOrchestrator(SPEC, tmp_path, on_cell=bomb).run()

    with scoped_registry() as registry:
        store = ShardedResultStore(tmp_path)
        result = CampaignOrchestrator(SPEC, store).run()
        families = families_of(registry)
        cells = families["repro_campaign_cells_total"]
        executed = cells.value({"outcome": "executed"})
        resumed = cells.value({"outcome": "resumed"})
        assert executed + resumed == SPEC.size
        assert executed == result.stats.executed
        assert resumed == result.stats.resumed == kill_after
        # store counters reconcile with the store's own stats(): every
        # executed cell was put exactly once, every resumed cell was
        # one resume-pass hit, every executed cell one resume-pass miss
        stats = store.stats()
        puts = families["repro_store_puts_total"].value(
            {"backend": "sharded"}
        )
        hits = families["repro_store_gets_total"].value(
            {"backend": "sharded", "outcome": "hit"}
        )
        misses = families["repro_store_gets_total"].value(
            {"backend": "sharded", "outcome": "miss"}
        )
        assert puts == executed
        assert hits == resumed
        assert misses == executed
        assert stats.keys == SPEC.size
        assert stats.superseded == 0
        # stats() refreshes the data_bytes gauge; re-render to see it
        assert families_of(registry)["repro_store_data_bytes"].value(
            {"backend": "sharded"}
        ) == stats.data_bytes
        # cell wall-time histogram saw exactly the executed cells
        assert families["repro_campaign_cell_wall_seconds"].value(
            sample_name="repro_campaign_cell_wall_seconds_count"
        ) == executed
    # and the resumed campaign is still bit-identical to a fresh
    # serial run — instrumentation never touches results
    assert result.grid == reference


# --- store checksums ---------------------------------------------------------


def _segment_lines(store_root):
    for path in sorted(store_root.glob("*/seg-*.jsonl")):
        for line in path.read_text(encoding="utf-8").splitlines():
            yield path, line


def test_store_records_carry_verifiable_crc(tmp_path, report):
    store = ShardedResultStore(tmp_path)
    key = "a" * 64
    store.put(key, report)
    [(_, line)] = list(_segment_lines(tmp_path))
    data = json.loads(line)
    assert data["crc"] == record_checksum(key, data["report"])


def test_checksum_mismatch_reads_as_miss_and_counts(tmp_path, report):
    store = ShardedResultStore(tmp_path)
    good, bad = "a" * 64, "b" * 64
    store.put(good, report)
    store.put(bad, report)
    # corrupt one byte of the bad record's report payload on disk,
    # keeping the line valid JSON — only the CRC can catch this
    for path, line in _segment_lines(tmp_path):
        data = json.loads(line)
        if data["key"] != bad:
            continue
        data["report"]["requests_completed"] += 1
        path.write_text(
            json.dumps(data, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
    with scoped_registry() as registry:
        reopened = ShardedResultStore(tmp_path)
        assert reopened.get(good) == report
        assert bad not in reopened
        assert reopened.get(bad) is None
        stats = reopened.stats()
        assert stats.checksum_failed == 1
        assert stats.keys == 1
        families = families_of(registry)
        assert families["repro_store_bad_entries_total"].value(
            {"backend": "sharded", "reason": "checksum"}
        ) == 1
    # compaction drops the poisoned record for good
    reopened.compact()
    assert ShardedResultStore(tmp_path).stats().checksum_failed == 0


def test_checksum_less_legacy_records_stay_readable(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=2)
    legacy = "c" * 64
    shard_dir = tmp_path / legacy[:2]
    shard_dir.mkdir()
    line = {
        "version": CACHE_VERSION,
        "key": legacy,
        "ts": 1.0,
        "meta": {},
        "report": report.to_json_dict(),
    }
    (shard_dir / "seg-000000.jsonl").write_text(
        json.dumps(line, separators=(",", ":")) + "\n", encoding="utf-8"
    )
    assert legacy in store
    assert store.get(legacy) == report
    assert store.stats().checksum_failed == 0


# --- instrumentation boundaries ----------------------------------------------


def test_replay_and_engine_metrics_flow(tmp_path):
    with scoped_registry() as registry:
        run_workload_cell("aero", 500, "hm", requests=120, seed=7)
        families = families_of(registry)
        assert families["repro_ssd_replays_total"].value() == 1
        reads = families["repro_ssd_requests_total"].value({"op": "read"})
        writes = families["repro_ssd_requests_total"].value({"op": "write"})
        assert reads + writes == 120
        assert families["repro_ssd_latency_seconds"].value(
            {"op": "read"}, "repro_ssd_latency_seconds_count"
        ) == reads
        assert families["repro_ssd_erases_total"].value() > 0
        assert families["repro_ssd_erases_total"].value() == families[
            "repro_ssd_erase_latency_seconds"
        ].value(sample_name="repro_ssd_erase_latency_seconds_count")
        assert families["repro_kernel_engine_total"].value(
            {"site": "cell", "engine": "kernel"}
        ) == 1
        assert families["repro_ssd_waf"].value() >= 1.0


def test_replay_metrics_identical_across_engines():
    kwargs = dict(pec=500, workload="hm", requests=120, seed=7)
    with scoped_registry() as kernel_registry:
        run_workload_cell("aero", engine="kernel", **kwargs)
    with scoped_registry() as object_registry:
        run_workload_cell("aero", engine="object", **kwargs)
    kernel_families = families_of(kernel_registry)
    object_families = families_of(object_registry)
    for name in (
        "repro_ssd_requests_total",
        "repro_ssd_erase_suspensions_total",
        "repro_ssd_erase_resumes_total",
        "repro_ssd_host_writes_total",
        "repro_ssd_gc_page_moves_total",
    ):
        assert kernel_families[name].samples == object_families[
            name
        ].samples, name


def test_cache_backend_counts_hits_misses_and_bad_entries(tmp_path, report):
    with scoped_registry() as registry:
        cache = ResultCache(tmp_path)
        key = "d" * 64
        assert cache.get(key) is None            # absent -> plain miss
        cache.put(key, report)
        assert cache.get(key) == report          # hit
        cache.path(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None            # torn -> miss + reason
        families = families_of(registry)
        assert families["repro_store_puts_total"].value(
            {"backend": "cache"}
        ) == 1
        assert families["repro_store_gets_total"].value(
            {"backend": "cache", "outcome": "hit"}
        ) == 1
        assert families["repro_store_gets_total"].value(
            {"backend": "cache", "outcome": "miss"}
        ) == 2
        assert families["repro_store_bad_entries_total"].value(
            {"backend": "cache", "reason": "torn"}
        ) == 1


# --- CLI surface -------------------------------------------------------------


def test_cli_run_with_store_backend(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    argv = ["run", "--requests", "120", "--seed", "7", "--store", store_dir]
    assert main(argv) == 0
    assert "served from cache: 0" in capsys.readouterr().out
    assert main(argv) == 0
    assert "served from cache: 1" in capsys.readouterr().out
    # the same store resumes a campaign CLI invocation
    assert ShardedResultStore(store_dir).stats().keys == 1


def test_cli_store_and_cache_dir_conflict(tmp_path, capsys):
    assert main([
        "run", "--store", str(tmp_path / "a"),
        "--cache-dir", str(tmp_path / "b"),
    ]) == 2
    assert "either --store or --cache-dir" in capsys.readouterr().err


def test_cli_metrics_dump_validates_and_requires(tmp_path, capsys):
    with scoped_registry() as registry:
        registry.counter("repro_test_total", "t").inc(2)
        assert main([
            "metrics", "dump", "--require", "repro_test_total"
        ]) == 0
        out = capsys.readouterr().out
        assert "repro_test_total 2" in out
        assert main([
            "metrics", "dump", "--require", "repro_absent_total"
        ]) == 2
        assert "repro_absent_total" in capsys.readouterr().err


def test_cli_metrics_dump_from_json_snapshot(tmp_path, capsys):
    registry = MetricsRegistry()
    registry.counter("repro_test_total", "t").inc(3)
    snapshot_path = tmp_path / "snap.json"
    snapshot_path.write_text(
        json.dumps(registry.snapshot()), encoding="utf-8"
    )
    assert main([
        "metrics", "dump", "--from-json", str(snapshot_path),
        "--require", "repro_test_total", "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["snapshot_version"] == 1


def test_cli_campaign_run_writes_metrics_snapshot(tmp_path, capsys):
    snapshot_path = tmp_path / "metrics.json"
    with scoped_registry():
        assert main([
            "campaign", "run", "--store", str(tmp_path / "store"),
            "--schemes", "aero", "--pecs", "500", "--workloads", "hm",
            "--requests", "120", "--quiet",
            "--metrics-json", str(snapshot_path),
        ]) == 0
    capsys.readouterr()
    snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    families = parse_text_format(render_text(snapshot))
    assert families["repro_campaign_cells_total"].value(
        {"outcome": "executed"}
    ) == 1


def test_metrics_server_ephemeral_port_sets_gauge():
    registry = MetricsRegistry()
    with MetricsServer(registry, port=0) as server:
        assert server.port != 0
        families = parse_text_format(render_text(registry))
        assert families["repro_metrics_port"].value() == server.port


def test_metrics_server_address_in_use_is_one_line():
    registry = MetricsRegistry()
    with MetricsServer(registry, port=0) as server:
        with pytest.raises(ConfigError) as excinfo:
            MetricsServer(MetricsRegistry(), port=server.port).start()
    message = str(excinfo.value)
    assert "cannot bind metrics endpoint" in message
    assert str(server.port) in message
    assert "\n" not in message


# --- cross-process snapshot merging ------------------------------------------


def test_merge_snapshot_adds_counters_and_decumulates_histograms():
    child = MetricsRegistry()
    child.counter("repro_test_total", "t", ["kind"]).labels(kind="a").inc(3)
    child.gauge("repro_test_gauge", "g").set(7)
    hist = child.histogram("repro_test_seconds", "h", buckets=[1.0, 2.0])
    hist.observe(0.5)
    hist.observe(1.5)
    hist.observe(9.0)
    parent = MetricsRegistry()
    parent.merge_snapshot(child.snapshot())
    parent.merge_snapshot(child.snapshot())  # merging is additive
    families = families_of(parent)
    assert families["repro_test_total"].value({"kind": "a"}) == 6
    assert families["repro_test_gauge"].value() == 7
    merged = parent.get("repro_test_seconds")._solo()
    assert merged.count == 6
    assert merged.sum == pytest.approx(22.0)
    assert merged.cumulative_buckets() == [(1.0, 2), (2.0, 4), (math.inf, 6)]


def test_merge_snapshot_skips_empty_histograms_and_none():
    child = MetricsRegistry()
    child.histogram("repro_test_seconds", "h", buckets=[1.0])
    parent = MetricsRegistry()
    parent.merge_snapshot(None)
    parent.merge_snapshot({})
    parent.merge_snapshot(child.snapshot())
    # The unobserved histogram must not be created in the parent: that
    # would pin bucket bounds nobody chose.
    assert parent.get("repro_test_seconds") is None


def test_process_executor_forwards_child_telemetry():
    from repro.config import SsdSpec
    from repro.harness import ProcessExecutor
    from repro.harness.runner import CellJob, execute_job

    spec = SsdSpec.small_test(seed=3)
    jobs = [
        CellJob(scheme="baseline", pec=0, workload="hm", spec=spec,
                requests=120, erase_suspension=True, seed=1),
        CellJob(scheme="aero", pec=0, workload="hm", spec=spec,
                requests=120, erase_suspension=True, seed=2),
    ]
    with scoped_registry() as registry:
        ProcessExecutor(2).map(execute_job, jobs)
        replays = registry.get("repro_ssd_replays_total")
        assert replays is not None and replays.value == 2
        latency = registry.get("repro_ssd_latency_seconds")
        assert latency is not None
        assert sum(
            sample["count"]
            for sample in latency.snapshot()["samples"]
        ) > 0


def test_supervised_process_worker_forwards_child_telemetry(tmp_path):
    from repro.campaign.supervisor import CellSupervisor
    from repro.config import SsdSpec
    from repro.harness.runner import CellJob

    job = CellJob(
        scheme="aero", pec=0, workload="hm",
        spec=SsdSpec.small_test(seed=3), requests=120,
        erase_suspension=True, seed=1,
    )
    with scoped_registry() as registry:
        supervisor = CellSupervisor(process_workers=1, thread_workers=1)
        try:
            supervisor.submit(0, job, "process")
            outcome = supervisor.next_outcome()
        finally:
            supervisor.close()
        assert outcome.kind == "done"
        replays = registry.get("repro_ssd_replays_total")
        assert replays is not None and replays.value == 1
