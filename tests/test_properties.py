"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.ept import (
    published_aggressive_table,
    published_conservative_table,
)
from repro.core.felp import FelpPredictor
from repro.erase.scheme import EraseOperationResult, EraseSegment, SegmentKind
from repro.erase.suspension import SegmentCursor
from repro.ftl.mapping import PageMappingTable
from repro.nand.chip_types import TLC_3D_48L
from repro.nand.erase_model import BlockEraseModel, EraseState
from repro.nand.geometry import NandGeometry, PageAddress
from repro.rng import make_rng
from repro.sim.engine import Simulator

PROFILE = TLC_3D_48L


@given(
    required=st.integers(min_value=1, max_value=35),
    pulse_plan=st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=10),
)
def test_erase_state_progress_invariants(required, pulse_plan):
    """Progress never decreases, never exceeds the voltage cap, and the
    ladder completes once total credit covers the requirement."""
    state = EraseState(required=required, profile=PROFILE)
    loop = 0
    last_progress = 0.0
    for pulses in pulse_plan:
        loop = min(loop + 1, PROFILE.max_loops)
        if loop > state.loop:
            state.start_loop(loop)
        state.apply_pulses(pulses)
        assert state.progress >= last_progress
        assert state.progress <= 7 * state.loop + 1e-9
        last_progress = state.progress
    if state.progress >= required:
        assert state.complete


@given(
    age=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_required_pulses_bounds(age, seed):
    model = BlockEraseModel(PROFILE, seed)
    pulses = model.deterministic_pulses(age)
    assert 1 <= pulses <= PROFILE.max_pulses
    # Monotone in age.
    assert model.deterministic_pulses(age + 0.5) >= pulses


@given(fail_bits=st.integers(min_value=0, max_value=10 * PROFILE.delta))
def test_felp_prediction_bounds(fail_bits):
    """Predictions are within [0, default]; aggressive never exceeds
    conservative; above FHIGH both fall back to the default pulse."""
    predictor = FelpPredictor(
        PROFILE,
        conservative=published_conservative_table(PROFILE),
        aggressive=published_aggressive_table(PROFILE),
    )
    for loop in range(1, 6):
        cons = predictor.predict(loop, fail_bits, use_margin=False)
        aggr = predictor.predict(loop, fail_bits, use_margin=True)
        assert 0 <= aggr.pulses <= cons.pulses <= 7
        if fail_bits > PROFILE.f_high:
            assert cons.pulses == 7 and not cons.reduced


@given(
    remaining=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60)
def test_conservative_table_covers_true_remaining(remaining, seed):
    """For any block state with r pulses left, the measured fail-bit
    count maps to a conservative prediction of at least r pulses."""
    rng = make_rng(seed)
    predictor = FelpPredictor(
        PROFILE, conservative=published_conservative_table(PROFILE)
    )
    state = EraseState(required=7 + remaining, profile=PROFILE)
    state.start_loop(1)
    state.apply_pulses(7)
    fail_bits = state.verify_read(rng)
    prediction = predictor.predict(2, fail_bits)
    assert prediction.pulses >= remaining


@given(
    durations=st.lists(
        st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    cut=st.floats(min_value=0.0, max_value=1.0),
)
def test_segment_cursor_time_conservation(durations, cut):
    """advance() consumes exactly the operation's total time, no matter
    where a suspension splits it (plus the resume overhead)."""
    result = EraseOperationResult(scheme="prop")
    for duration in durations:
        result.segments.append(
            EraseSegment(SegmentKind.ERASE_PULSE, duration, loop=1)
        )
    total = sum(durations)
    cursor = SegmentCursor(result, suspend_overhead_us=40.0)
    first = cursor.advance(total * cut)
    if not cursor.finished:
        cursor.suspend()
        cursor.resume()
        second = cursor.advance(1e12)
        assert math.isclose(first + second, total + 40.0, rel_tol=1e-9)
    else:
        assert math.isclose(first, total, rel_tol=1e-9)


@given(
    updates=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 255)),
        max_size=60,
    )
)
def test_mapping_table_point_queries(updates):
    """The mapping always reflects the latest update per LPN."""
    table = PageMappingTable(64)
    latest = {}
    for lpn, token in updates:
        address = PageAddress(0, 0, 0, token % 8, token // 8)
        table.update(lpn, address)
        latest[lpn] = address
    for lpn, address in latest.items():
        assert table.lookup(lpn) == address
    assert table.mapped_count == len(latest)


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_simulator_fires_in_nondecreasing_order(times):
    sim = Simulator()
    fired = []
    for time in times:
        sim.at(time, lambda t=time: fired.append(t))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    channels=st.integers(1, 4),
    chips=st.integers(1, 3),
    planes=st.integers(1, 4),
    blocks=st.integers(1, 16),
    pages=st.integers(1, 32),
)
@settings(max_examples=40)
def test_geometry_index_bijection(channels, chips, planes, blocks, pages):
    geometry = NandGeometry(
        channels=channels,
        chips_per_channel=chips,
        planes_per_chip=planes,
        blocks_per_plane=blocks,
        pages_per_block=pages,
        page_size=4096,
    )
    indices = {
        geometry.block_index(address)
        for address in geometry.iter_block_addresses()
    }
    assert indices == set(range(geometry.blocks))
