"""Page-level FTL: mapping, allocation, GC, preconditioning."""

import pytest

from repro.config import SsdSpec
from repro.erase.ispe import BaselineIspeScheme
from repro.errors import MappingError
from repro.ftl.allocator import WriteStream
from repro.ftl.ftl import PageLevelFtl
from repro.ftl.mapping import PageMappingTable
from repro.nand.chip import NandChip
from repro.nand.geometry import PageAddress


def build_ftl(spec: SsdSpec):
    geometry = spec.geometry
    chips = [
        NandChip(
            channel=channel,
            chip=chip,
            profile=spec.profile,
            planes=geometry.planes_per_chip,
            blocks_per_plane=geometry.blocks_per_plane,
            pages_per_block=geometry.pages_per_block,
            seed=spec.seed,
        )
        for channel in range(geometry.channels)
        for chip in range(geometry.chips_per_channel)
    ]
    return PageLevelFtl(spec, chips, BaselineIspeScheme(spec.profile))


@pytest.fixture
def ftl(small_spec):
    return build_ftl(small_spec)


class TestMappingTable:
    def test_basic_mapping(self):
        table = PageMappingTable(100)
        address = PageAddress(0, 0, 0, 1, 2)
        assert table.lookup(5) is None
        assert table.update(5, address) is None
        assert table.lookup(5) == address
        assert table.points_at(5, address)
        assert 5 in table

    def test_update_returns_previous(self):
        table = PageMappingTable(100)
        first = PageAddress(0, 0, 0, 1, 2)
        second = PageAddress(0, 0, 0, 1, 3)
        table.update(5, first)
        assert table.update(5, second) == first
        assert table.lookup(5) == second

    def test_remove(self):
        table = PageMappingTable(100)
        address = PageAddress(0, 0, 0, 1, 2)
        table.update(5, address)
        assert table.remove(5) == address
        assert table.lookup(5) is None
        assert table.remove(5) is None

    def test_lpn_bounds(self):
        table = PageMappingTable(10)
        with pytest.raises(MappingError):
            table.lookup(10)
        with pytest.raises(MappingError):
            table.update(-1, PageAddress(0, 0, 0, 0, 0))
        with pytest.raises(MappingError):
            PageMappingTable(0)


class TestWritePath:
    def test_write_then_read(self, ftl):
        plan = ftl.write(42)
        assert ftl.read(42) == plan.destination
        assert ftl.stats.host_writes == 1

    def test_unmapped_read(self, ftl):
        assert ftl.read(7) is None
        assert ftl.stats.unmapped_reads == 1

    def test_overwrite_invalidates(self, ftl):
        first = ftl.write(42).destination
        second = ftl.write(42).destination
        assert first != second
        block = ftl.block_at(first.block_address)
        from repro.nand.block import PageState

        assert block.page_state(first.page) is PageState.INVALID
        ftl.check_consistency()

    def test_striping_spreads_planes(self, ftl):
        planes = {ftl.write(lpn).destination.plane_address for lpn in range(8)}
        assert len(planes) == len(ftl.planes)

    def test_trim(self, ftl):
        ftl.write(9)
        ftl.trim(9)
        assert ftl.read(9) is None
        ftl.check_consistency()


class TestGarbageCollection:
    def test_gc_triggers_and_reclaims(self, small_spec):
        ftl = build_ftl(small_spec)
        # Hammer a footprint bigger than one plane's free pool to force GC.
        footprint = small_spec.logical_pages
        jobs = []
        for round_index in range(3):
            for lpn in range(0, footprint, 1):
                jobs.extend(ftl.write(lpn).gc_jobs)
        assert jobs, "GC never triggered"
        assert ftl.stats.erases > 0
        for allocator in ftl.planes:
            assert allocator.free_blocks >= small_spec.gc.low_watermark - 1
        ftl.check_consistency()

    def test_gc_jobs_have_consistent_moves(self, small_spec):
        from repro.rng import make_rng

        ftl = build_ftl(small_spec)
        jobs = []
        # Fill once, then overwrite random LPNs: victims then carry a
        # mix of still-valid and invalid pages, forcing live moves.
        for lpn in range(small_spec.logical_pages):
            jobs.extend(ftl.write(lpn).gc_jobs)
        overwrite_rng = make_rng(404)
        for lpn in overwrite_rng.integers(
            0, small_spec.logical_pages, size=3 * small_spec.logical_pages
        ):
            jobs.extend(ftl.write(int(lpn)).gc_jobs)
        moved = [job for job in jobs if job.moves]
        assert moved, "expected at least one GC job with live moves"
        for job in moved:
            for move in job.moves:
                assert move.source.plane_address == job.plane
                assert move.destination.plane_address == job.plane
                # Moved data is readable at its new location.
                assert ftl.read(move.lpn) is not None
        assert ftl.stats.gc_page_moves == sum(len(j.moves) for j in jobs)

    def test_erase_results_attached(self, small_spec):
        ftl = build_ftl(small_spec)
        jobs = []
        for round_index in range(3):
            for lpn in range(small_spec.logical_pages):
                jobs.extend(ftl.write(lpn).gc_jobs)
        for job in jobs:
            assert job.erase_result is not None
            assert job.erase_result.latency_us > 0


class TestPrecondition:
    def test_precondition_reaches_steady_state(self, small_spec):
        ftl = build_ftl(small_spec)
        footprint = int(small_spec.logical_pages * 0.9)
        ftl.precondition(footprint, overwrite_fraction=0.5)
        assert ftl.mapping.mapped_count == footprint
        ftl.check_consistency()
        # Every plane above the low watermark, and invalid pages exist.
        total_invalid = 0
        for allocator in ftl.planes:
            assert allocator.free_blocks >= small_spec.gc.low_watermark - 1
            total_invalid += sum(b.invalid_count for b in allocator.all_blocks)
        assert total_invalid > 0

    def test_footprint_larger_than_logical_rejected(self, ftl, small_spec):
        with pytest.raises(MappingError):
            ftl.precondition(small_spec.logical_pages + 1)


class TestAllocator:
    def test_streams_are_separate(self, ftl):
        allocator = ftl.planes[0]
        host = allocator.allocate_page(WriteStream.HOST, 1)
        gc = allocator.allocate_page(WriteStream.GC, 2)
        assert host.block_address != gc.block_address

    def test_gc_candidates_exclude_active_and_free(self, ftl):
        allocator = ftl.planes[0]
        allocator.allocate_page(WriteStream.HOST, 1)
        active = allocator.active_block(WriteStream.HOST)
        candidates = allocator.gc_candidates()
        assert active not in candidates
