"""Erase-timing Parameter Table: published values and builders."""

import pytest

from repro.core.ept import (
    EraseTimingTable,
    FelpSample,
    build_aggressive_table,
    build_conservative_table,
    format_table,
    published_aggressive_table,
    published_conservative_table,
)
from repro.errors import ConfigError
from repro.nand.rber import RberModel


def test_published_conservative_matches_table1(profile):
    """Table 1's t1 column in pulse quanta (0.5 ms units)."""
    table = published_conservative_table(profile)
    assert table.row(1) == (1, 2, 3, 4, 5, 5, 5, 5)     # capped by shallow
    for loop in range(2, 6):
        assert table.row(loop) == (1, 2, 3, 4, 5, 6, 7, 7)


def test_published_aggressive_matches_table1(profile):
    """Table 1's t2 column: skip 2 quanta for loops 1-3, 1 for loop 4."""
    table = published_aggressive_table(profile)
    assert table.row(1) == (0, 0, 1, 2, 3, 3, 3, 3)
    assert table.row(2) == (0, 0, 1, 2, 3, 4, 5, 5)
    assert table.row(3) == (0, 0, 1, 2, 3, 4, 5, 5)
    assert table.row(4) == (0, 1, 2, 3, 4, 5, 6, 6)
    assert table.row(5) == (1, 2, 3, 4, 5, 6, 7, 7)     # t2 == t1


def test_storage_overhead_matches_paper(profile):
    """Paper Section 6: 35 entries, 140 bytes with 32-bit values."""
    table = published_conservative_table(profile)
    assert table.entry_count == 40  # 5 loops x 8 ranges (paper: 7x5=35)
    assert table.storage_bytes == table.entry_count * 4
    assert table.storage_bytes <= 256


def test_lookup_above_fhigh_returns_default(profile):
    table = published_conservative_table(profile)
    assert table.lookup_pulses(profile, 2, profile.f_high + 1) == 7


def test_lookup_within_ranges(profile):
    table = published_conservative_table(profile)
    assert table.lookup_pulses(profile, 2, profile.gamma) == 1
    assert table.lookup_pulses(profile, 2, profile.delta) == 2
    assert table.lookup_pulses(profile, 3, 3 * profile.delta) == 4


def test_to_milliseconds(profile):
    table = published_conservative_table(profile)
    ms_rows = table.to_milliseconds(profile)
    assert ms_rows[1][0] == pytest.approx(0.5)
    assert ms_rows[1][6] == pytest.approx(3.5)


def test_table_validation(profile):
    with pytest.raises(ConfigError):
        EraseTimingTable(profile_name="x", rows=(), default_pulses=7)
    with pytest.raises(ConfigError):
        EraseTimingTable(
            profile_name="x", rows=((1, 2), (1, 2, 3)), default_pulses=7
        )
    with pytest.raises(ConfigError):
        EraseTimingTable(profile_name="x", rows=((9,),), default_pulses=7)
    table = published_conservative_table(profile)
    with pytest.raises(ConfigError):
        table.row(0)
    with pytest.raises(ConfigError):
        table.row(99)


class TestConservativeBuilder:
    def test_builder_is_conservative_over_samples(self, profile):
        samples = [
            FelpSample(loop=2, fail_bits=profile.gamma - 50, remaining_pulses=1),
            FelpSample(loop=2, fail_bits=int(0.8 * profile.delta), remaining_pulses=2),
            FelpSample(loop=2, fail_bits=int(0.9 * profile.delta), remaining_pulses=1),
            FelpSample(loop=3, fail_bits=int(2.5 * profile.delta), remaining_pulses=3),
        ]
        table = build_conservative_table(profile, samples)
        for sample in samples:
            predicted = table.lookup_pulses(profile, sample.loop, sample.fail_bits)
            assert predicted >= sample.remaining_pulses

    def test_builder_monotone_in_range(self, profile):
        samples = [
            FelpSample(loop=2, fail_bits=int(3.5 * profile.delta), remaining_pulses=4),
        ]
        table = build_conservative_table(profile, samples)
        for loop in range(1, 6):
            row = table.row(loop)
            assert list(row) == sorted(row)

    def test_builder_rejects_bad_samples(self, profile):
        with pytest.raises(ConfigError):
            build_conservative_table(
                profile, [FelpSample(loop=0, fail_bits=1, remaining_pulses=1)]
            )


class TestAggressiveBuilder:
    def test_reproduces_published_t2(self, profile):
        """The ECC-margin analysis derives exactly Table 1's skips."""
        conservative = published_conservative_table(profile)
        built = build_aggressive_table(profile, conservative)
        assert built.rows == published_aggressive_table(profile).rows

    def test_weaker_requirement_shrinks_skips(self, profile):
        """Figure 17: a 40-bit requirement nearly disables aggression."""
        conservative = published_conservative_table(profile)
        default = build_aggressive_table(profile, conservative)
        weak = build_aggressive_table(
            profile, conservative, requirement_bits_per_kib=40
        )
        def total_skip(table):
            return sum(
                c - a
                for c_row, a_row in zip(conservative.rows, table.rows)
                for c, a in zip(c_row, a_row)
            )
        assert total_skip(weak) < total_skip(default)

    def test_requirement_sweep_monotone(self, profile):
        conservative = published_conservative_table(profile)
        rber = RberModel(profile)
        skips = []
        for requirement in (40, 50, 63):
            table = build_aggressive_table(
                profile, conservative, rber, requirement_bits_per_kib=requirement
            )
            skips.append(
                sum(
                    c - a
                    for c_row, a_row in zip(conservative.rows, table.rows)
                    for c, a in zip(c_row, a_row)
                )
            )
        assert skips == sorted(skips)


def test_format_table_renders(profile):
    text = format_table(profile, published_conservative_table(profile))
    assert "NISPE" in text
    assert "3.5" in text
