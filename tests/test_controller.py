"""SSD controller behaviors: splitting, unmapped reads, GC escalation."""

import pytest

from repro.config import SsdSpec
from repro.ssd.builder import build_ssd
from repro.workloads import Trace, TraceRequest


def make_ssd(seed=61, **scheduler):
    spec = SsdSpec.small_test(seed=seed)
    if scheduler:
        spec = spec.with_scheduler(**scheduler)
    return spec, build_ssd(spec, "baseline", pec_setpoint=500)


def test_request_split_spans_pages():
    """A request covering N pages completes only after all N finish."""
    spec, ssd = make_ssd()
    page = spec.geometry.page_size
    # Write 4 pages worth in one request.
    sectors = 4 * page // 512
    trace = Trace([TraceRequest(0.0, 0, sectors, is_read=False)])
    report = ssd.run_trace(trace)
    assert report.requests_completed == 1
    assert len(report.writes) == 1
    # Latency at least one program (pages parallelize across planes).
    assert report.writes.mean_us >= spec.profile.t_prog_us


def test_unmapped_read_fast_path():
    """Reads of never-written LBAs answer from the mapping table."""
    spec, ssd = make_ssd()
    trace = Trace([TraceRequest(0.0, 0, 8, is_read=True)])
    report = ssd.run_trace(trace)
    assert report.requests_completed == 1
    # Far below tR: no flash access happened.
    assert report.reads.mean_us < spec.profile.t_r_us


def test_mapped_read_touches_flash():
    spec, ssd = make_ssd()
    ssd.precondition(footprint_pages=64)
    trace = Trace([TraceRequest(0.0, 0, 8, is_read=True)])
    report = ssd.run_trace(trace)
    assert report.reads.mean_us >= spec.profile.t_r_us


def test_lba_wraps_into_logical_space():
    """Out-of-range LBAs are folded rather than crashing the replay."""
    spec, ssd = make_ssd()
    huge_lba = spec.logical_pages * spec.geometry.page_size // 512 + 12345
    trace = Trace([TraceRequest(0.0, huge_lba, 8, is_read=False)])
    report = ssd.run_trace(trace)
    assert report.requests_completed == 1


def test_gc_escalation_under_write_pressure():
    """Sustained writes escalate GC beyond the backlog threshold."""
    spec, ssd = make_ssd(erase_suspension=True, gc_escalation_backlog=0)
    ssd.precondition(footprint_pages=int(spec.logical_pages * 0.95))
    page_sectors = spec.geometry.page_size // 512
    requests = [
        TraceRequest(
            arrival_us=i * 5.0,
            lba=(i * 17 % 2000) * page_sectors,
            sectors=page_sectors,
            is_read=False,
        )
        for i in range(600)
    ]
    report = ssd.run_trace(Trace(requests))
    assert report.requests_completed == 600
    assert report.gc_jobs > 0
    ssd.ftl.check_consistency()


def test_incomplete_replay_detected():
    """The facade refuses to report on a replay that lost requests."""
    from repro.errors import SimulationError
    from repro.ssd.ssd import Ssd

    spec, ssd = make_ssd()
    # Sanity: normal replay works; then corrupt the controller path by
    # replaying an empty trace and asserting zero-requests still works.
    report = ssd.run_trace(Trace([]))
    assert report.requests_completed == 0


def test_max_requests_truncation():
    spec, ssd = make_ssd()
    page_sectors = spec.geometry.page_size // 512
    requests = [
        TraceRequest(i * 100.0, i * page_sectors, page_sectors, False)
        for i in range(50)
    ]
    report = ssd.run_trace(Trace(requests), max_requests=10)
    assert report.requests_completed == 10
