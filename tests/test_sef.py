"""Shallow Erasure Flags bitmap."""

import pytest

from repro.core.sef import ShallowEraseFlags
from repro.errors import ConfigError


def test_fresh_drive_all_enabled():
    sef = ShallowEraseFlags(128)
    assert len(sef) == 128
    assert sef.enabled_count == 128
    assert all(sef.shallow_enabled(i) for i in range(128))


def test_disable_and_reenable():
    sef = ShallowEraseFlags(16)
    sef.disable_shallow(3)
    assert not sef.shallow_enabled(3)
    assert sef.disabled_count == 1
    sef.enable_shallow(3)
    assert sef.shallow_enabled(3)


def test_reset():
    sef = ShallowEraseFlags(16)
    for index in range(8):
        sef.disable_shallow(index)
    sef.reset()
    assert sef.enabled_count == 16


def test_storage_overhead_matches_paper():
    """Paper: 1 bit per block -> ~12.5 KB for a 1 TB SSD (~100K blocks)."""
    sef = ShallowEraseFlags(8 * 12_500)
    assert sef.storage_bytes == 12_500


def test_rejects_empty():
    with pytest.raises(ConfigError):
        ShallowEraseFlags(0)
