"""End-to-end integration: characterization -> EPT -> FTL -> SSD replay.

Exercises the full pipeline a user of the library would run: derive the
erase-timing model from a virtual characterization campaign, build an
AERO SSD with it, replay a workload, and check the cross-module
invariants hold at every seam.
"""

import pytest

from repro.characterization import TestPlatform, felp_accuracy
from repro.config import SsdSpec
from repro.core.aero import AeroEraseScheme
from repro.core.ept import (
    build_aggressive_table,
    build_conservative_table,
    published_conservative_table,
)
from repro.core.felp import FelpPredictor
from repro.ftl.aeroftl import AeroFtl
from repro.nand.chip import NandChip
from repro.nand.chip_types import TLC_3D_48L
from repro.schemes import SCHEME_KEYS, make_scheme
from repro.ssd.builder import build_ssd
from repro.workloads import SyntheticTraceGenerator, profile_by_abbr


def test_characterization_to_ept_to_ssd():
    """The paper's deployment flow, end to end."""
    profile = TLC_3D_48L
    # 1. Characterize (Section 5): collect FELP samples.
    platform = TestPlatform(profile, chips=4, blocks_per_chip=10, seed=3)
    accuracy = felp_accuracy(
        platform, pec_points=(1000, 2500, 4000), blocks_per_point=40
    )
    assert len(accuracy.samples) > 50
    # 2. Build the EPT from the campaign (Table 1 methodology).
    conservative = build_conservative_table(profile, accuracy.samples)
    aggressive = build_aggressive_table(profile, conservative)
    predictor = FelpPredictor(profile, conservative, aggressive)
    # 3. Assemble an SSD whose AERO scheme uses the derived tables.
    spec = SsdSpec.small_test(seed=50)
    geometry = spec.geometry
    chips = [
        NandChip(channel, chip, profile, geometry.planes_per_chip,
                 geometry.blocks_per_plane, geometry.pages_per_block, spec.seed)
        for channel in range(geometry.channels)
        for chip in range(geometry.chips_per_channel)
    ]
    scheme = AeroEraseScheme(profile, predictor=predictor, aggressive=True)
    ftl = AeroFtl(spec, chips, scheme)
    from repro.ssd.ssd import Ssd

    ssd = Ssd(spec, chips, ftl, scheme)
    ssd.precondition(footprint_pages=int(spec.logical_pages * 0.85))
    # 4. Replay a workload and verify consistency + AERO activity.
    generator = SyntheticTraceGenerator(
        profile_by_abbr("stg"), footprint_bytes=int(spec.logical_bytes * 0.8),
        seed=60,
    )
    report = ssd.run_trace(generator.generate(300))
    assert report.requests_completed == 300
    ftl.check_consistency()
    assert scheme.stats.erases > 0
    assert ftl.get_feature_commands > 0


@pytest.mark.parametrize("key", SCHEME_KEYS)
def test_every_scheme_replays_cleanly(key):
    spec = SsdSpec.small_test(seed=123)
    ssd = build_ssd(spec, key, pec_setpoint=1500)
    ssd.precondition(footprint_pages=int(spec.logical_pages * 0.85))
    generator = SyntheticTraceGenerator(
        profile_by_abbr("hm"), footprint_bytes=int(spec.logical_bytes * 0.8),
        seed=7,
    )
    report = ssd.run_trace(generator.generate(250))
    assert report.requests_completed == 250
    assert report.scheme == make_scheme(spec.profile, key).name
    ssd.ftl.check_consistency()


def test_replay_is_deterministic():
    def run():
        spec = SsdSpec.small_test(seed=999)
        ssd = build_ssd(spec, "aero", pec_setpoint=2500)
        ssd.precondition(footprint_pages=int(spec.logical_pages * 0.8))
        generator = SyntheticTraceGenerator(
            profile_by_abbr("prxy"),
            footprint_bytes=int(spec.logical_bytes * 0.75),
            seed=3,
        )
        report = ssd.run_trace(generator.generate(300))
        return (
            report.reads.mean_us,
            report.writes.mean_us,
            report.erases,
            report.makespan_us,
        )

    assert run() == run()


def test_wear_accumulates_across_runs():
    """Device state persists across measured windows."""
    spec = SsdSpec.small_test(seed=31)
    ssd = build_ssd(spec, "baseline", pec_setpoint=0)
    ssd.precondition(footprint_pages=int(spec.logical_pages * 0.9))
    generator = SyntheticTraceGenerator(
        profile_by_abbr("ali.A"), footprint_bytes=int(spec.logical_bytes * 0.85),
        seed=13,
    )
    before = max(b.wear.pec for c in ssd.chips for b in c.iter_blocks())
    ssd.run_trace(generator.generate(200))
    after = max(b.wear.pec for c in ssd.chips for b in c.iter_blocks())
    assert after > before
