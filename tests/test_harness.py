"""Evaluation-grid harness."""

import pytest

from repro.harness import EvaluationGrid, GridCell, run_grid, run_workload_cell


@pytest.fixture(scope="module")
def small_grid():
    return run_grid(
        schemes=("baseline", "aero"),
        pec_points=(500,),
        workloads=("hm",),
        requests=200,
        seed=42,
    )


def test_grid_contains_all_cells(small_grid):
    assert small_grid.schemes() == ["aero", "baseline"]
    assert small_grid.workloads() == ["hm"]
    assert small_grid.pec_points() == [500]
    assert len(small_grid.cells) == 2


def test_report_lookup(small_grid):
    report = small_grid.report("aero", 500, "hm")
    assert report.scheme == "aero"
    assert report.requests_completed == 200
    with pytest.raises(KeyError):
        small_grid.report("dpes", 500, "hm")


def test_normalized_read_tail(small_grid):
    table = small_grid.normalized_read_tail(99.0, 500)
    assert table["hm"]["baseline"] == pytest.approx(1.0)
    assert table["hm"]["aero"] > 0


def test_geomean_identity_for_baseline(small_grid):
    geomean = small_grid.geomean_normalized(lambda r: r.read_tail(99.0), 500)
    assert geomean["baseline"] == pytest.approx(1.0)


def test_run_workload_cell_is_deterministic():
    a = run_workload_cell("baseline", 500, "stg", requests=150, seed=9)
    b = run_workload_cell("baseline", 500, "stg", requests=150, seed=9)
    assert a.reads.mean_us == b.reads.mean_us
    assert a.makespan_us == b.makespan_us


def test_suspension_flag_plumbs_through():
    report = run_workload_cell(
        "baseline", 2500, "prxy", requests=300, erase_suspension=False, seed=3
    )
    assert report.erase_suspensions == 0


def test_empty_grid():
    grid = EvaluationGrid()
    assert grid.schemes() == []
    assert grid.workloads() == []


def test_report_lookup_uses_index(small_grid):
    # add() populated the keyed index alongside the cell list.
    assert len(small_grid._index) == len(small_grid.cells)
    report = small_grid.report("baseline", 500, "hm")
    assert report.scheme == "baseline"


def test_in_place_cell_replacement_resolves_fresh(small_grid):
    grid = EvaluationGrid()
    for cell in small_grid.cells:
        grid.add(cell)
    grid.report("baseline", 500, "hm")  # prime the index
    swapped = GridCell("baseline", 500, "hm", small_grid.cells[1].report)
    position = [c.scheme for c in grid.cells].index("baseline")
    grid.cells[position] = swapped
    assert grid.report("baseline", 500, "hm") is swapped.report


def test_duplicate_key_keeps_first_match_and_index(small_grid):
    # The pre-index linear scan returned the first matching cell;
    # duplicates must preserve that and not degrade later lookups.
    grid = EvaluationGrid()
    first = small_grid.cells[0]
    shadow = GridCell(first.scheme, first.pec, first.workload,
                      small_grid.cells[1].report)
    grid.add(first)
    grid.add(shadow)
    assert grid.report(*first.key) is first.report
    assert grid._indexed == len(grid.cells)


def test_direct_cell_append_still_resolves(small_grid):
    # Legacy code appended to .cells directly; report() must detect the
    # stale index and rebuild it rather than miss the new cell.
    grid = EvaluationGrid()
    grid.cells.extend(small_grid.cells)
    assert grid.report("aero", 500, "hm").scheme == "aero"
    grid.cells.append(GridCell("fake", 999, "zz", grid.cells[0].report))
    assert grid.report("fake", 999, "zz") is grid.cells[0].report
    with pytest.raises(KeyError):
        grid.report("fake", 999, "missing")
