"""NAND chip command surface and feature registers."""

import pytest

from repro.errors import AddressError, CommandError, FeatureError
from repro.nand.chip import NandChip
from repro.nand.features import FeatureAddress, FeatureRegisterFile
from repro.nand.geometry import BlockAddress, PageAddress
from repro.nand.timing import NandTiming


@pytest.fixture
def chip(profile):
    return NandChip(
        channel=0, chip=0, profile=profile,
        planes=2, blocks_per_plane=4, pages_per_block=8, seed=5,
    )


def test_chip_structure(chip):
    assert len(chip.planes) == 2
    assert len(list(chip.iter_blocks())) == 8
    assert len(chip.plane(0)) == 4


def test_block_resolution(chip):
    address = BlockAddress(0, 0, 1, 2)
    block = chip.block(address)
    assert block.address == address
    with pytest.raises(AddressError):
        chip.block(BlockAddress(1, 0, 0, 0))  # wrong channel
    with pytest.raises(AddressError):
        chip.plane(5)


def test_program_then_read_timing(chip, profile):
    address = PageAddress(0, 0, 0, 0, 0)
    latency = chip.program_page(address, lpn=9)
    assert latency == profile.t_prog_us
    assert chip.read_page(address) == profile.t_r_us


def test_out_of_order_program_rejected(chip):
    with pytest.raises(CommandError):
        chip.program_page(PageAddress(0, 0, 0, 0, 3))


def test_read_unwritten_page_rejected(chip):
    with pytest.raises(CommandError):
        chip.read_page(PageAddress(0, 0, 0, 0, 0))


def test_erase_primitives_latch_features(chip, rng):
    block = chip.block(BlockAddress(0, 0, 0, 0))
    state = block.begin_erase()
    duration = chip.erase_pulse(block, state, loop=1, pulses=3)
    assert duration == 3 * chip.timing.pulse_quantum_us
    assert chip.features.get_feature(FeatureAddress.ERASE_LOOP_INDEX) == 1
    t_vr, fail_bits = chip.verify_read(block, state)
    assert t_vr == chip.timing.t_vr_us
    assert chip.features.get_feature(FeatureAddress.FAIL_BIT_COUNT) == fail_bits
    assert chip.features.get_feature(FeatureAddress.VERIFY_READ_COUNT) == 1


class TestFeatureRegisterFile:
    def test_defaults(self):
        regs = FeatureRegisterFile(default_pulse_quanta=7)
        assert regs.erase_pulse_quanta == 7

    def test_set_and_restore(self):
        regs = FeatureRegisterFile(default_pulse_quanta=7)
        regs.set_feature(FeatureAddress.ERASE_PULSE_QUANTA, 2)
        assert regs.erase_pulse_quanta == 2
        regs.restore_default_pulse()
        assert regs.erase_pulse_quanta == 7

    def test_read_only_registers(self):
        regs = FeatureRegisterFile(default_pulse_quanta=7)
        with pytest.raises(FeatureError):
            regs.set_feature(FeatureAddress.FAIL_BIT_COUNT, 1)

    def test_unknown_address(self):
        regs = FeatureRegisterFile(default_pulse_quanta=7)
        with pytest.raises(FeatureError):
            regs.get_feature(0x01)
        with pytest.raises(FeatureError):
            regs.set_feature(0x01, 5)

    def test_negative_value_rejected(self):
        regs = FeatureRegisterFile(default_pulse_quanta=7)
        with pytest.raises(FeatureError):
            regs.set_feature(FeatureAddress.ERASE_PULSE_QUANTA, -1)

    def test_reset_erase_state(self):
        regs = FeatureRegisterFile(default_pulse_quanta=7)
        regs.latch_verify_read(500)
        regs.latch_erase_loop(3)
        regs.reset_erase_state()
        assert regs.get_feature(FeatureAddress.ERASE_LOOP_INDEX) == 0
        assert regs.get_feature(FeatureAddress.VERIFY_READ_COUNT) == 0


class TestNandTiming:
    def test_from_profile(self, profile):
        timing = NandTiming.from_profile(profile)
        assert timing.t_ep_us == profile.t_ep_us
        assert timing.pulses_per_loop == profile.pulses_per_loop

    def test_program_scaling(self, profile):
        timing = NandTiming.from_profile(profile)
        scaled = timing.with_program_scale(1.3)
        assert scaled.t_prog_us == pytest.approx(profile.t_prog_us * 1.3)
        fixed = timing.with_program_latency(455.0)
        assert fixed.t_prog_us == 455.0

    def test_erase_pulse_duration(self, profile):
        timing = NandTiming.from_profile(profile)
        assert timing.erase_pulse_us(7) == profile.t_ep_us
        assert timing.erase_pulse_us(0) == 0.0

    def test_validation(self, profile):
        from repro.errors import ConfigError

        timing = NandTiming.from_profile(profile)
        with pytest.raises(ConfigError):
            timing.with_program_scale(0.0)
        with pytest.raises(ConfigError):
            timing.erase_pulse_us(-1)
