"""Erase-physics model: the Figure 4/7 regularities."""

import numpy as np
import pytest

from repro.errors import EraseSchemeError
from repro.nand.chip_types import TLC_3D_48L
from repro.nand.erase_model import (
    BlockEraseModel,
    BlockPopulation,
    EraseState,
    WearState,
)
from repro.rng import make_rng


@pytest.fixture
def model(profile):
    return BlockEraseModel(profile, seed=42, )


def test_model_draw_is_deterministic(profile):
    a = BlockEraseModel(profile, 42, "x", 1)
    b = BlockEraseModel(profile, 42, "x", 1)
    assert a.base == b.base and a.rate == b.rate
    c = BlockEraseModel(profile, 42, "x", 2)
    assert (a.base, a.rate) != (c.base, c.rate)


def test_required_pulses_monotonic_in_age(model):
    pulses = [model.deterministic_pulses(age) for age in np.linspace(0, 8, 30)]
    assert pulses == sorted(pulses)
    assert pulses[0] >= 1
    assert pulses[-1] <= model.profile.max_pulses


def test_nispe_and_mtep_consistent(model, profile):
    for age in (0.0, 1.0, 2.5, 4.0, 5.5):
        pulses = model.deterministic_pulses(age)
        nispe = model.nispe(age)
        assert nispe == (pulses + 6) // 7
        mtep = model.min_t_ep_final_us(age)
        assert mtep == (1 + (pulses - 1) % 7) * profile.pulse_quantum_us
        mtbers = model.min_t_bers_us(age)
        assert mtbers == pytest.approx(
            pulses * profile.pulse_quantum_us + nispe * profile.t_vr_us
        )


def test_population_figure4_shape(profile):
    """Key Figure 4 observations hold over the population."""
    population = BlockPopulation(profile, 600, seed=7)
    # PEC 0: every block erases in a single loop.
    assert set(population.nispe_histogram(0.0)) == {1}
    # PEC 1K: most blocks still single-loop (paper: 76.5 %).
    hist_1k = population.nispe_histogram(1.0)
    single = hist_1k.get(1, 0) / 600
    assert 0.60 <= single <= 0.95
    # PEC 2K: every block needs at least two loops.
    assert 1 not in population.nispe_histogram(2.0)
    # PEC 5K: loop counts reach 4-5.
    assert population.nispe_histogram(5.0).get(5, 0) > 0
    # mtBERS spread grows with PEC (paper: sigma 2.7 ms at 3.5K).
    std_35 = float(np.std(population.min_t_bers_ms(3.5)))
    std_05 = float(np.std(population.min_t_bers_ms(0.5)))
    assert std_35 > std_05
    assert 1.5 <= std_35 <= 4.0


def test_population_majority_under_default_tep_at_pec0(profile):
    """Paper: >70 % of fresh blocks fully erase within 2.5 ms."""
    population = BlockPopulation(profile, 600, seed=7)
    values = population.min_t_bers_ms(0.0)
    frac = sum(1 for v in values if v <= 2.5 + 0.1) / len(values)
    assert frac >= 0.6


class TestEraseState:
    def test_ladder_progress(self, profile):
        state = EraseState(required=10, profile=profile)
        state.start_loop(1)
        state.apply_pulses(7)
        assert state.progress == 7
        assert not state.complete
        state.start_loop(2)
        state.apply_pulses(3)
        assert state.progress == 10
        assert state.complete
        assert state.remaining_pulses == 0

    def test_progress_capped_by_voltage(self, profile):
        """Dwelling at a low voltage cannot erase a hard block."""
        state = EraseState(required=20, profile=profile)
        state.start_loop(1)
        state.apply_pulses(7)
        state.apply_pulses(7)  # extra dwell at loop-1 voltage
        assert state.progress == 7  # capped at 7 * loop

    def test_jump_gets_partial_credit_on_3d(self, profile):
        assert profile.is_3d
        state = EraseState(required=14, profile=profile)
        state.start_loop(2)  # i-ISPE-style jump
        assert state.skipped_loops == 1
        # 0.8 efficiency: credit 5.6 < 7 full loops.
        assert state.progress == pytest.approx(0.8 * 7)
        state.apply_pulses(7)
        assert not state.complete  # the jump made it fail

    def test_jump_full_credit_on_2d(self):
        from repro.nand.chip_types import TLC_2D_2XNM

        state = EraseState(required=14, profile=TLC_2D_2XNM)
        state.start_loop(2)
        assert state.progress == pytest.approx(7.0)
        state.apply_pulses(7)
        assert state.complete  # i-ISPE works on 2D chips

    def test_cannot_lower_voltage(self, profile):
        state = EraseState(required=10, profile=profile)
        state.start_loop(3)
        with pytest.raises(EraseSchemeError):
            state.start_loop(2)

    def test_pulse_before_loop_rejected(self, profile):
        state = EraseState(required=5, profile=profile)
        with pytest.raises(EraseSchemeError):
            state.apply_pulses(1)

    def test_damage_grows_with_loop_voltage(self, profile):
        low = EraseState(required=99, profile=profile)
        low.start_loop(1)
        low.apply_pulses(7)
        high = EraseState(required=99, profile=profile)
        high.start_loop(1)
        high.apply_pulses(7)
        high.start_loop(2)
        high.apply_pulses(7)
        per_pulse_low = low.damage / 7
        per_pulse_high = (high.damage - low.damage) / 7
        assert per_pulse_high > per_pulse_low

    def test_damage_scale_applies(self, profile):
        scaled = EraseState(required=99, profile=profile, damage_scale=0.5)
        scaled.start_loop(1)
        scaled.apply_pulses(4)
        plain = EraseState(required=99, profile=profile)
        plain.start_loop(1)
        plain.apply_pulses(4)
        assert scaled.damage == pytest.approx(0.5 * plain.damage)


class TestVerifyRead:
    def test_failbit_linearity(self, profile, rng):
        """F ~ gamma + delta*(r-1): slope delta per remaining pulse."""
        means = {}
        for remaining in (2, 4, 6):
            samples = []
            for _ in range(300):
                state = EraseState(required=7 + remaining, profile=profile)
                state.start_loop(1)
                state.apply_pulses(7)
                state.start_loop(2)
                samples.append(state.verify_read(rng))
            means[remaining] = float(np.mean(samples))
        slope_24 = (means[4] - means[2]) / 2
        slope_46 = (means[6] - means[4]) / 2
        assert slope_24 == pytest.approx(profile.delta, rel=0.25)
        assert slope_46 == pytest.approx(profile.delta, rel=0.25)

    def test_gamma_floor_consistent(self, profile, rng):
        """One pulse remaining reads ~gamma, well above FPASS."""
        samples = []
        for _ in range(200):
            state = EraseState(required=8, profile=profile)
            state.start_loop(1)
            state.apply_pulses(7)
            samples.append(state.verify_read(rng))
        mean = float(np.mean(samples))
        assert mean == pytest.approx(profile.gamma, rel=0.15)
        assert min(samples) > profile.f_pass

    def test_complete_block_passes(self, profile, rng):
        state = EraseState(required=5, profile=profile)
        state.start_loop(1)
        state.apply_pulses(5)
        for _ in range(50):
            fail_bits = state.verify_read(rng)
            assert state.passes(fail_bits)

    def test_saturation_far_from_complete(self, profile, rng):
        state = EraseState(required=35, profile=profile)
        state.start_loop(1)
        state.apply_pulses(1)
        counts = [state.verify_read(rng) for _ in range(50)]
        assert min(counts) > profile.f_high  # no reduction possible


class TestWearState:
    def test_baseline_cycling_ages_one_cycle_per_erase(self, profile):
        """Under Baseline ISPE, wear age == PEC/1000 exactly."""
        model = BlockEraseModel(profile, 11)
        wear = WearState()
        for _ in range(40):
            loops = model.nispe(wear.age_kilocycles)
            damage = 7 * sum(profile.pulse_damage(i) for i in range(1, loops + 1))
            wear.record_erase(model, damage, cycles=25)
        assert wear.pec == 1000
        assert wear.age_kilocycles == pytest.approx(1.0, rel=1e-6)

    def test_gentler_erases_age_slower(self, profile):
        model = BlockEraseModel(profile, 11)
        wear = WearState()
        baseline = model.baseline_damage(0.0)
        wear.record_erase(model, baseline * 0.5, cycles=1000)
        assert wear.age_kilocycles < 1.0
        assert wear.pec == 1000

    def test_residual_recorded(self, profile):
        model = BlockEraseModel(profile, 11)
        wear = WearState()
        wear.record_erase(model, 7.0, residual_fail_bits=4000, nispe=2)
        assert wear.residual_fail_bits == 4000
        assert wear.residual_nispe == 2
