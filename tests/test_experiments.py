"""Declarative experiment API: registries, specs, builder, runner."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    Experiment,
    ExperimentSpec,
    SCHEMES,
    WORKLOADS,
    load_spec_file,
    run_experiments,
)
from repro.experiments.registry import Registry, SchemeRegistry
from repro.config import SsdSpec
from repro.harness.runner import GridRunner
from repro.nand.chip_types import TLC_3D_48L
from repro.schemes import ALL_SCHEME_KEYS, SCHEME_KEYS, make_scheme
from repro.workloads.profiles import ALL_PROFILES, WorkloadProfile


# --- registries --------------------------------------------------------------


def test_all_six_schemes_registered():
    assert set(SCHEMES.keys()) == {
        "baseline", "iispe", "dpes", "mispe", "aero_cons", "aero",
    }


def test_scheme_keys_drift_fixed():
    # mispe is constructible AND listed; the paper's comparison tuple
    # stays the historical five.
    assert "mispe" in ALL_SCHEME_KEYS
    assert SCHEME_KEYS == ("baseline", "iispe", "dpes", "aero_cons", "aero")
    assert set(SCHEME_KEYS) < set(ALL_SCHEME_KEYS)


def test_unknown_scheme_error_lists_valid_keys():
    with pytest.raises(ConfigError) as excinfo:
        SCHEMES.get("bogus")
    message = str(excinfo.value)
    for key in ALL_SCHEME_KEYS:
        assert key in message


def test_unknown_workload_error_lists_valid_keys():
    with pytest.raises(ConfigError) as excinfo:
        WORKLOADS.resolve("bogus")
    message = str(excinfo.value)
    for profile in ALL_PROFILES:
        assert profile.abbr in message


def test_every_profile_resolves_through_registry():
    for profile in ALL_PROFILES:
        assert WORKLOADS.resolve(profile.abbr) is profile


def test_make_scheme_shim_equals_registry():
    shim = make_scheme(TLC_3D_48L, "aero")
    direct = SCHEMES.create(
        "aero", TLC_3D_48L, mispredict_rate=0.0, rber_requirement=None
    )
    assert type(shim) is type(direct)
    assert shim.name == direct.name


def test_register_decorator_and_unregister():
    registry = SchemeRegistry("scheme")

    @registry.register("custom")
    def _build(profile, *, mispredict_rate=0.0, rber_requirement=None):
        return ("custom-scheme", profile)

    assert "custom" in registry
    assert registry.create("custom", TLC_3D_48L) == ("custom-scheme", TLC_3D_48L)
    with pytest.raises(ConfigError, match="already registered"):
        registry.register("custom", _build)
    registry.register("custom", _build, replace=True)
    registry.unregister("custom")
    assert "custom" not in registry


def test_plugin_scheme_visible_to_global_surface():
    @SCHEMES.register("test_plugin")
    def _build(profile, *, mispredict_rate=0.0, rber_requirement=None):
        return make_scheme(profile, "baseline")

    try:
        assert "test_plugin" in SCHEMES.keys()
        scheme = make_scheme(TLC_3D_48L, "test_plugin")
        assert scheme.name == "baseline"
        # The fluent builder grows an entry point automatically.
        spec = Experiment.test_plugin().spec()
        assert spec.scheme == "test_plugin"
    finally:
        SCHEMES.unregister("test_plugin")


def test_scheme_rejecting_params_raises_config_error():
    with pytest.raises(ConfigError, match="rejected params"):
        SCHEMES.create("baseline", TLC_3D_48L, not_a_knob=1)


def test_registry_key_must_be_string():
    with pytest.raises(ConfigError):
        Registry("thing").register("", object())


def test_failed_populate_import_is_not_sticky():
    registry = Registry("thing", populate=("no.such.module",))
    with pytest.raises(ModuleNotFoundError):
        registry.keys()
    # The failure must re-raise on retry, not silently read as empty.
    with pytest.raises(ModuleNotFoundError):
        registry.keys()


def test_factory_internal_type_errors_propagate():
    registry = SchemeRegistry("scheme")

    @registry.register("buggy")
    def _build(profile, *, mispredict_rate=0.0, rber_requirement=None):
        return "x" + 1  # a factory bug, not a params problem

    with pytest.raises(TypeError):
        registry.create("buggy", TLC_3D_48L)


def test_null_and_integer_default_params_share_fingerprint():
    plain = ExperimentSpec(scheme="aero", pec=500, workload="hm", requests=100)
    assert ExperimentSpec(
        scheme="aero", pec=500, workload="hm", requests=100,
        scheme_params={"rber_requirement": None},
    ).fingerprint == plain.fingerprint
    assert ExperimentSpec(
        scheme="aero", pec=500, workload="hm", requests=100,
        scheme_params={"mispredict_rate": 0},
    ).fingerprint == plain.fingerprint


def test_workload_registry_plugin_roundtrip():
    custom = WorkloadProfile("synthetic", "unit_test", "unit.test",
                             0.5, 16.0, 10.0)
    WORKLOADS.add(custom)
    try:
        assert WORKLOADS.resolve("unit.test") is custom
    finally:
        WORKLOADS.unregister("unit.test")


# --- ExperimentSpec ----------------------------------------------------------


def test_spec_json_roundtrip_identity():
    spec = ExperimentSpec(
        scheme="aero",
        pec=2500,
        workload="ali.A",
        requests=5000,
        seed=123,
        scheme_params={"mispredict_rate": 0.05},
    )
    rebuilt = ExperimentSpec.from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.fingerprint == spec.fingerprint


def test_spec_roundtrip_with_explicit_ssd():
    spec = ExperimentSpec(ssd=SsdSpec.bench(seed=9), workload="hm")
    rebuilt = ExperimentSpec.from_dict(json.loads(spec.to_json()))
    assert rebuilt.ssd == spec.ssd
    assert rebuilt.fingerprint == spec.fingerprint


def test_spec_serializes_equal_but_not_identical_profile():
    # A deepcopied/pickled SsdSpec carries a profile object that is
    # equal to the built-in but not the same instance; serialization
    # must compare by value, not identity.
    import copy

    spec = ExperimentSpec(ssd=copy.deepcopy(SsdSpec.bench(seed=9)))
    rebuilt = ExperimentSpec.from_dict(spec.to_dict())
    assert rebuilt.fingerprint == spec.fingerprint


def test_spec_rejects_truly_custom_profile():
    import dataclasses

    custom = dataclasses.replace(TLC_3D_48L, gamma=123)
    with pytest.raises(ConfigError, match="shadows a built-in"):
        ExperimentSpec(ssd=SsdSpec(profile=custom)).to_dict()


def test_spec_fingerprint_matches_grid_runner_plan():
    spec = ExperimentSpec(scheme="baseline", pec=500, workload="hm",
                          requests=300, seed=11)
    job = GridRunner().plan(
        ["baseline"], [500], ["hm"], 300, None, True, 11
    )[0]
    assert spec.resolve() == job
    assert spec.fingerprint == job.fingerprint


def test_spec_fingerprint_sensitivity():
    base = ExperimentSpec(scheme="aero", pec=500, workload="hm", requests=100)
    assert base.fingerprint == ExperimentSpec(
        scheme="aero", pec=500, workload="hm", requests=100
    ).fingerprint
    for other in (
        ExperimentSpec(scheme="baseline", pec=500, workload="hm", requests=100),
        ExperimentSpec(scheme="aero", pec=2500, workload="hm", requests=100),
        ExperimentSpec(scheme="aero", pec=500, workload="usr", requests=100),
        ExperimentSpec(scheme="aero", pec=500, workload="hm", requests=101),
        ExperimentSpec(scheme="aero", pec=500, workload="hm", requests=100,
                       seed=1),
        ExperimentSpec(scheme="aero", pec=500, workload="hm", requests=100,
                       erase_suspension=False),
        ExperimentSpec(scheme="aero", pec=500, workload="hm", requests=100,
                       scheme_params={"mispredict_rate": 0.1}),
        ExperimentSpec(scheme="aero", pec=500, workload="hm", requests=100,
                       scheme_params={"rber_requirement": 40}),
    ):
        assert other.fingerprint != base.fingerprint


def test_scheme_params_tuple_values_roundtrip_fingerprint_stably():
    # JSON turns tuples into lists; the spec canonicalizes up front so
    # a save/load cycle cannot change the fingerprint.
    spec = ExperimentSpec(scheme_params={"levels": (1, 2, 3)})
    assert spec.params == {"levels": [1, 2, 3]}
    rebuilt = ExperimentSpec.from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.fingerprint == spec.fingerprint


def test_scheme_params_reject_non_json_values():
    with pytest.raises(ConfigError, match="non-JSON-serializable"):
        ExperimentSpec(scheme_params={"bad": {1, 2}})


def test_scheme_params_normalized_and_order_insensitive():
    a = ExperimentSpec(scheme_params={"b": 2, "a": 1})
    b = ExperimentSpec(scheme_params=(("a", 1), ("b", 2)))
    assert a == b
    assert a.params == {"a": 1, "b": 2}
    assert hash(a) == hash(b)


def test_spec_validation_errors():
    with pytest.raises(ConfigError):
        ExperimentSpec(requests=0)
    with pytest.raises(ConfigError):
        ExperimentSpec(pec=-1)
    with pytest.raises(ConfigError, match="unknown scheme"):
        ExperimentSpec(scheme="bogus").resolve()
    with pytest.raises(ConfigError, match="unknown workload"):
        ExperimentSpec(workload="bogus").resolve()


def test_from_dict_rejects_unknown_fields_and_versions():
    with pytest.raises(ConfigError, match="unknown experiment spec fields"):
        ExperimentSpec.from_dict({"scheme": "aero", "pce": 500})
    with pytest.raises(ConfigError, match="version"):
        ExperimentSpec.from_dict({"version": 99})
    with pytest.raises(ConfigError):
        ExperimentSpec.from_dict("not a dict")


def test_minimal_dict_uses_defaults():
    spec = ExperimentSpec.from_dict({"scheme": "baseline"})
    assert spec == ExperimentSpec(scheme="baseline")


# --- fluent builder ----------------------------------------------------------


def test_builder_equals_kwargs():
    built = (
        Experiment.aero()
        .at_pec(2500)
        .workload("ali.A")
        .requests(5000)
        .spec()
    )
    assert built == ExperimentSpec(
        scheme="aero", pec=2500, workload="ali.A", requests=5000
    )


def test_builder_full_surface():
    ssd = SsdSpec.small_test(seed=3)
    built = (
        Experiment.aero_cons(mispredict_rate=0.1)
        .at_pec(500)
        .workload("hm")
        .requests(800)
        .seed(42)
        .ssd(ssd)
        .suspension(False)
        .params(rber_requirement=50)
        .spec()
    )
    assert built == ExperimentSpec(
        scheme="aero_cons",
        pec=500,
        workload="hm",
        requests=800,
        seed=42,
        ssd=ssd,
        erase_suspension=False,
        scheme_params={"mispredict_rate": 0.1, "rber_requirement": 50},
    )


def test_builder_steps_are_immutable():
    base = Experiment.baseline()
    assert base.at_pec(500) is not base
    assert base.spec().pec == ExperimentSpec().pec


def test_builder_unknown_scheme_attr():
    with pytest.raises(AttributeError, match="registered schemes"):
        Experiment.not_a_scheme
    with pytest.raises(ConfigError, match="unknown workload"):
        Experiment.aero().workload("bogus")


# --- runner ------------------------------------------------------------------


def test_run_experiments_executes_and_caches(tmp_path):
    specs = [
        ExperimentSpec(scheme=scheme, pec=500, workload="hm",
                       requests=150, seed=9)
        for scheme in ("baseline", "aero")
    ]
    first = run_experiments(specs, cache_dir=tmp_path)
    assert first.stats.executed == 2 and first.stats.cached == 0
    assert len(first.reports) == 2
    second = run_experiments(specs, cache_dir=tmp_path)
    assert second.stats.executed == 0 and second.stats.cached == 2
    # Cached replay is bit-identical.
    for a, b in zip(first.reports, second.reports):
        assert a.reads.mean_us == b.reads.mean_us
        assert a.makespan_us == b.makespan_us
    # The grid view indexes the same reports.
    assert first.grid.report("aero", 500, "hm") is first.reports[1]


def test_run_experiments_shares_cache_with_grid_runner(tmp_path):
    spec = ExperimentSpec(scheme="baseline", pec=500, workload="hm",
                          requests=150, seed=9)
    run_experiments([spec], cache_dir=tmp_path)
    runner = GridRunner(cache_dir=tmp_path)
    runner.run(schemes=("baseline",), pec_points=(500,), workloads=("hm",),
               requests=150, seed=9)
    assert runner.stats.cached == 1 and runner.stats.executed == 0


def test_run_experiments_rejects_empty():
    with pytest.raises(ConfigError):
        run_experiments([])


def test_spec_run_convenience(tmp_path):
    report = ExperimentSpec(
        scheme="baseline", pec=500, workload="hm", requests=150, seed=9
    ).run(cache_dir=tmp_path)
    assert report.requests_completed == 150


# --- spec files --------------------------------------------------------------


def test_load_spec_file_variants(tmp_path):
    spec = ExperimentSpec(scheme="dpes", pec=500, workload="stg", requests=100)
    single = tmp_path / "one.json"
    single.write_text(spec.to_json())
    assert load_spec_file(single) == [spec]

    many = tmp_path / "many.json"
    many.write_text(json.dumps([spec.to_dict(), spec.to_dict()]))
    assert load_spec_file(many) == [spec, spec]

    wrapped = tmp_path / "wrapped.json"
    wrapped.write_text(json.dumps({"experiments": [spec.to_dict()]}))
    assert load_spec_file(wrapped) == [spec]

    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ConfigError, match="invalid JSON"):
        load_spec_file(bad)
    with pytest.raises(ConfigError, match="cannot read"):
        load_spec_file(tmp_path / "missing.json")
