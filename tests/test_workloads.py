"""Traces, Table 3 profiles, synthetic generation, format parsers."""

import pytest

from repro.errors import ConfigError, TraceError
from repro.units import SECTOR_BYTES
from repro.workloads import (
    ALL_PROFILES,
    SyntheticTraceGenerator,
    Trace,
    TraceRequest,
    load_alibaba_csv,
    load_msrc_csv,
    profile_by_abbr,
    save_alibaba_csv,
    save_msrc_csv,
)
from repro.workloads.trace import merge_traces


class TestTrace:
    def test_request_validation(self):
        with pytest.raises(TraceError):
            TraceRequest(arrival_us=-1, lba=0, sectors=1, is_read=True)
        with pytest.raises(TraceError):
            TraceRequest(arrival_us=0, lba=0, sectors=0, is_read=True)

    def test_time_ordering_enforced(self):
        a = TraceRequest(10.0, 0, 1, True)
        b = TraceRequest(5.0, 0, 1, True)
        with pytest.raises(TraceError):
            Trace([a, b])

    def test_statistics(self):
        requests = [
            TraceRequest(0.0, 0, 8, True),
            TraceRequest(100.0, 8, 24, False),
            TraceRequest(200.0, 0, 16, True),
        ]
        trace = Trace(requests)
        assert trace.read_ratio == pytest.approx(2 / 3)
        assert trace.avg_request_bytes == pytest.approx(16 * SECTOR_BYTES)
        assert trace.avg_inter_arrival_us == pytest.approx(100.0)
        assert trace.max_lba == 32
        assert trace.duration_us == 200.0

    def test_acceleration(self):
        trace = Trace([TraceRequest(0.0, 0, 1, True), TraceRequest(100.0, 0, 1, True)])
        fast = trace.accelerated(10.0)
        assert fast.avg_inter_arrival_us == pytest.approx(10.0)
        with pytest.raises(TraceError):
            trace.accelerated(0.0)

    def test_merge(self):
        t1 = Trace([TraceRequest(0.0, 0, 1, True), TraceRequest(50.0, 0, 1, True)])
        t2 = Trace([TraceRequest(25.0, 0, 1, False)])
        merged = merge_traces([t1, t2])
        assert [r.arrival_us for r in merged] == [0.0, 25.0, 50.0]


class TestProfiles:
    def test_eleven_workloads(self):
        assert len(ALL_PROFILES) == 11
        assert sum(1 for p in ALL_PROFILES if p.suite == "alibaba") == 5
        assert sum(1 for p in ALL_PROFILES if p.suite == "msrc") == 6

    def test_table3_values(self):
        ali_a = profile_by_abbr("ali.A")
        assert ali_a.read_ratio == 0.07
        assert ali_a.avg_request_kb == 54.0
        assert ali_a.acceleration == 1.0
        rsrch = profile_by_abbr("rsrch")
        assert rsrch.acceleration == 10.0
        assert rsrch.effective_inter_arrival_us == pytest.approx(42190.0)

    def test_unknown_abbr(self):
        with pytest.raises(ConfigError):
            profile_by_abbr("nope")


class TestSyntheticGenerator:
    def test_reproducible(self):
        profile = profile_by_abbr("hm")
        g1 = SyntheticTraceGenerator(profile, footprint_bytes=1 << 26, seed=5)
        g2 = SyntheticTraceGenerator(profile, footprint_bytes=1 << 26, seed=5)
        t1, t2 = g1.generate(300), g2.generate(300)
        assert [(r.arrival_us, r.lba, r.sectors, r.is_read) for r in t1] == [
            (r.arrival_us, r.lba, r.sectors, r.is_read) for r in t2
        ]

    @pytest.mark.parametrize("abbr", ["ali.A", "ali.E", "rsrch", "prxy", "usr"])
    def test_matches_profile_statistics(self, abbr):
        profile = profile_by_abbr(abbr)
        generator = SyntheticTraceGenerator(
            profile, footprint_bytes=1 << 28, seed=11
        )
        trace = generator.generate(3000)
        assert trace.read_ratio == pytest.approx(profile.read_ratio, abs=0.05)
        assert trace.avg_request_bytes == pytest.approx(
            profile.avg_request_kb * 1024, rel=0.25
        )
        assert trace.avg_inter_arrival_us == pytest.approx(
            profile.effective_inter_arrival_us, rel=0.25
        )

    def test_addresses_within_footprint(self):
        profile = profile_by_abbr("stg")
        footprint = 1 << 24
        generator = SyntheticTraceGenerator(profile, footprint_bytes=footprint, seed=2)
        trace = generator.generate(500)
        assert trace.max_lba * SECTOR_BYTES <= footprint

    def test_tiny_footprint_rejected(self):
        with pytest.raises(TraceError):
            SyntheticTraceGenerator(profile_by_abbr("hm"), footprint_bytes=100)


class TestFormats:
    def test_msrc_round_trip(self, tmp_path):
        profile = profile_by_abbr("hm")
        trace = SyntheticTraceGenerator(profile, 1 << 24, seed=1).generate(100)
        path = tmp_path / "trace.csv"
        save_msrc_csv(trace, path)
        loaded = load_msrc_csv(path)
        assert len(loaded) == len(trace)
        # The loader normalizes timestamps to trace start.
        origin = trace[0].arrival_us
        for original, parsed in zip(trace, loaded):
            assert parsed.lba == original.lba
            assert parsed.sectors == original.sectors
            assert parsed.is_read == original.is_read
            assert parsed.arrival_us == pytest.approx(
                original.arrival_us - origin, abs=0.2
            )

    def test_alibaba_round_trip(self, tmp_path):
        profile = profile_by_abbr("ali.B")
        trace = SyntheticTraceGenerator(profile, 1 << 24, seed=1).generate(100)
        path = tmp_path / "trace.csv"
        save_alibaba_csv(trace, path, device_id=3)
        loaded = load_alibaba_csv(path)
        assert len(loaded) == len(trace)
        assert load_alibaba_csv(path, device_id=99).requests == []

    def test_malformed_msrc_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,host,0,Frobnicate,0,4096,0\n")
        with pytest.raises(TraceError):
            load_msrc_csv(path)
        path.write_text("1,host,0\n")
        with pytest.raises(TraceError):
            load_msrc_csv(path)

    def test_malformed_alibaba_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,X,0,4096,1\n")
        with pytest.raises(TraceError):
            load_alibaba_csv(path)
