"""ECC capability model and read-retry."""

import pytest

from repro.ecc.ldpc import EccEngine
from repro.ecc.read_retry import ReadRetryPolicy
from repro.errors import ConfigError


@pytest.fixture
def ecc(profile):
    return EccEngine(profile.ecc)


def test_capability_and_requirement(ecc):
    """Paper: LDPC corrects 72 bits/KiB; requirement 63 with margin."""
    assert ecc.capability == 72
    assert ecc.requirement == 63
    assert ecc.requirement < ecc.capability


def test_decode_within_capability(ecc):
    result = ecc.decode(40.0)
    assert result.success
    assert result.margin_bits == pytest.approx(32.0)
    assert result.latency_us > 0


def test_decode_beyond_capability(ecc):
    result = ecc.decode(100.0)
    assert not result.success
    assert result.margin_bits < 0


def test_decode_rejects_negative(ecc):
    with pytest.raises(ConfigError):
        ecc.decode(-1.0)


def test_meets_requirement_uses_margin(ecc):
    assert ecc.meets_requirement(63.0)
    assert not ecc.meets_requirement(63.5)
    # Between requirement and capability: usable now, but no margin
    # left for lifetime (the band AERO's aggressive mode spends).
    assert ecc.correctable(70.0)
    assert not ecc.meets_requirement(70.0)


class TestReadRetry:
    def test_clean_read_single_pass(self, ecc, profile):
        policy = ReadRetryPolicy(ecc, t_r_us=profile.t_r_us, transfer_us=13.0)
        result = policy.read(30.0)
        assert result.success
        assert result.retries == 0
        assert result.total_latency_us == pytest.approx(
            profile.t_r_us + 13.0 + profile.ecc.decode_latency_us
        )

    def test_retry_reduces_rber(self, ecc, profile):
        policy = ReadRetryPolicy(ecc, t_r_us=profile.t_r_us)
        result = policy.read(120.0)
        assert result.success
        assert result.retries >= 1
        assert result.final_raw_bit_errors <= ecc.capability
        # Each retry adds a sense + decode.
        assert result.total_latency_us > profile.t_r_us * (result.retries + 1)

    def test_uncorrectable_after_budget(self, ecc, profile):
        policy = ReadRetryPolicy(ecc, t_r_us=profile.t_r_us)
        result = policy.read(1e9)
        assert not result.success
        assert result.retries == profile.ecc.max_read_retries

    def test_validation(self, ecc):
        with pytest.raises(ConfigError):
            ReadRetryPolicy(ecc, t_r_us=0.0)


def test_capability_margin_concept(ecc):
    """The margin the paper's footnote 1 defines, exercised end to end:
    a young block's typical error count leaves tens of bits of slack."""
    margins = [ecc.margin(errors) for errors in (16.0, 30.0, 46.0)]
    assert all(m > 0 for m in margins)
    assert margins == sorted(margins, reverse=True)
