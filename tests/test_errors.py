"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_erase_failure_carries_context():
    failure = errors.EraseFailure("boom", fail_bits=1234, loops=5)
    assert failure.fail_bits == 1234
    assert failure.loops == 5
    assert "boom" in str(failure)


def test_catching_base_class():
    with pytest.raises(errors.ReproError):
        raise errors.OutOfSpaceError("full")
    with pytest.raises(errors.FtlError):
        raise errors.MappingError("bad map")
    with pytest.raises(errors.NandError):
        raise errors.AddressError("bad addr")
