"""Chip-executor edge cases: suspension boundaries, caps, priorities."""

import pytest

from repro.config import SsdSpec
from repro.erase.scheme import EraseOperationResult, EraseSegment, SegmentKind
from repro.nand.chip import NandChip
from repro.sim.engine import Simulator
from repro.ssd.channel import ChannelBus
from repro.ssd.request import PageTransaction, TxnKind, TxnPriority
from repro.ssd.scheduler import ChipExecutor


def make_executor(spec=None, completions=None):
    spec = spec or SsdSpec.small_test()
    sim = Simulator()
    chip = NandChip(
        0, 0, spec.profile,
        planes=spec.geometry.planes_per_chip,
        blocks_per_plane=spec.geometry.blocks_per_plane,
        pages_per_block=spec.geometry.pages_per_block,
        seed=1,
    )
    bus = ChannelBus(0, spec.page_transfer_us)
    done = completions if completions is not None else []
    executor = ChipExecutor(sim, spec, chip, bus, on_complete=done.append)
    return sim, executor, done


def erase_txn(pulse_ms=(3.5, 3.5)):
    result = EraseOperationResult(scheme="x")
    for duration in pulse_ms:
        result.segments.append(
            EraseSegment(SegmentKind.ERASE_PULSE, duration * 1000.0, loop=1)
        )
        result.segments.append(
            EraseSegment(SegmentKind.VERIFY_READ, 100.0, loop=1)
        )
    result.completed = True
    return PageTransaction(
        kind=TxnKind.ERASE, priority=TxnPriority.ERASE,
        channel=0, chip=0, erase_result=result,
    )


def read_txn():
    from repro.nand.geometry import PageAddress

    return PageTransaction(
        kind=TxnKind.READ, priority=TxnPriority.USER_READ,
        channel=0, chip=0, address=PageAddress(0, 0, 0, 0, 0),
    )


def test_erase_runs_to_completion_when_idle():
    sim, executor, done = make_executor()
    executor.submit(erase_txn())
    sim.run()
    assert len(done) == 1
    assert executor.erases_completed == 1
    assert executor.erase_suspensions == 0
    # Two pulses + two verify reads.
    assert sim.now == pytest.approx(2 * 3500.0 + 2 * 100.0)


def test_read_suspends_erase_at_pulse_boundary():
    sim, executor, done = make_executor()
    executor.submit(erase_txn())
    # A read arrives 1 ms into the first 3.5 ms pulse.
    sim.at(1000.0, lambda: executor.submit(read_txn()))
    sim.run()
    assert executor.erase_suspensions == 1
    # Order: the read completes before the erase.
    assert done[0].kind is TxnKind.READ
    assert done[1].kind is TxnKind.ERASE
    # The read started only at the pulse boundary (3.5 ms), not at 1 ms.
    spec = SsdSpec.small_test()
    read_duration = (
        spec.controller_overhead_us
        + spec.profile.t_r_us
        + spec.page_transfer_us
        + spec.profile.ecc.decode_latency_us
    )
    # Total time: erase + read + resume overhead.
    expected_total = (
        2 * 3500.0 + 2 * 100.0 + read_duration
        + spec.scheduler.suspend_overhead_us
    )
    assert sim.now == pytest.approx(expected_total, rel=1e-6)


def test_suspension_cap_forces_reads_to_wait():
    spec = SsdSpec.small_test().with_scheduler(max_suspensions_per_erase=1)
    sim, executor, done = make_executor(spec)
    executor.submit(erase_txn())
    sim.at(500.0, lambda: executor.submit(read_txn()))    # 1st: suspends
    sim.at(4500.0, lambda: executor.submit(read_txn()))   # 2nd: must wait
    sim.run()
    assert executor.erase_suspensions == 1
    kinds = [t.kind for t in done]
    assert kinds.count(TxnKind.READ) == 2
    assert kinds[-1] is TxnKind.ERASE or kinds[1] is TxnKind.ERASE


def test_suspension_disabled_never_suspends():
    spec = SsdSpec.small_test().with_scheduler(erase_suspension=False)
    sim, executor, done = make_executor(spec)
    executor.submit(erase_txn())
    sim.at(100.0, lambda: executor.submit(read_txn()))
    sim.run()
    assert executor.erase_suspensions == 0
    assert done[0].kind is TxnKind.ERASE  # read waited the erase out


def test_priority_order_within_queue():
    sim, executor, done = make_executor()
    from repro.nand.geometry import PageAddress

    def txn(kind, priority):
        return PageTransaction(
            kind=kind, priority=priority, channel=0, chip=0,
            address=PageAddress(0, 0, 0, 0, 0),
        )

    # Occupy the chip, then queue in mixed priority order.
    executor.submit(erase_txn(pulse_ms=(3.5,)))
    executor.submit(txn(TxnKind.GC_READ, TxnPriority.GC))
    executor.submit(txn(TxnKind.PROGRAM, TxnPriority.USER_WRITE))
    sim.run()
    kinds = [t.kind for t in done if t.kind is not TxnKind.ERASE]
    assert kinds == [TxnKind.PROGRAM, TxnKind.GC_READ]


def test_erase_busy_time_accounted():
    sim, executor, done = make_executor()
    executor.submit(erase_txn(pulse_ms=(3.5,)))
    sim.run()
    assert executor.erase_busy_us == pytest.approx(3500.0 + 100.0)


def test_read_storm_respects_cap_and_erase_completes():
    """A sustained user-read storm cannot starve an erase past the cap.

    After ``max_suspensions_per_erase`` suspensions the erase runs its
    remaining segments to completion while later reads wait it out.
    """
    spec = SsdSpec.small_test().with_scheduler(max_suspensions_per_erase=2)
    sim, executor, done = make_executor(spec)
    executor.submit(erase_txn(pulse_ms=(3.5, 3.5, 3.5)))
    storm = 40
    for i in range(storm):
        sim.at(100.0 + 250.0 * i, lambda: executor.submit(read_txn()))
    sim.run()
    # The cap bounded the suspensions and the erase still finished.
    assert executor.erase_suspensions == 2
    assert executor.erases_completed == 1
    kinds = [t.kind for t in done]
    assert kinds.count(TxnKind.READ) == storm
    assert kinds.count(TxnKind.ERASE) == 1
    # Reads kept arriving after the cap was reached, so some of them
    # completed only after the erase (they waited it out).
    assert kinds.index(TxnKind.ERASE) < len(kinds) - 1


def test_erase_busy_excludes_wait_includes_resume_overhead():
    """Resume accounting: busy time = all segments + one ramp overhead.

    The time the erase spends *suspended* (servicing the read) must not
    count as erase busy time; the resume ramp overhead must.
    """
    sim, executor, done = make_executor()
    executor.submit(erase_txn())  # 2 x 3500 us pulses + 2 x 100 us verifies
    sim.at(1000.0, lambda: executor.submit(read_txn()))
    sim.run()
    assert executor.erase_suspensions == 1
    spec = SsdSpec.small_test()
    segments_us = 2 * 3500.0 + 2 * 100.0
    assert executor.erase_busy_us == pytest.approx(
        segments_us + spec.scheduler.suspend_overhead_us
    )
    # Busy time is strictly less than the wall-clock span of the
    # operation (the suspension window served the read instead).
    assert executor.erase_busy_us < sim.now


def test_erase_busy_accumulates_one_overhead_per_resume():
    sim, executor, done = make_executor()  # default cap: 2 suspensions
    executor.submit(erase_txn(pulse_ms=(3.5, 3.5, 3.5)))
    # Two reads far enough apart that each triggers its own suspension.
    sim.at(1000.0, lambda: executor.submit(read_txn()))
    sim.at(6000.0, lambda: executor.submit(read_txn()))
    sim.run()
    assert executor.erase_suspensions == 2
    spec = SsdSpec.small_test()
    segments_us = 3 * 3500.0 + 3 * 100.0
    assert executor.erase_busy_us == pytest.approx(
        segments_us + 2 * spec.scheduler.suspend_overhead_us
    )


def test_multiple_reads_during_one_suspension():
    sim, executor, done = make_executor()
    executor.submit(erase_txn())
    for t in (1000.0, 1100.0, 1200.0):
        sim.at(t, lambda: executor.submit(read_txn()))
    sim.run()
    # One suspension window serves all three reads.
    assert executor.erase_suspensions == 1
    assert [t.kind for t in done[:3]] == [TxnKind.READ] * 3
