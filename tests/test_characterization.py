"""Characterization campaign drivers (Section 5 virtual experiments)."""

import pytest

from repro.characterization import (
    TestPlatform,
    arrhenius_acceleration,
    bake_hours_for_retention,
    erase_latency_cdf,
    failbit_linearity,
    felp_accuracy,
    reliability_margin,
    shallow_erasure_sweep,
)
from repro.characterization.bake import retention_scale
from repro.characterization.fitting import fit_gamma_delta
from repro.errors import ConfigError
from repro.nand.chip_types import TLC_3D_48L


@pytest.fixture(scope="module")
def platform():
    return TestPlatform(TLC_3D_48L, chips=6, blocks_per_chip=12, seed=99)


class TestBake:
    def test_paper_equivalence_13_hours(self):
        """1-year at 30 C == ~13 h at 85 C with Ea = 1.1 eV (Section 5.1)."""
        hours = bake_hours_for_retention()
        assert 11.0 <= hours <= 16.0

    def test_acceleration_monotonic_in_temp(self):
        assert arrhenius_acceleration(85.0) > arrhenius_acceleration(60.0) > 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            arrhenius_acceleration(20.0)  # cooler than reference
        with pytest.raises(ConfigError):
            bake_hours_for_retention(retention_hours=0.0)

    def test_retention_scale_reference(self):
        assert retention_scale(365 * 24.0) == pytest.approx(1.0)
        assert retention_scale(0.0) == 0.0


class TestPlatformFixture:
    def test_clones_share_physics(self, platform):
        a = platform.block_at(5, 1000)
        b = platform.block_at(5, 1000)
        assert a.erase_model.base == b.erase_model.base
        assert a.erase_model.rate == b.erase_model.rate
        assert a is not b

    def test_pre_cycling_sets_age(self, platform):
        block = platform.block_at(0, 2500)
        assert block.wear.age_kilocycles == pytest.approx(2.5)
        assert block.wear.pec == 2500

    def test_sampling_bounds(self, platform):
        with pytest.raises(ConfigError):
            platform.block_at(platform.block_count, 0)
        with pytest.raises(ConfigError):
            platform.sample_blocks(0, 0)
        blocks = platform.sample_blocks(0, 10)
        assert len(blocks) == 10


class TestFigure4:
    def test_cdf_key_observations(self, platform):
        result = erase_latency_cdf(
            platform, pec_points=(0, 1000, 2000, 3000), blocks_per_point=50
        )
        assert result.max_loops(0) == 1
        assert result.min_loops(2000) >= 2
        assert 0.5 <= result.single_loop_fraction(1000) <= 1.0
        # >70 % of fresh blocks erase within 2.5 ms + VR overhead.
        assert result.fraction_below_ms(0, 2.7) >= 0.6
        # Latency spread grows with wear.
        assert result.std_ms(3000) > result.std_ms(0)


class TestFigure7:
    def test_linearity_recovers_gamma_delta(self, platform):
        result = failbit_linearity(
            platform, pec_points=(2000, 3500), blocks_per_point=40
        )
        profile = platform.profile
        assert result.overall.delta == pytest.approx(profile.delta, rel=0.15)
        assert result.overall.gamma == pytest.approx(profile.gamma, rel=0.3)
        assert result.overall.r_squared > 0.9

    def test_consistency_across_nispe(self, platform):
        """Paper: the same delta in all NISPE panels."""
        result = failbit_linearity(
            platform, pec_points=(2000, 3000, 4000), blocks_per_point=40
        )
        deltas = [fit.delta for fit in result.fits.values()]
        assert len(deltas) >= 2
        assert max(deltas) / min(deltas) < 1.4

    def test_series_decrease_with_tep(self, platform):
        result = failbit_linearity(platform, pec_points=(3000,), blocks_per_point=30)
        for nispe, series in result.series.items():
            values = [v for _, v in series]
            if len(values) >= 2:
                assert values[0] > values[-1]


class TestFigure8:
    def test_majority_concentration(self, platform):
        """Paper: >=66 % of each range needs the same mtEP."""
        result = felp_accuracy(
            platform, pec_points=(1000, 2000, 3000, 4000), blocks_per_point=50
        )
        for nispe in result.joint:
            assert result.majority_fraction(nispe) >= 0.55

    def test_table1_fully_covers_samples(self, platform):
        """No sample requires more pulses than the published t1."""
        result = felp_accuracy(
            platform, pec_points=(1000, 2000, 3000, 4000), blocks_per_point=50
        )
        assert result.conservative_coverage(platform.profile) >= 0.995


class TestFigure9:
    def test_shallow_probe_enables_reduction(self, platform):
        result = shallow_erasure_sweep(
            platform, tse_pulses_options=(2,), pec_points=(100, 500),
            blocks_per_point=60,
        )
        for key, fraction in result.reduced_fraction.items():
            assert fraction >= 0.6  # paper: 80-88 %
        for key, tbers in result.avg_tbers_ms.items():
            assert 2.0 <= tbers <= 3.4  # paper: 2.5-2.9 ms

    def test_tse_sweep_bounds(self, platform):
        with pytest.raises(ConfigError):
            shallow_erasure_sweep(platform, tse_pulses_options=(7,))


class TestFigure10:
    @pytest.fixture(scope="class")
    def margin(self, platform):
        return reliability_margin(platform, blocks_per_point=50)

    def test_complete_erase_monotonic_in_nispe(self, margin):
        values = [margin.complete_max[n] for n in sorted(margin.complete_max)]
        assert values == sorted(values)

    def test_complete_erase_leaves_margin(self, margin):
        """Figure 10a: positive margin for all NISPE up to ~47 bits."""
        assert margin.complete_max[1] <= margin.requirement
        margin_n1 = margin.requirement - margin.complete_max[1]
        assert 25 <= margin_n1 <= 50

    def test_safe_conditions_match_c1_c2(self, margin):
        """C1 (N<=3, F<delta) and C2 (N=4, F<gamma) are safe.

        (3, 1) sits on the knife edge in our model (the paper's own
        margin there is a few bits); we require it to be within a few
        bits of the requirement rather than strictly under it — see
        EXPERIMENTS.md for the recorded deviation.
        """
        safe = set(margin.safe_conditions())
        for condition in [(2, 0), (2, 1), (3, 0), (4, 0)]:
            assert condition in safe
        assert margin.insufficient_max[(3, 1)] <= margin.requirement + 5
        # Deeper under-erasure at N=4 and mid ranges at high N are not safe.
        assert (4, 2) not in safe
        assert (5, 1) not in safe
        assert (2, 3) not in safe


class TestFitting:
    def test_fit_rejects_insufficient_data(self):
        with pytest.raises(ConfigError):
            fit_gamma_delta([[100]])
