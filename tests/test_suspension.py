"""Erase suspension: segment cursor replay semantics."""

import pytest

from repro.erase.scheme import EraseOperationResult, EraseSegment, SegmentKind
from repro.erase.suspension import SegmentCursor
from repro.errors import SimulationError


def make_result(durations):
    result = EraseOperationResult(scheme="test")
    for index, duration in enumerate(durations):
        result.segments.append(
            EraseSegment(
                kind=SegmentKind.ERASE_PULSE if index % 2 == 0 else SegmentKind.VERIFY_READ,
                duration_us=duration,
                loop=1,
            )
        )
    return result


def test_remaining_and_advance():
    cursor = SegmentCursor(make_result([1000.0, 100.0, 500.0]))
    assert cursor.remaining_us() == pytest.approx(1600.0)
    used = cursor.advance(1000.0)
    assert used == pytest.approx(1000.0)
    assert cursor.remaining_us() == pytest.approx(600.0)
    cursor.advance(600.0)
    assert cursor.finished


def test_advance_stops_at_completion():
    cursor = SegmentCursor(make_result([200.0]))
    used = cursor.advance(999.0)
    assert used == pytest.approx(200.0)
    assert cursor.finished


def test_mid_segment_suspend_resume_overhead():
    cursor = SegmentCursor(make_result([1000.0]), suspend_overhead_us=40.0)
    cursor.advance(300.0)
    cursor.suspend()
    assert cursor.suspended
    cursor.resume()
    # Remaining = 700 left + 40 ramp overhead.
    assert cursor.remaining_us() == pytest.approx(740.0)
    cursor.advance(740.0)
    assert cursor.finished
    assert cursor.suspend_count == 1
    assert cursor.total_overhead_us == pytest.approx(40.0)


def test_multiple_suspensions_accumulate_overhead():
    cursor = SegmentCursor(make_result([1000.0]), suspend_overhead_us=25.0)
    for _ in range(3):
        cursor.advance(100.0)
        cursor.suspend()
        cursor.resume()
        cursor.advance(25.0)  # consume the ramp overhead
    assert cursor.suspend_count == 3
    assert cursor.total_overhead_us == pytest.approx(75.0)


def test_cannot_advance_while_suspended():
    cursor = SegmentCursor(make_result([100.0]))
    cursor.suspend()
    with pytest.raises(SimulationError):
        cursor.advance(10.0)


def test_cannot_double_suspend_or_resume_idle():
    cursor = SegmentCursor(make_result([100.0]))
    cursor.suspend()
    with pytest.raises(SimulationError):
        cursor.suspend()
    cursor.resume()
    with pytest.raises(SimulationError):
        cursor.resume()


def test_cannot_suspend_finished():
    cursor = SegmentCursor(make_result([50.0]))
    cursor.advance(50.0)
    with pytest.raises(SimulationError):
        cursor.suspend()


def test_negative_advance_rejected():
    cursor = SegmentCursor(make_result([50.0]))
    with pytest.raises(SimulationError):
        cursor.advance(-1.0)


def test_current_segment_tracking():
    cursor = SegmentCursor(make_result([100.0, 10.0]))
    assert cursor.current_segment().duration_us == 100.0
    cursor.advance(100.0)
    assert cursor.current_segment().duration_us == 10.0
    cursor.advance(10.0)
    assert cursor.current_segment() is None
