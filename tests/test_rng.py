"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, derive, derive_rng, make_rng, truncated_normal


def test_make_rng_deterministic():
    a = make_rng(42).random(8)
    b = make_rng(42).random(8)
    assert np.array_equal(a, b)


def test_make_rng_default_seed():
    a = make_rng().random(4)
    b = make_rng(DEFAULT_SEED).random(4)
    assert np.array_equal(a, b)


def test_derive_is_stable():
    assert derive(1, "chip", 3) == derive(1, "chip", 3)


def test_derive_distinguishes_keys():
    # The classic collision of naive mixing: (3, 17) vs (31, 7).
    assert derive(1, 3, 17) != derive(1, 31, 7)
    assert derive(1, "a", "bc") != derive(1, "ab", "c")


def test_derive_rng_streams_independent():
    a = derive_rng(9, "block", 0).random(4)
    b = derive_rng(9, "block", 1).random(4)
    assert not np.array_equal(a, b)


def test_truncated_normal_respects_bounds():
    rng = make_rng(3)
    for _ in range(200):
        value = truncated_normal(rng, 5.0, 2.0, 3.0, 7.0)
        assert 3.0 <= value <= 7.0


def test_truncated_normal_rejects_empty_window():
    with pytest.raises(ValueError):
        truncated_normal(make_rng(1), 0.0, 1.0, 2.0, 1.0)


def test_truncated_normal_extreme_window_clips():
    # Window far in the tail: the fallback clip path must still honor it.
    rng = make_rng(5)
    value = truncated_normal(rng, 0.0, 0.1, 10.0, 11.0)
    assert 10.0 <= value <= 11.0
