"""Campaign subsystem: sharded store, campaign spec, orchestrator.

The contracts pinned here are the ones the ISSUE's acceptance criteria
name: membership == retrievability on the store, append-only
last-write-wins with crash-tolerant loading and compaction, campaign
specs planning ``GridRunner.plan``-identical jobs, and an interrupted
campaign resuming from the store alone into a grid bit-identical to an
uninterrupted serial run with no cell executed twice.
"""

import hashlib
import json
import threading

import pytest

from repro.campaign import (
    CampaignOrchestrator,
    CampaignSpec,
    ShardedResultStore,
    cell_engine_kind,
    load_campaign_file,
    run_campaign,
)
from repro.errors import ConfigError
from repro.harness import (
    CACHE_VERSION,
    GridRunner,
    ResultStore,
    SerialExecutor,
    run_workload_cell,
)

SPEC = CampaignSpec(
    schemes=("baseline", "aero"),
    pec_points=(500,),
    workloads=("hm", "ali.A"),
    requests=120,
    seed=1234,
)


@pytest.fixture(scope="module")
def report():
    return run_workload_cell("aero", 500, "hm", requests=120, seed=7)


def fake_key(n: int) -> str:
    return hashlib.sha256(str(n).encode()).hexdigest()


def serial_grid(spec: CampaignSpec):
    runner = GridRunner(executor=SerialExecutor())
    return runner.run(
        schemes=spec.schemes,
        pec_points=spec.pec_points,
        workloads=spec.workloads,
        requests=spec.requests,
        spec=spec.ssd,
        erase_suspension=spec.erase_suspension,
        seed=spec.seed,
    )


# --- sharded store -----------------------------------------------------------


def test_store_round_trip_and_membership(tmp_path, report):
    store = ShardedResultStore(tmp_path)
    key = fake_key(1)
    assert key not in store
    assert store.get(key) is None
    store.put(key, report, meta={"scheme": "aero"})
    assert key in store
    assert store.get(key) == report
    assert len(store) == 1
    # a fresh handle reads the same state back from disk
    reopened = ShardedResultStore(tmp_path)
    assert key in reopened
    assert reopened.get(key) == report
    assert reopened.entries()[0].meta == {"scheme": "aero"}


def test_store_satisfies_result_store_protocol(tmp_path):
    assert isinstance(ShardedResultStore(tmp_path), ResultStore)


def test_store_shards_by_fingerprint_prefix(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=2)
    keys = [fake_key(n) for n in range(8)]
    for key in keys:
        store.put(key, report)
    for key in keys:
        shard_dir = tmp_path / key[:2]
        assert shard_dir.is_dir()
        blob = b"".join(
            path.read_bytes() for path in shard_dir.glob("seg-*.jsonl")
        )
        assert key.encode() in blob


def test_store_rolls_segments_past_max_bytes(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=1, segment_max_bytes=1)
    keys = sorted((fake_key(n) for n in range(6)), key=lambda k: k[0])
    same_shard = [k for k in keys if k[0] == keys[0][0]]
    for key in keys:
        store.put(key, report)
    # every record overflows the 1-byte budget, so each lands in its
    # own segment within its shard
    for key in keys:
        segments = list((tmp_path / key[0]).glob("seg-*.jsonl"))
        assert len(segments) >= 1
    if len(same_shard) > 1:
        segments = list((tmp_path / same_shard[0][0]).glob("seg-*.jsonl"))
        assert len(segments) == len(same_shard)
    assert len(store) == 6
    assert ShardedResultStore(tmp_path).stats().segments >= 6


def test_store_last_write_wins(tmp_path, report):
    other = run_workload_cell("aero", 500, "hm", requests=120, seed=8)
    assert other != report
    store = ShardedResultStore(tmp_path)
    key = fake_key(2)
    store.put(key, report)
    store.put(key, other)
    assert store.get(key) == other
    assert len(store) == 1
    assert store.stats().superseded == 1
    # the reopened index resolves the duplicate the same way
    assert ShardedResultStore(tmp_path).get(key) == other


def test_store_tolerates_torn_final_line(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=1)
    key = fake_key(3)
    store.put(key, report)
    segment = next((tmp_path / key[0]).glob("seg-*.jsonl"))
    with segment.open("ab") as handle:
        handle.write(b'{"version": 2, "key": "torn')  # crash mid-append
    reopened = ShardedResultStore(tmp_path)
    assert reopened.get(key) == report
    assert reopened.stats().corrupt_lines == 1
    # the next append must not concatenate onto the torn bytes
    key2 = key[0] + fake_key(4)[1:]
    reopened.put(key2, report)
    assert reopened.get(key2) == report
    assert ShardedResultStore(tmp_path).get(key2) == report


def test_store_stale_version_reads_as_miss(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=1)
    key = fake_key(5)
    store.put(key, report)
    segment = next((tmp_path / key[0]).glob("seg-*.jsonl"))
    record = json.loads(segment.read_text())
    record["version"] = CACHE_VERSION - 1
    segment.write_text(json.dumps(record) + "\n")
    reopened = ShardedResultStore(tmp_path)
    assert key not in reopened
    assert reopened.get(key) is None
    assert reopened.stats().stale == 1


def test_store_compaction_squashes_and_prunes(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=1, segment_max_bytes=1)
    keys = [fake_key(n) for n in range(4)]
    for key in keys:
        store.put(key, report)
        store.put(key, report)  # superseded duplicate per key
    before = store.stats()
    assert before.superseded == 4
    result = store.compact()
    assert result.records_dropped >= 4
    assert result.bytes_reclaimed > 0
    after = store.stats()
    assert after.superseded == 0
    assert after.keys == 4
    assert after.segments == after.shards  # one segment per shard now
    for key in keys:
        assert store.get(key) == report
    # and the compacted layout reads identically from a fresh handle
    reopened = ShardedResultStore(tmp_path)
    for key in keys:
        assert reopened.get(key) == report


def test_store_gc_matches_cache_semantics(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=1)
    keys = [fake_key(n) for n in range(5)]
    for key in keys:
        store.put(key, report)
    # age the first two records far into the past
    for key in keys[:2]:
        segment = next((tmp_path / key[0]).glob("seg-*.jsonl"))
        lines = segment.read_text().splitlines()
        aged = []
        for line in lines:
            record = json.loads(line)
            if record["key"] == key:
                record["ts"] = 1.0
            aged.append(json.dumps(record))
        segment.write_text("\n".join(aged) + "\n")
    store = ShardedResultStore(tmp_path)
    result = store.gc(older_than_s=3600.0)
    assert result.removed_count == 2
    assert {entry.key for entry in result.removed} == set(keys[:2])
    assert result.kept == 3
    assert len(store) == 3
    for key in keys[:2]:
        assert key not in store
    for key in keys[2:]:
        assert store.get(key) == report
    # dry-run reports without deleting
    dry = store.gc(max_entries=1, dry_run=True)
    assert dry.removed_count == 2
    assert len(store) == 3


def test_store_gc_ranks_healthy_over_stale(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=1)
    keys = [fake_key(n) for n in range(4)]
    for key in keys:
        store.put(key, report)
    # make the two *newest* records stale-versioned
    for key in keys[2:]:
        segment = next((tmp_path / key[0]).glob("seg-*.jsonl"))
        lines = segment.read_text().splitlines()
        rewritten = []
        for line in lines:
            record = json.loads(line)
            if record["key"] == key:
                record["version"] = CACHE_VERSION - 1
            rewritten.append(json.dumps(record))
        segment.write_text("\n".join(rewritten) + "\n")
    store = ShardedResultStore(tmp_path)
    result = store.gc(max_entries=2, remove_corrupt=False)
    # the stale survivors are evicted first; both healthy entries stay
    assert {entry.key for entry in result.removed} == set(keys[2:])
    for key in keys[:2]:
        assert store.get(key) == report


def test_store_rejects_mismatched_prefix_len(tmp_path):
    ShardedResultStore(tmp_path, prefix_len=2)
    with pytest.raises(ConfigError):
        ShardedResultStore(tmp_path, prefix_len=3)
    # omitting the argument honours the manifest
    assert ShardedResultStore(tmp_path).prefix_len == 2


def test_store_rejects_non_hex_keys(tmp_path, report):
    store = ShardedResultStore(tmp_path)
    with pytest.raises(ConfigError):
        store.put("not-a-fingerprint", report)


def test_store_concurrent_thread_puts(tmp_path, report):
    store = ShardedResultStore(tmp_path, prefix_len=1)
    keys = [fake_key(n) for n in range(24)]
    errors = []

    def worker(chunk):
        try:
            for key in chunk:
                store.put(key, report)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(keys[i::4],))
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(store) == 24
    reopened = ShardedResultStore(tmp_path)
    assert all(reopened.get(key) == report for key in keys)


def test_grid_runner_accepts_sharded_store(tmp_path):
    store = ShardedResultStore(tmp_path)
    cold = GridRunner(cache=store)
    grid_cold = cold.run(
        schemes=("baseline",), pec_points=(500,), workloads=("hm",),
        requests=120, seed=1234,
    )
    assert cold.stats.executed == 1
    warm = GridRunner(cache=ShardedResultStore(tmp_path))
    grid_warm = warm.run(
        schemes=("baseline",), pec_points=(500,), workloads=("hm",),
        requests=120, seed=1234,
    )
    assert warm.stats.executed == 0
    assert warm.stats.cached == 1
    assert grid_warm == grid_cold


def test_grid_runner_rejects_cache_and_cache_dir(tmp_path):
    with pytest.raises(ConfigError):
        GridRunner(
            cache=ShardedResultStore(tmp_path / "s"),
            cache_dir=tmp_path / "c",
        )


# --- campaign spec -----------------------------------------------------------


def test_campaign_jobs_match_grid_runner_plan():
    planned = GridRunner().plan(
        schemes=SPEC.schemes,
        pec_points=SPEC.pec_points,
        workloads=SPEC.workloads,
        requests=SPEC.requests,
        spec=None,
        erase_suspension=True,
        seed=SPEC.seed,
    )
    assert SPEC.jobs() == planned
    assert SPEC.fingerprints() == [job.fingerprint for job in planned]


def test_campaign_experiments_resolve_to_same_jobs():
    jobs = SPEC.jobs()
    resolved = [spec.resolve() for spec in SPEC.experiments()]
    assert resolved == jobs


def test_campaign_spec_json_round_trip(tmp_path):
    clone = CampaignSpec.from_json(SPEC.to_json())
    assert clone == SPEC
    assert clone.fingerprints() == SPEC.fingerprints()
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps({"campaign": SPEC.to_dict()}))
    assert load_campaign_file(path) == SPEC


def test_campaign_spec_validation_errors():
    with pytest.raises(ConfigError):
        CampaignSpec(schemes=())
    with pytest.raises(ConfigError):
        CampaignSpec(requests=0)
    with pytest.raises(ConfigError):
        CampaignSpec(engine="warp")
    with pytest.raises(ConfigError):
        CampaignSpec(pec_points=(-1,))
    with pytest.raises(ConfigError):
        CampaignSpec.from_dict({"schemes": ["aero"], "mystery": 1})
    with pytest.raises(ConfigError):
        CampaignSpec(schemes=("no_such_scheme",)).validate()


def test_campaign_spec_size():
    assert SPEC.size == 2 * 1 * 2 == len(SPEC.jobs())


# --- orchestrator ------------------------------------------------------------


def test_campaign_equals_serial_grid(tmp_path):
    reference = serial_grid(SPEC)
    result = run_campaign(
        SPEC, tmp_path, process_workers=2, thread_workers=2
    )
    assert result.stats.executed == SPEC.size
    assert result.stats.resumed == 0
    assert result.grid == reference


def test_campaign_routes_engines_to_pools(tmp_path):
    kernel_jobs = SPEC.jobs()
    assert all(cell_engine_kind(job) == "kernel" for job in kernel_jobs)
    object_spec = CampaignSpec(
        schemes=("baseline",), pec_points=(500,), workloads=("hm",),
        requests=120, seed=1234, engine="object",
    )
    assert all(
        cell_engine_kind(job) == "object" for job in object_spec.jobs()
    )
    result = run_campaign(object_spec, tmp_path, process_workers=2)
    assert result.stats.process_cells == object_spec.size
    assert result.stats.thread_cells == 0


def test_campaign_object_engine_matches_serial(tmp_path):
    object_spec = CampaignSpec(
        schemes=("baseline", "aero"), pec_points=(500,),
        workloads=("hm",), requests=120, seed=1234, engine="object",
    )
    reference = serial_grid(object_spec)
    result = run_campaign(object_spec, tmp_path, process_workers=2)
    # engine-free fingerprints: the object-engine campaign shares cells
    # with (and is bit-identical to) the auto-engine serial grid
    assert result.grid == reference


def test_interrupted_campaign_resumes_bit_identical(tmp_path):
    """The acceptance-criteria test: kill mid-run, resume from the
    store alone, end bit-identical to an uninterrupted serial run with
    no cell executed twice."""
    reference = serial_grid(SPEC)
    kill_after = 2

    class Kill(Exception):
        pass

    def bomb(index, job, report, _seen=[0]):
        _seen[0] += 1
        if _seen[0] >= kill_after:
            raise Kill()

    with pytest.raises(Kill):
        CampaignOrchestrator(
            SPEC, tmp_path, thread_workers=2, on_cell=bomb
        ).run()
    # the killed run persisted exactly the cells completed before death
    interrupted = ShardedResultStore(tmp_path)
    assert len(interrupted) == kill_after

    # restart from the store alone: a brand-new orchestrator instance
    resumed = CampaignOrchestrator(SPEC, tmp_path, thread_workers=2).run()
    assert resumed.stats.resumed == kill_after
    assert resumed.stats.executed == SPEC.size - kill_after
    assert resumed.grid == reference
    # no cell executed twice: every key has exactly one record (an
    # append-only store would show superseded records otherwise)
    stats = ShardedResultStore(tmp_path).stats()
    assert stats.keys == SPEC.size
    assert stats.superseded == 0

    # a third run resumes everything and stays identical
    replay = run_campaign(SPEC, tmp_path)
    assert replay.stats.executed == 0
    assert replay.stats.resumed == SPEC.size
    assert replay.grid == reference


def test_campaign_progress_reports(tmp_path):
    snapshots = []
    result = run_campaign(
        SPEC,
        tmp_path,
        thread_workers=2,
        progress=snapshots.append,
        progress_interval_s=0.0,
    )
    assert result.stats.executed == SPEC.size
    assert snapshots[0].done == 0
    final = snapshots[-1]
    assert final.done == final.total == SPEC.size
    assert final.fraction == 1.0
    assert final.cells_per_s is not None and final.cells_per_s > 0
    assert final.remaining == 0
    mid = snapshots[1]
    assert 0 < mid.done <= SPEC.size
    assert "cells" in final.format()


def test_campaign_status_without_executing(tmp_path):
    orchestrator = CampaignOrchestrator(SPEC, tmp_path)
    status = orchestrator.status()
    assert status.total == SPEC.size
    assert status.done == 0
    run_campaign(SPEC, tmp_path)
    assert CampaignOrchestrator(SPEC, tmp_path).status().done == SPEC.size


def test_worker_exception_propagates(tmp_path):
    bad = CampaignSpec(
        schemes=("baseline",), pec_points=(500,), workloads=("hm",),
        requests=120, seed=1234,
    )
    # poison the store so the persist step fails
    class ExplodingStore(ShardedResultStore):
        def put(self, key, report, meta=None):
            raise RuntimeError("disk full")

    with pytest.raises(RuntimeError, match="disk full"):
        CampaignOrchestrator(bad, ExplodingStore(tmp_path)).run()


# --- multi-process writers ---------------------------------------------------
#
# The helpers live at module scope so that (fork or not) the child
# processes can resolve them; each child writes through its own store
# handle, exercising the shared-flock append path for real.


def _mp_writer(root, start, count, requests):
    report = run_workload_cell("aero", 500, "hm", requests=requests, seed=7)
    store = ShardedResultStore(root, segment_max_bytes=8192)
    for n in range(start, start + count):
        store.put(fake_key(n), report)


def _mp_campaign(root):
    run_campaign(SPEC, root, thread_workers=2)


def test_two_process_store_writers_lose_nothing(tmp_path):
    """Two writer processes racing a compacting parent: every record
    survives. This is the multi-writer acceptance criterion."""
    import multiprocessing as mp

    per_writer = 40
    writers = [
        mp.Process(
            target=_mp_writer, args=(str(tmp_path), n * per_writer,
                                     per_writer, 40)
        )
        for n in range(2)
    ]
    for writer in writers:
        writer.start()
    # compact continuously while the writers append
    compactor = ShardedResultStore(tmp_path, segment_max_bytes=8192)
    while any(writer.is_alive() for writer in writers):
        compactor.compact()
    for writer in writers:
        writer.join(120)
        assert writer.exitcode == 0
    compactor.compact()
    final = ShardedResultStore(tmp_path)
    expected = sorted(fake_key(n) for n in range(2 * per_writer))
    assert sorted(final.keys()) == expected
    for key in expected:
        assert key in final


def test_two_orchestrator_processes_share_one_store(tmp_path):
    """Two concurrent orchestrator processes on one store root, then a
    third in-process run: nothing left to execute and the grid is
    bit-identical to an uninterrupted serial run."""
    import multiprocessing as mp

    reference = serial_grid(SPEC)
    racers = [
        mp.Process(target=_mp_campaign, args=(str(tmp_path),))
        for _ in range(2)
    ]
    for racer in racers:
        racer.start()
    for racer in racers:
        racer.join(600)
        assert racer.exitcode == 0
    replay = run_campaign(SPEC, tmp_path)
    assert replay.stats.executed == 0
    assert replay.stats.resumed == SPEC.size
    assert replay.grid == reference
    stats = ShardedResultStore(tmp_path).stats()
    assert stats.keys == SPEC.size


def test_two_handles_interleave_put_and_compact(tmp_path, report):
    """The in-process flavour of the race: one handle keeps appending
    while another compacts between its puts; the appender survives the
    rewrite and neither handle drops a record."""
    writer = ShardedResultStore(tmp_path, segment_max_bytes=1)
    compactor = ShardedResultStore(tmp_path, segment_max_bytes=1)
    writer.put(fake_key(0), report)
    writer.put(fake_key(0), report)  # superseded: gives compact work
    writer.put(fake_key(1), report)
    compactor.compact()
    # the compaction bumped the generation; the writer's next put lands
    # in the rewritten shard layout without losing its cached state
    writer.put(fake_key(2), report)
    expected = sorted(fake_key(n) for n in range(3))
    assert sorted(writer.keys()) == expected
    for key in expected:
        assert writer.get(key) == report
    # a fresh handle (and the compactor, after its own rescan) agree
    assert sorted(ShardedResultStore(tmp_path).keys()) == expected
    compactor.compact()
    assert sorted(compactor.keys()) == expected
