"""Chip profiles and their derived quantities."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.nand.chip_types import (
    ChipProfile,
    EraseWorkModel,
    MLC_3D_48L,
    TLC_2D_2XNM,
    TLC_3D_48L,
    builtin_profiles,
    profile_by_name,
)


def test_paper_timing_constants():
    assert TLC_3D_48L.t_ep_us == 3500.0
    assert TLC_3D_48L.t_r_us == 40.0
    assert TLC_3D_48L.t_prog_us == 350.0
    assert TLC_3D_48L.pulses_per_loop == 7
    assert TLC_3D_48L.max_loops == 5
    assert TLC_3D_48L.max_pulses == 35


def test_failbit_thresholds_ordering(any_profile):
    assert any_profile.f_pass < any_profile.gamma < any_profile.delta
    assert any_profile.f_high == 7 * any_profile.delta


def test_failbit_range_edges(profile):
    edges = profile.failbit_range_edges()
    assert edges[0] == profile.gamma
    assert edges[1] == profile.delta
    assert edges[-1] == 7 * profile.delta
    assert len(edges) == 8


def test_failbit_range_index(profile):
    gamma, delta = profile.gamma, profile.delta
    assert profile.failbit_range_index(0) == 0
    assert profile.failbit_range_index(gamma) == 0
    assert profile.failbit_range_index(gamma + 1) == 1
    assert profile.failbit_range_index(delta) == 1
    assert profile.failbit_range_index(3 * delta) == 3
    assert profile.failbit_range_index(7 * delta) == 7
    assert profile.failbit_range_index(7 * delta + 1) == 8  # above FHIGH


def test_loop_voltage_and_damage_monotonic(any_profile):
    factors = [any_profile.loop_voltage_factor(i) for i in range(1, 6)]
    damages = [any_profile.pulse_damage(i) for i in range(1, 6)]
    assert factors == sorted(factors)
    assert damages == sorted(damages)
    assert factors[0] == 1.0
    assert damages[0] == 1.0


def test_loop_index_counts_from_one(profile):
    with pytest.raises(ConfigError):
        profile.loop_voltage_factor(0)


def test_profile_lookup():
    for profile in builtin_profiles():
        assert profile_by_name(profile.name) is profile
    with pytest.raises(ConfigError):
        profile_by_name("no-such-chip")


def test_profile_validation():
    with pytest.raises(ConfigError):
        dataclasses.replace(TLC_3D_48L, bits_per_cell=7)
    with pytest.raises(ConfigError):
        dataclasses.replace(TLC_3D_48L, t_ep_us=3400.0)  # not a pulse multiple
    with pytest.raises(ConfigError):
        dataclasses.replace(TLC_3D_48L, f_pass=9999)  # FPASS > gamma


def test_erase_work_floor_interpolation():
    work = EraseWorkModel()
    assert work.floor_pulses(0) == 1.0
    assert work.floor_pulses(2000) == 8.0  # every block >= 2 loops at 2K
    assert work.floor_pulses(1500) == pytest.approx(5.0)  # midpoint 2..8
    assert work.floor_pulses(99000) == work.floor_points[-1][1]


def test_cross_profile_distinctions():
    assert TLC_3D_48L.is_3d and not TLC_2D_2XNM.is_3d
    assert MLC_3D_48L.bits_per_cell == 2
    # Figure 11: gamma/delta differ across chip types but obey ordering.
    assert TLC_2D_2XNM.delta != TLC_3D_48L.delta
    assert MLC_3D_48L.delta != TLC_3D_48L.delta
