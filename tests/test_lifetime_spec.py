"""Unified lifetime campaign family: spec, cached jobs, mixed campaigns.

Pins the ISSUE's acceptance criteria: LifetimeSpec fingerprints are
stable and trajectory-pinned, specs round-trip through JSON exactly,
cached/resumed comparisons are bit-identical to a fresh serial run
with no job executed twice, mixed-family campaigns kill+resume, and
unknown campaign families fail fast with the valid-family list.
"""

import json

import pytest

from repro.campaign import (
    CampaignOrchestrator,
    CampaignSpec,
    MixedCampaignSpec,
    ShardedResultStore,
    campaign_spec_from_dict,
)
from repro.errors import ConfigError
from repro.harness import GridRunner, SerialExecutor
from repro.harness.cache import ResultCache
from repro.lifetime import (
    LifetimeCurve,
    LifetimeSpec,
    SchemeComparison,
    compare_schemes,
    load_lifetime_file,
)
from repro.nand.chip_types import profile_by_name

# Small enough to cycle in well under a second per scheme.
FAST = dict(block_count=8, step=200, max_pec=2000)

SPEC = LifetimeSpec(
    schemes=("baseline", "aero"), profile="3D-TLC-48L", **FAST
)

CELL_SPEC = CampaignSpec(
    schemes=("baseline", "aero"),
    pec_points=(500,),
    workloads=("hm",),
    requests=120,
    seed=1234,
)


# --- fingerprints ------------------------------------------------------------


def test_fingerprints_stable_and_distinct():
    again = LifetimeSpec(
        schemes=("baseline", "aero"), profile="3D-TLC-48L", **FAST
    )
    assert SPEC.fingerprints() == again.fingerprints()
    assert len(set(SPEC.fingerprints())) == len(SPEC.schemes)


@pytest.mark.parametrize(
    "change",
    [dict(seed=1), dict(block_count=9), dict(step=100), dict(max_pec=2400),
     dict(profile="3D-MLC-48L"), dict(requirement=40)],
)
def test_fingerprint_covers_every_resolved_field(change):
    base = dict(schemes=("baseline",), profile="3D-TLC-48L", **FAST)
    changed = {**base, **change}
    assert (
        LifetimeSpec(**base).fingerprints()
        != LifetimeSpec(**changed).fingerprints()
    )


def test_fingerprint_pins_resolved_engine():
    auto = LifetimeSpec(schemes=("aero",), profile="3D-TLC-48L", **FAST)
    kernel = LifetimeSpec(
        schemes=("aero",), profile="3D-TLC-48L", engine="kernel", **FAST
    )
    obj = LifetimeSpec(
        schemes=("aero",), profile="3D-TLC-48L", engine="object", **FAST
    )
    # auto resolves to the kernel for schemes that provide one, so the
    # two spellings share one cache entry; the object path is only
    # statistically equivalent and must not.
    assert auto.fingerprints() == kernel.fingerprints()
    assert auto.fingerprints() != obj.fingerprints()


# --- JSON round-trip ---------------------------------------------------------


def test_spec_json_round_trip(tmp_path):
    data = json.loads(json.dumps(SPEC.to_dict()))
    assert LifetimeSpec.from_dict(data) == SPEC
    assert LifetimeSpec.from_dict(data).fingerprints() == SPEC.fingerprints()
    path = tmp_path / "lifetime.json"
    path.write_text(json.dumps({"campaign": SPEC.to_dict()}))
    assert load_lifetime_file(path) == SPEC


def test_spec_rejects_unknown_fields_and_wrong_family():
    with pytest.raises(ConfigError, match="unknown"):
        LifetimeSpec.from_dict({**SPEC.to_dict(), "blocks": 3})
    with pytest.raises(ConfigError, match="family"):
        LifetimeSpec.from_dict({**SPEC.to_dict(), "family": "cell"})


def test_unknown_campaign_family_lists_valid_families():
    with pytest.raises(ConfigError) as excinfo:
        campaign_spec_from_dict({"family": "nonsense"})
    message = str(excinfo.value)
    assert "nonsense" in message
    for family in ("cell", "lifetime", "mixed"):
        assert family in message


def test_campaign_spec_from_dict_dispatches_by_family():
    assert campaign_spec_from_dict(SPEC.to_dict()) == SPEC
    assert campaign_spec_from_dict(CELL_SPEC.to_dict()) == CELL_SPEC
    mixed = MixedCampaignSpec(members=(SPEC, CELL_SPEC))
    round_tripped = campaign_spec_from_dict(
        json.loads(json.dumps(mixed.to_dict()))
    )
    assert round_tripped == mixed
    assert [j.fingerprint for j in round_tripped.jobs()] == [
        j.fingerprint for j in mixed.jobs()
    ]


def test_curve_and_comparison_json_round_trip():
    comparison = compare_schemes(
        profile_by_name(SPEC.profile), scheme_keys=SPEC.schemes,
        block_count=SPEC.block_count, step=SPEC.step, max_pec=SPEC.max_pec,
    )
    data = json.loads(json.dumps(comparison.to_json_dict()))
    back = SchemeComparison.from_json_dict(data)
    assert back == comparison
    curve = comparison.curves["aero"]
    assert LifetimeCurve.from_json_dict(
        json.loads(json.dumps(curve.to_json_dict()))
    ) == curve


# --- cached execution --------------------------------------------------------


def test_cached_compare_bit_identical_to_fresh_serial(tmp_path):
    fresh = compare_schemes(
        profile_by_name(SPEC.profile), scheme_keys=SPEC.schemes,
        block_count=SPEC.block_count, step=SPEC.step, max_pec=SPEC.max_pec,
        executor=SerialExecutor(),
    )
    store = ShardedResultStore(tmp_path / "store")
    first_runner = GridRunner(cache=store)
    first = SPEC.comparison(first_runner.execute_jobs(SPEC.jobs()))
    assert first_runner.stats.executed == len(SPEC.schemes)
    resumed_runner = GridRunner(cache=store)
    resumed = SPEC.comparison(resumed_runner.execute_jobs(SPEC.jobs()))
    assert resumed_runner.stats.executed == 0
    assert resumed_runner.stats.cached == len(SPEC.schemes)
    assert first.to_json_dict() == fresh.to_json_dict()
    assert resumed.to_json_dict() == fresh.to_json_dict()
    assert store.stats().superseded == 0


def test_flag_and_spec_paths_share_cache_entries(tmp_path):
    cache_dir = tmp_path / "cache"
    compare_schemes(
        profile_by_name(SPEC.profile), scheme_keys=SPEC.schemes,
        block_count=SPEC.block_count, step=SPEC.step, max_pec=SPEC.max_pec,
        cache_dir=cache_dir,
    )
    runner = GridRunner(cache=ResultCache(cache_dir))
    runner.execute_jobs(SPEC.jobs())
    assert runner.stats.executed == 0
    assert runner.stats.cached == len(SPEC.schemes)


def test_adhoc_profile_cannot_cache():
    import dataclasses

    adhoc = dataclasses.replace(
        profile_by_name(SPEC.profile), name="tweaked"
    )
    with pytest.raises(ConfigError, match="built-in"):
        compare_schemes(adhoc, scheme_keys=("baseline",), cache_dir="x")


# --- mixed-family campaigns --------------------------------------------------


def test_mixed_campaign_kill_and_resume_bit_identical(tmp_path):
    mixed = MixedCampaignSpec(members=(SPEC, CELL_SPEC))
    store_dir = tmp_path / "store"

    def bomb(index, job, report, _seen=[0]):  # noqa: B006
        _seen[0] += 1
        if _seen[0] >= 2:
            raise RuntimeError("injected crash after 2 jobs")

    with pytest.raises(RuntimeError):
        CampaignOrchestrator(
            mixed, ShardedResultStore(store_dir), on_cell=bomb
        ).run()
    store = ShardedResultStore(store_dir)
    done_before = store.stats().keys
    assert 0 < done_before < mixed.size
    result = CampaignOrchestrator(mixed, store).run()
    assert result.stats.resumed == done_before
    assert result.stats.executed == mixed.size - done_before
    assert store.stats().superseded == 0  # no job executed twice
    counts = result.family_counts()
    assert counts["lifetime"] == {"total": SPEC.size, "done": SPEC.size}
    assert counts["cell"] == {
        "total": CELL_SPEC.size, "done": CELL_SPEC.size,
    }
    # The lifetime member's comparison is assembled and bit-identical
    # to a fresh serial run of the imperative entry point.
    fresh = compare_schemes(
        profile_by_name(SPEC.profile), scheme_keys=SPEC.schemes,
        block_count=SPEC.block_count, step=SPEC.step, max_pec=SPEC.max_pec,
        executor=SerialExecutor(),
    )
    assert len(result.comparisons) == 1
    assert result.comparisons[0].to_json_dict() == fresh.to_json_dict()
    # The cell member's grid is assembled from cell jobs only.
    assert result.grid is not None


def test_mixed_campaign_status_counts_per_family(tmp_path):
    mixed = MixedCampaignSpec(members=(SPEC, CELL_SPEC))
    store = ShardedResultStore(tmp_path / "store")
    orchestrator = CampaignOrchestrator(mixed, store)
    status = orchestrator.family_status()
    assert status["lifetime"] == {"total": SPEC.size, "done": 0}
    assert status["cell"] == {"total": CELL_SPEC.size, "done": 0}
    orchestrator.run()
    status = CampaignOrchestrator(mixed, store).family_status()
    assert status["lifetime"]["done"] == SPEC.size
    assert status["cell"]["done"] == CELL_SPEC.size
    families = dict(store.stats().families)
    assert families == {"lifetime": SPEC.size, "cell": CELL_SPEC.size}


def test_mixed_spec_validation():
    with pytest.raises(ConfigError, match="at least one"):
        MixedCampaignSpec(members=())
    with pytest.raises(ConfigError, match="family"):
        MixedCampaignSpec(
            members=(MixedCampaignSpec(members=(SPEC,)),)
        )
