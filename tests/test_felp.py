"""FELP predictor semantics."""

import pytest

from repro.core.felp import FelpPredictor
from repro.core.ept import (
    published_aggressive_table,
    published_conservative_table,
)
from repro.errors import ConfigError


@pytest.fixture
def predictor(profile):
    return FelpPredictor(
        profile,
        conservative=published_conservative_table(profile),
        aggressive=published_aggressive_table(profile),
    )


def test_above_fhigh_no_reduction(predictor, profile):
    prediction = predictor.predict(2, profile.f_high + 1)
    assert prediction.pulses == 7
    assert not prediction.reduced
    assert not prediction.aggressive


def test_reduction_band(predictor, profile):
    assert predictor.can_reduce(profile.gamma)
    assert predictor.can_reduce(profile.f_high)
    assert not predictor.can_reduce(profile.f_pass)
    assert not predictor.can_reduce(profile.f_high + 1)


def test_conservative_prediction(predictor, profile):
    prediction = predictor.predict(2, profile.delta)
    assert prediction.pulses == 2
    assert prediction.reduced
    assert not prediction.aggressive


def test_aggressive_prediction(predictor, profile):
    prediction = predictor.predict(2, profile.delta, use_margin=True)
    assert prediction.pulses == 0
    assert prediction.aggressive
    assert prediction.skipped_entirely


def test_aggressive_equal_to_conservative_not_flagged(predictor, profile):
    """Table 1 row 5: t2 == t1, so no intentional under-erase."""
    prediction = predictor.predict(5, profile.delta, use_margin=True)
    assert prediction.pulses == 2
    assert not prediction.aggressive


def test_margin_requires_aggressive_table(profile):
    predictor = FelpPredictor(
        profile, conservative=published_conservative_table(profile)
    )
    prediction = predictor.predict(2, profile.delta, use_margin=True)
    assert not prediction.aggressive  # silently conservative


def test_acceptance_threshold_covers_two_pulse_residual(predictor, profile):
    threshold = predictor.acceptance_threshold()
    # Residual of two pulses reads ~gamma + delta (+ noise).
    assert threshold > profile.gamma + profile.delta
    assert threshold < profile.gamma + 2 * profile.delta


def test_table_flag_validation(profile):
    conservative = published_conservative_table(profile)
    aggressive = published_aggressive_table(profile)
    with pytest.raises(ConfigError):
        FelpPredictor(profile, conservative=aggressive)
    with pytest.raises(ConfigError):
        FelpPredictor(profile, conservative=conservative, aggressive=conservative)


def test_range_index_recorded(predictor, profile):
    prediction = predictor.predict(3, int(2.5 * profile.delta))
    assert prediction.range_index == 3
    assert prediction.loop == 3
