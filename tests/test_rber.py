"""RBER model: calibration, penalties, requirement crossing."""

import pytest

from repro.errors import ConfigError
from repro.nand.chip_types import TLC_3D_48L
from repro.nand.erase_model import WearState
from repro.nand.rber import RberModel


@pytest.fixture
def rber(profile):
    return RberModel(profile)


def test_fresh_block_mrber(rber, profile):
    assert rber.wear_rber(0.0) == profile.wear.fresh_rber


def test_wear_rber_monotonic(rber):
    values = [rber.wear_rber(age) for age in (0, 1, 2, 3, 4, 5, 6)]
    assert values == sorted(values)


def test_baseline_lifetime_calibration(rber, profile):
    """Closed-form pin: the mean block crosses the requirement exactly
    at the profile's target baseline lifetime (Figure 13: 5.3K)."""
    target_age = profile.wear.target_baseline_lifetime_pec / 1000.0
    total = rber.wear_rber(target_age) + rber.retention_rber(target_age)
    assert total == pytest.approx(profile.ecc.requirement_bits_per_kib, abs=1e-9)


def test_under_erase_penalty_zero_below_fpass(rber, profile):
    assert rber.under_erase_penalty(0, 1) == 0.0
    assert rber.under_erase_penalty(profile.f_pass, 3) == 0.0


def test_under_erase_penalty_grows_with_failbits(rber, profile):
    p1 = rber.under_erase_penalty(profile.gamma, 2)
    p2 = rber.under_erase_penalty(profile.delta, 2)
    p3 = rber.under_erase_penalty(2 * profile.delta, 2)
    assert 0 < p1 < p2 < p3


def test_under_erase_penalty_shrinks_with_nispe(rber, profile):
    residual = profile.delta
    penalties = [rber.under_erase_penalty(residual, n) for n in range(1, 6)]
    assert penalties == sorted(penalties, reverse=True)


def test_mrber_composition(rber, profile):
    wear = WearState(age_kilocycles=2.0, residual_fail_bits=profile.delta, residual_nispe=2)
    sample = rber.mrber(wear)
    assert sample.total == pytest.approx(
        sample.wear + sample.retention + sample.under_erase_penalty
    )
    assert sample.under_erase_penalty > 0
    assert rber.margin(sample) == pytest.approx(
        profile.ecc.requirement_bits_per_kib - sample.total
    )


def test_extra_rber_term(rber):
    wear = WearState(age_kilocycles=1.0)
    plain = rber.mrber(wear).total
    offset = rber.mrber(wear, extra_rber=13.0).total
    assert offset == pytest.approx(plain + 13.0)


def test_sensitivity_scales_effective_age(rber):
    wear = WearState(age_kilocycles=3.0)
    soft = rber.mrber(wear, sensitivity=0.7).total
    mean = rber.mrber(wear, sensitivity=1.0).total
    hard = rber.mrber(wear, sensitivity=1.5).total
    assert soft < mean < hard


def test_meets_requirement(rber, profile):
    young = rber.mrber(WearState(age_kilocycles=0.5))
    old = rber.mrber(WearState(age_kilocycles=8.0))
    assert rber.meets_requirement(young)
    assert not rber.meets_requirement(old)


def test_retention_factor_validation(profile):
    with pytest.raises(ConfigError):
        RberModel(profile, retention_factor=-1.0)
    with pytest.raises(ConfigError):
        rber = RberModel(profile)
        rber.wear_rber(-0.1)


def test_figure10a_complete_erase_margins(rber, profile):
    """Complete erasure leaves a positive margin through mid-life:
    the paper reports up to 47 bits of margin at NISPE = 1."""
    margin_young = rber.margin(rber.mrber(WearState(age_kilocycles=0.3)))
    assert 35 <= margin_young <= 50
    margin_mid = rber.margin(rber.mrber(WearState(age_kilocycles=3.0)))
    assert margin_mid > 0
