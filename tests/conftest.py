"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SsdSpec
from repro.nand.block import Block
from repro.nand.chip_types import MLC_3D_48L, TLC_2D_2XNM, TLC_3D_48L
from repro.nand.geometry import BlockAddress
from repro.rng import make_rng


@pytest.fixture
def profile():
    """The main-study chip profile (3D TLC 48L)."""
    return TLC_3D_48L


@pytest.fixture(params=[TLC_3D_48L, TLC_2D_2XNM, MLC_3D_48L], ids=lambda p: p.name)
def any_profile(request):
    """Parametrized over all three characterized chip families."""
    return request.param


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def small_spec():
    return SsdSpec.small_test()


def make_block(profile, age_kilocycles: float = 0.0, seed: int = 777, index: int = 0, pages: int = 32) -> Block:
    """Standalone test block at a given wear age."""
    block = Block(
        address=BlockAddress(0, 0, 0, index),
        profile=profile,
        pages=pages,
        seed=seed,
    )
    block.wear.age_kilocycles = age_kilocycles
    block.wear.pec = int(age_kilocycles * 1000)
    return block


@pytest.fixture
def block_factory():
    return make_block
